"""repro — a systematic-mapping-study toolkit.

A complete, executable reproduction of *"A Systematic Mapping Study of
Italian Research on Workflows"* (Aldinucci et al., SC-W 2023), built as a
reusable library for running systematic mapping studies end to end:

* an entity model and taxonomy for tools, applications, and institutions
  (:mod:`repro.core`);
* a bibliographic corpus substrate with a from-scratch BibTeX parser,
  boolean queries, and near-duplicate detection (:mod:`repro.corpus`);
* screening with inclusion/exclusion criteria and inter-rater agreement
  (:mod:`repro.screening`);
* survey instruments with validated responses (:mod:`repro.survey`);
* statistics — frequency tables, diversity indices, inference
  (:mod:`repro.stats`) — and text processing (:mod:`repro.text`);
* a Computing-Continuum simulator with workflow DAG scheduling and a
  requirement↔capability matcher (:mod:`repro.continuum`);
* SVG/ASCII figure rendering (:mod:`repro.viz`), tables
  (:mod:`repro.tables`), and reporting (:mod:`repro.reporting`);
* the encoded ICSC ground-truth dataset (:mod:`repro.data`).

Quickstart
----------
>>> from repro import run_icsc_study
>>> results = run_icsc_study()
>>> results.q3.top_direction
'orchestration'
"""

from repro.core.protocol import StudyProtocol, icsc_protocol
from repro.core.study import (
    MappingStudy,
    StudyResults,
    StudyStage,
    run_icsc_study,
)
from repro.core.taxonomy import ClassificationScheme, workflow_directions
from repro.data.icsc import icsc_ecosystem
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ClassificationScheme",
    "MappingStudy",
    "ReproError",
    "StudyProtocol",
    "StudyResults",
    "StudyStage",
    "__version__",
    "icsc_ecosystem",
    "icsc_protocol",
    "run_icsc_study",
    "workflow_directions",
]
