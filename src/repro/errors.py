"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Sub-hierarchies mirror the
package layout: entity/validation problems, catalogue lookups, corpus parsing,
survey validation, and simulation failures each have a dedicated class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "EntityError",
    "DuplicateEntityError",
    "UnknownEntityError",
    "TaxonomyError",
    "UnknownCategoryError",
    "ClassificationError",
    "CorpusError",
    "BibTeXError",
    "CorpusStoreError",
    "QueryError",
    "ScreeningError",
    "AgreementError",
    "SurveyError",
    "ResponseValidationError",
    "SelectionError",
    "StatsError",
    "ContinuumError",
    "SchedulingError",
    "WorkflowGraphError",
    "MonteCarloError",
    "RenderError",
    "SerializationError",
    "StudyError",
    "PipelineError",
    "PipelineDefinitionError",
    "StageExecutionError",
    "CacheError",
    "TelemetryError",
    "LedgerError",
    "ServeError",
    "JobQueueFullError",
    "UnknownJobError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """A value failed domain validation (empty name, bad range, ...)."""


class EntityError(ReproError):
    """Base class for entity-model errors."""


class DuplicateEntityError(EntityError):
    """An entity with the same key is already registered."""


class UnknownEntityError(EntityError, KeyError):
    """A lookup referenced an entity that does not exist.

    ``str(exc)`` returns a readable message rather than ``KeyError``'s
    ``repr`` of its first argument.
    """

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.args[0] if self.args else ""


class TaxonomyError(ReproError):
    """Base class for classification-scheme errors."""


class UnknownCategoryError(TaxonomyError, KeyError):
    """A category key is not part of the classification scheme."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.args[0] if self.args else ""


class ClassificationError(ReproError):
    """A classifier could not produce a label."""


class CorpusError(ReproError):
    """Base class for bibliographic-corpus errors."""


class BibTeXError(CorpusError):
    """The BibTeX parser met malformed input.

    Attributes
    ----------
    line:
        1-based line number of the offending input, when known.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        super().__init__(message if line is None else f"line {line}: {message}")
        self.line = line


class CorpusStoreError(CorpusError):
    """A persistent corpus-store misuse (closed handle, schema mismatch)."""


class QueryError(CorpusError):
    """A boolean search query could not be parsed or evaluated."""


class ScreeningError(ReproError):
    """Base class for screening-stage errors."""


class AgreementError(ScreeningError):
    """Inter-rater agreement could not be computed (e.g. no overlap)."""


class SurveyError(ReproError):
    """Base class for survey-instrument errors."""


class ResponseValidationError(SurveyError, ValidationError):
    """A survey response violates its question's constraints."""


class SelectionError(ReproError):
    """A selection-matrix operation referenced unknown rows/columns."""


class StatsError(ReproError):
    """A statistical routine received degenerate input."""


class ContinuumError(ReproError):
    """Base class for computing-continuum simulator errors."""


class SchedulingError(ContinuumError):
    """The scheduler could not place a task."""


class WorkflowGraphError(ContinuumError):
    """A workflow DAG is malformed (cycle, dangling dependency, ...)."""


class MonteCarloError(ContinuumError):
    """A Monte-Carlo sweep specification or aggregation misuse."""


class RenderError(ReproError):
    """A figure or table could not be rendered."""


class SerializationError(ReproError):
    """An entity could not be serialized or deserialized."""


class StudyError(ReproError):
    """The mapping-study pipeline was driven through an invalid transition."""


class PipelineError(ReproError):
    """Base class for :mod:`repro.pipeline` runner errors."""


class PipelineDefinitionError(PipelineError):
    """A pipeline DAG is malformed (cycle, unknown dependency, duplicate)."""


class StageExecutionError(PipelineError):
    """A pipeline stage raised while executing."""


class CacheError(PipelineError):
    """An artifact cache miss, unusable key, or corrupt stored artifact."""


class TelemetryError(ReproError):
    """A :mod:`repro.telemetry` misuse or unreadable trace/metric data."""


class LedgerError(ReproError):
    """A :mod:`repro.obs` run-ledger misuse (unknown run id, empty ledger).

    Note: a *corrupt ledger line* is deliberately NOT an error — the
    registry skips it with a warning (mirroring the corrupt-artifact
    recovery in :mod:`repro.pipeline.cache`), so a torn write can never
    take the whole run history down."""


class ServeError(ReproError):
    """Base class for :mod:`repro.serve` HTTP-service errors."""


class JobQueueFullError(ServeError):
    """The bounded sweep-job queue rejected a submission (HTTP 429).

    Backpressure is a feature: the service sheds load instead of
    accepting unbounded work it cannot finish."""


class UnknownJobError(ServeError, KeyError):
    """A job id was not found in the job queue (HTTP 404)."""
