"""The application × tool selection matrix (Table 2).

:class:`SelectionMatrix` is the central demand-side data structure: rows are
tools (in Table 1 / scheme order), columns are applications (in paper
section order), and a boolean cell marks that the application's providers
selected the tool for integration.  It is backed by a numpy boolean matrix
so marginals, per-direction vote grouping (Fig. 4), and matrix comparisons
are single vectorized operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.taxonomy import ClassificationScheme
from repro.errors import SelectionError
from repro.stats.frequency import FrequencyTable

__all__ = ["SelectionMatrix"]


class SelectionMatrix:
    """Boolean tool × application selection matrix.

    Construct directly from aligned key sequences and a boolean matrix, or —
    usually — via :meth:`from_catalogs`, which orders rows by research
    direction (Table 1 order) and columns by paper section.
    """

    def __init__(
        self,
        tool_keys: Sequence[str],
        application_keys: Sequence[str],
        matrix: np.ndarray,
    ) -> None:
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.shape != (len(tool_keys), len(application_keys)):
            raise SelectionError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(tool_keys)} tools x {len(application_keys)} applications"
            )
        if len(set(tool_keys)) != len(tool_keys):
            raise SelectionError("duplicate tool keys")
        if len(set(application_keys)) != len(application_keys):
            raise SelectionError("duplicate application keys")
        self._tools = tuple(tool_keys)
        self._apps = tuple(application_keys)
        self._matrix = matrix.copy()
        self._matrix.setflags(write=False)
        self._tool_index = {key: i for i, key in enumerate(self._tools)}
        self._app_index = {key: j for j, key in enumerate(self._apps)}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_catalogs(
        cls,
        tools: ToolCatalog,
        applications: ApplicationCatalog,
        scheme: ClassificationScheme,
    ) -> "SelectionMatrix":
        """Build the published matrix from entity data.

        Rows are grouped by primary direction in scheme order (Table 2's row
        blocks), preserving catalogue order within each direction; columns
        follow paper section order.
        """
        ordered_tools: list[str] = []
        for direction in scheme.keys:
            ordered_tools.extend(
                t.key for t in tools.by_direction(direction)
            )
        # Tools whose direction lies outside the scheme would be silently
        # dropped; validate_ecosystem prevents that upstream, but re-check.
        if len(ordered_tools) != len(tools):
            raise SelectionError(
                "some tools have directions outside the scheme"
            )
        apps = applications.ordered()
        matrix = np.zeros((len(ordered_tools), len(apps)), dtype=bool)
        row_of = {key: i for i, key in enumerate(ordered_tools)}
        for j, app in enumerate(apps):
            for tool_key in app.selected_tools:
                if tool_key not in row_of:
                    raise SelectionError(
                        f"application {app.key!r} selected unknown tool "
                        f"{tool_key!r}"
                    )
                matrix[row_of[tool_key], j] = True
        return cls(ordered_tools, [a.key for a in apps], matrix)

    @classmethod
    def from_votes(
        cls,
        tool_keys: Sequence[str],
        application_keys: Sequence[str],
        votes: Iterable[tuple[str, str]],
    ) -> "SelectionMatrix":
        """Build from ``(application, tool)`` vote pairs (survey output)."""
        matrix = np.zeros((len(tool_keys), len(application_keys)), dtype=bool)
        instance = cls(tool_keys, application_keys, matrix)
        filled = instance._matrix.copy()
        filled.setflags(write=True)
        for app_key, tool_key in votes:
            try:
                i = instance._tool_index[tool_key]
                j = instance._app_index[app_key]
            except KeyError as exc:
                raise SelectionError(f"unknown key in vote: {exc}") from None
            filled[i, j] = True
        return cls(tool_keys, application_keys, filled)

    # -- accessors -------------------------------------------------------------

    @property
    def tool_keys(self) -> tuple[str, ...]:
        """Row keys (tools) in matrix order."""
        return self._tools

    @property
    def application_keys(self) -> tuple[str, ...]:
        """Column keys (applications) in matrix order."""
        return self._apps

    @property
    def matrix(self) -> np.ndarray:
        """Read-only boolean matrix (tools × applications)."""
        return self._matrix

    @property
    def total_selections(self) -> int:
        """Total number of checkmarks (28 in the paper)."""
        return int(self._matrix.sum())

    def is_selected(self, tool: str, application: str) -> bool:
        """Whether *application* selected *tool*."""
        try:
            return bool(
                self._matrix[self._tool_index[tool], self._app_index[application]]
            )
        except KeyError as exc:
            raise SelectionError(f"unknown key: {exc}") from None

    def tools_of(self, application: str) -> tuple[str, ...]:
        """Tools selected by *application*, in row order."""
        try:
            column = self._matrix[:, self._app_index[application]]
        except KeyError:
            raise SelectionError(f"unknown application {application!r}") from None
        return tuple(np.asarray(self._tools)[column])

    def applications_of(self, tool: str) -> tuple[str, ...]:
        """Applications that selected *tool*, in column order."""
        try:
            row = self._matrix[self._tool_index[tool], :]
        except KeyError:
            raise SelectionError(f"unknown tool {tool!r}") from None
        return tuple(np.asarray(self._apps)[row])

    # -- marginals and groupings -------------------------------------------------

    def votes_per_tool(self) -> FrequencyTable:
        """Row sums: how many applications selected each tool."""
        sums = self._matrix.sum(axis=1)
        return FrequencyTable(
            {key: int(sums[i]) for i, key in enumerate(self._tools)}
        )

    def selections_per_application(self) -> FrequencyTable:
        """Column sums: how many tools each application selected."""
        sums = self._matrix.sum(axis=0)
        return FrequencyTable(
            {key: int(sums[j]) for j, key in enumerate(self._apps)}
        )

    def votes_per_direction(
        self, tools: ToolCatalog, scheme: ClassificationScheme
    ) -> FrequencyTable:
        """Group votes by the tools' primary direction — the Fig. 4 data.

        Vectorized as a one-hot (direction × tool) matrix times the row-sum
        vector.
        """
        directions = np.asarray(
            [scheme.index(tools[key].primary_direction) for key in self._tools]
        )
        row_votes = self._matrix.sum(axis=1)
        counts = np.bincount(
            directions, weights=row_votes, minlength=len(scheme)
        ).astype(np.int64)
        return FrequencyTable(
            {key: int(counts[i]) for i, key in enumerate(scheme.keys)}
        )

    # -- comparison ----------------------------------------------------------------

    def agreement(self, other: "SelectionMatrix") -> dict[str, float]:
        """Cell-level agreement with another matrix over the same keys.

        Returns accuracy, precision, recall, F1, and Jaccard of the
        positive (selected) cells — used to score the requirement matcher
        against the published Table 2.
        """
        if self._tools != other._tools or self._apps != other._apps:
            raise SelectionError("matrices must share row/column keys")
        a, b = self._matrix, other._matrix
        tp = float(np.logical_and(a, b).sum())
        fp = float(np.logical_and(~a, b).sum())
        fn = float(np.logical_and(a, ~b).sum())
        tn = float(np.logical_and(~a, ~b).sum())
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        union = tp + fp + fn
        return {
            "accuracy": (tp + tn) / a.size,
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "jaccard": tp / union if union else 1.0,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SelectionMatrix):
            return NotImplemented
        return (
            self._tools == other._tools
            and self._apps == other._apps
            and bool(np.array_equal(self._matrix, other._matrix))
        )

    def __hash__(self) -> int:
        return hash((self._tools, self._apps, self._matrix.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SelectionMatrix({len(self._tools)} tools x "
            f"{len(self._apps)} applications, "
            f"{self.total_selections} selections)"
        )
