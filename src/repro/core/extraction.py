"""Data extraction: turning screened publications into study entities.

The last gap between the corpus substrate and the study pipeline: after
harvesting and screening, an SMS *extracts* structured entries from each
included publication.  :func:`extract_tool_candidates` drafts
:class:`~repro.core.entities.Tool` entries — key from the title, description
from the abstract, direction from a classifier — flagging low-confidence
classifications for human review, exactly the workflow a real study team
follows (auto-draft, then verify the flagged ones).

:func:`cross_validate_classifier` provides the evaluation loop extraction
quality depends on: seeded k-fold cross-validation of the centroid
classifier over already-labelled examples.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.classification import (
    CentroidClassifier,
    ClassificationResult,
    KeywordClassifier,
)
from repro.core.entities import Tool, slugify
from repro.core.taxonomy import ClassificationScheme
from repro.corpus.publication import Publication
from repro.errors import ValidationError

__all__ = ["ToolCandidate", "extract_tool_candidates", "cross_validate_classifier"]


@dataclass(frozen=True, slots=True)
class ToolCandidate:
    """A drafted tool entry awaiting human confirmation.

    Attributes
    ----------
    tool:
        The drafted entity (institution defaults to ``"unassigned"``).
    source:
        Key of the publication it was extracted from.
    confidence:
        The classifier's confidence in the primary direction.
    needs_review:
        True when the confidence falls below the extraction threshold.
    """

    tool: Tool
    source: str
    confidence: float
    needs_review: bool


def extract_tool_candidates(
    publications: Sequence[Publication],
    scheme: ClassificationScheme,
    *,
    classifier: KeywordClassifier | CentroidClassifier | None = None,
    review_threshold: float = 0.5,
    institution: str = "unassigned",
) -> list[ToolCandidate]:
    """Draft one tool candidate per publication.

    Keys are slugified titles, deduplicated with numeric suffixes;
    candidates whose direction confidence is below *review_threshold* are
    flagged ``needs_review``.
    """
    if not 0.0 < review_threshold <= 1.0:
        raise ValidationError("review_threshold must be in (0, 1]")
    clf = classifier or KeywordClassifier(scheme)
    candidates: list[ToolCandidate] = []
    used_keys: set[str] = set()
    for publication in publications:
        text = publication.searchable_text()
        result: ClassificationResult = clf.classify(text)
        base_key = slugify(publication.title)[:48].strip("-") or "tool"
        key = base_key
        suffix = 2
        while key in used_keys:
            key = f"{base_key}-{suffix}"
            suffix += 1
        used_keys.add(key)
        tool = Tool(
            key,
            publication.title,
            institution,
            result.label,
            description=publication.abstract or publication.title,
        )
        candidates.append(
            ToolCandidate(
                tool=tool,
                source=publication.key,
                confidence=result.confidence,
                needs_review=result.confidence < review_threshold,
            )
        )
    return candidates


def cross_validate_classifier(
    texts: Sequence[str],
    labels: Sequence[str],
    scheme: ClassificationScheme,
    *,
    folds: int = 5,
    seed: int = 0,
) -> dict[str, float]:
    """Seeded k-fold cross-validation of the seeded centroid classifier.

    Each fold's training texts enrich the category centroids (as
    ``CentroidClassifier`` seeds); the held-out fold is scored.  Returns
    mean/min/max fold accuracy — the honest estimate of extraction quality
    on *unseen* publications, unlike the in-sample accuracies reported for
    the ICSC replication.
    """
    if len(texts) != len(labels):
        raise ValidationError("texts and labels must align")
    if folds < 2:
        raise ValidationError("folds must be >= 2")
    if len(texts) < folds:
        raise ValidationError(
            f"need at least {folds} examples for {folds}-fold CV"
        )
    for label in labels:
        if label not in scheme:
            raise ValidationError(f"label {label!r} outside scheme")

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(texts))
    fold_of = np.arange(len(texts)) % folds
    accuracies: list[float] = []
    for fold in range(folds):
        train_idx = order[fold_of != fold]
        test_idx = order[fold_of == fold]
        seeds = [(texts[i], labels[i]) for i in train_idx]
        classifier = CentroidClassifier(scheme, seeds=seeds)
        predictions = classifier.classify_many([texts[i] for i in test_idx])
        hits = sum(
            prediction.label == labels[i]
            for prediction, i in zip(predictions, test_idx)
        )
        accuracies.append(hits / len(test_idx))
    return {
        "mean_accuracy": float(np.mean(accuracies)),
        "min_accuracy": float(np.min(accuracies)),
        "max_accuracy": float(np.max(accuracies)),
        "folds": float(folds),
    }
