"""Entity model for systematic mapping studies.

The entities mirror the study objects of the paper:

* :class:`Institution` — a research body providing tools or applications;
* :class:`Tool` — a catalogued research tool with a primary research
  direction (the unit classified in Table 1);
* :class:`Application` — a scientific application whose providers select
  tools for integration (the unit surveyed in Table 2);
* :class:`Reference` — a bibliographic pointer attached to tools.

All entities are immutable (frozen dataclasses) and identified by a short
``key``.  Cross-references (institution of a tool, directions, selected
tools) are stored as keys and resolved/validated by the catalogues in
:mod:`repro.core.catalog`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.errors import ValidationError

__all__ = [
    "InstitutionKind",
    "Institution",
    "Reference",
    "Tool",
    "Application",
    "slugify",
]

_KEY_RE = re.compile(r"^[a-z0-9][a-z0-9\-.]*$")


def slugify(name: str) -> str:
    """Derive a key from a human-readable name.

    >>> slugify("Jupyter Workflow")
    'jupyter-workflow'
    >>> slugify("BDMaaS+")
    'bdmaas-plus'
    """
    text = name.strip().lower().replace("+", "-plus")
    text = re.sub(r"[^a-z0-9]+", "-", text).strip("-")
    if not text:
        raise ValidationError(f"cannot derive a key from {name!r}")
    return text


def _check_key(key: str, what: str) -> None:
    if not _KEY_RE.match(key):
        raise ValidationError(
            f"{what} key {key!r} must be lowercase alphanumeric with '-'/'.'"
        )


def _check_year(year: int | None) -> None:
    if year is not None and not 1950 <= year <= 2100:
        raise ValidationError(f"implausible year {year!r}")


class InstitutionKind(Enum):
    """Coarse type of a research institution."""

    UNIVERSITY = "university"
    RESEARCH_CENTRE = "research-centre"
    COMPUTING_CENTRE = "computing-centre"
    COMPANY = "company"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Institution:
    """A research body participating in the study.

    Parameters
    ----------
    key:
        Stable identifier, e.g. ``"unito"``.
    name:
        Full name, e.g. ``"University of Turin"``.
    short_name:
        Acronym used in figures, e.g. ``"UNITO"``.
    kind:
        Institution type (university, research centre, ...).
    city:
        Seat of the institution; informational only.
    """

    key: str
    name: str
    short_name: str = ""
    kind: InstitutionKind = InstitutionKind.UNIVERSITY
    city: str = ""

    def __post_init__(self) -> None:
        _check_key(self.key, "institution")
        if not self.name:
            raise ValidationError("institution name must be non-empty")
        if not self.short_name:
            object.__setattr__(self, "short_name", self.key.upper())


@dataclass(frozen=True, slots=True)
class Reference:
    """A bibliographic pointer (citation) for a tool or application."""

    citation: str
    year: int | None = None
    doi: str = ""
    url: str = ""

    def __post_init__(self) -> None:
        if not self.citation:
            raise ValidationError("reference citation must be non-empty")
        _check_year(self.year)


@dataclass(frozen=True, slots=True)
class Tool:
    """A catalogued research tool (one row of Table 1).

    Parameters
    ----------
    key:
        Stable identifier, e.g. ``"streamflow"``.
    name:
        Display name as used in the paper, e.g. ``"StreamFlow"``.
    institution:
        Key of the providing :class:`Institution`.
    primary_direction:
        Category key of the tool's *primary* research direction — the paper
        notes every tool exhibits exactly one primary direction.
    secondary_directions:
        Further directions the tool touches ("some cover multiple research
        topics").
    description:
        Prose description, distilled from the paper's Sec. 2; feeds the
        automatic classifiers.
    reference:
        Bibliographic pointer, when the paper cites one.
    institution_inferred:
        True when the tool→institution mapping is reconstructed from author
        affiliations rather than stated in the paper (see DESIGN.md §3).
    """

    key: str
    name: str
    institution: str
    primary_direction: str
    secondary_directions: tuple[str, ...] = ()
    description: str = ""
    reference: Reference | None = None
    institution_inferred: bool = False

    def __post_init__(self) -> None:
        _check_key(self.key, "tool")
        if not self.name:
            raise ValidationError("tool name must be non-empty")
        _check_key(self.institution, "tool institution")
        if not self.primary_direction:
            raise ValidationError(f"tool {self.key!r} needs a primary direction")
        object.__setattr__(
            self, "secondary_directions", tuple(self.secondary_directions)
        )
        if self.primary_direction in self.secondary_directions:
            raise ValidationError(
                f"tool {self.key!r}: primary direction "
                f"{self.primary_direction!r} repeated in secondary directions"
            )

    @property
    def directions(self) -> tuple[str, ...]:
        """Primary direction followed by any secondary ones."""
        return (self.primary_direction, *self.secondary_directions)


@dataclass(frozen=True, slots=True)
class Application:
    """A surveyed scientific application (one column of Table 2).

    Parameters
    ----------
    key:
        Stable identifier, e.g. ``"visivo"``.
    title:
        Title of the application's subsection in the paper.
    section:
        Paper subsection label (``"3.1"`` ... ``"3.10"``); used to order the
        columns of Table 2 exactly as published.
    providers:
        Keys of the providing institutions (an application may have several;
        the paper's 10 applications come from 11 partners).
    domain:
        Scientific domain, e.g. ``"astrophysics"``.
    description:
        Prose description distilled from the paper's Sec. 3; feeds the
        requirement extractor of the continuum matcher.
    selected_tools:
        Keys of tools the providers picked for integration (the published
        checkmarks of Table 2).
    """

    key: str
    title: str
    section: str
    providers: tuple[str, ...] = ()
    domain: str = ""
    description: str = ""
    selected_tools: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_key(self.key, "application")
        if not self.title:
            raise ValidationError("application title must be non-empty")
        if not re.match(r"^\d+\.\d+$", self.section):
            raise ValidationError(
                f"application {self.key!r}: section {self.section!r} must "
                "look like '3.1'"
            )
        object.__setattr__(self, "providers", tuple(self.providers))
        object.__setattr__(self, "selected_tools", tuple(self.selected_tools))
        for provider in self.providers:
            _check_key(provider, "application provider")
        if len(set(self.selected_tools)) != len(self.selected_tools):
            raise ValidationError(
                f"application {self.key!r} lists duplicate tool selections"
            )

    @property
    def section_order(self) -> tuple[int, int]:
        """Sortable (major, minor) tuple derived from :attr:`section`."""
        major, minor = self.section.split(".")
        return int(major), int(minor)
