"""Core mapping-study machinery: entities, taxonomy, catalogues, analysis."""

from repro.core.catalog import (
    ApplicationCatalog,
    Catalog,
    InstitutionRegistry,
    ToolCatalog,
    validate_ecosystem,
)
from repro.core.extraction import (
    ToolCandidate,
    cross_validate_classifier,
    extract_tool_candidates,
)
from repro.core.facets import (
    FacetedClassification,
    facet_matrix,
    research_type_facet,
)
from repro.core.keywording import (
    adjusted_rand_index,
    discriminative_keywords,
    induce_scheme,
    kmeans,
)
from repro.core.sensitivity import (
    LeaveOneOutResult,
    jackknife_shares,
    leave_one_application_out,
    leave_one_tool_out,
)
from repro.core.entities import (
    Application,
    Institution,
    InstitutionKind,
    Reference,
    Tool,
    slugify,
)
from repro.core.taxonomy import (
    Category,
    ClassificationScheme,
    Facet,
    workflow_directions,
)

__all__ = [
    "Application",
    "FacetedClassification",
    "ToolCandidate",
    "cross_validate_classifier",
    "extract_tool_candidates",
    "LeaveOneOutResult",
    "facet_matrix",
    "research_type_facet",
    "adjusted_rand_index",
    "discriminative_keywords",
    "induce_scheme",
    "jackknife_shares",
    "kmeans",
    "leave_one_application_out",
    "leave_one_tool_out",
    "ApplicationCatalog",
    "Catalog",
    "Category",
    "ClassificationScheme",
    "Facet",
    "Institution",
    "InstitutionKind",
    "InstitutionRegistry",
    "Reference",
    "Tool",
    "ToolCatalog",
    "slugify",
    "validate_ecosystem",
    "workflow_directions",
]
