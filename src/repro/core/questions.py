"""Research-question analyzers (Sec. 4 of the paper).

Each analyzer turns catalogue data into a structured, serializable answer
object mirroring one of the paper's three research questions:

* **Q1** — Which are the main research directions for WMSs in the Computing
  Continuum?  (the taxonomy, with per-direction tool lists)
* **Q2** — Which research directions are widespread in the scientific
  community?  (Fig. 2 distribution + Fig. 3 coverage + balance statistics)
* **Q3** — Which research directions address a critical need for modern
  scientific applications?  (Fig. 4 votes + supply/demand contrast)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import (
    SupplyDemandComparison,
    compare_supply_demand,
    coverage_histogram,
    supply_distribution,
)
from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import ClassificationScheme
from repro.stats.diversity import evenness_report
from repro.stats.frequency import FrequencyTable

__all__ = ["Q1Answer", "Q2Answer", "Q3Answer", "answer_q1", "answer_q2", "answer_q3"]


@dataclass(frozen=True, slots=True)
class Q1Answer:
    """The identified research directions with their member tools."""

    directions: tuple[str, ...]
    direction_names: tuple[str, ...]
    tools_by_direction: dict[str, tuple[str, ...]]
    multi_topic_tools: tuple[str, ...]

    @property
    def n_directions(self) -> int:
        return len(self.directions)


def answer_q1(tools: ToolCatalog, scheme: ClassificationScheme) -> Q1Answer:
    """Answer Q1: enumerate directions and the tools under each (Table 1)."""
    by_direction = {
        key: tuple(t.name for t in tools.by_direction(key)) for key in scheme.keys
    }
    multi = tuple(t.name for t in tools if t.secondary_directions)
    return Q1Answer(scheme.keys, scheme.names, by_direction, multi)


@dataclass(frozen=True, slots=True)
class Q2Answer:
    """How widespread each direction is in the community.

    Attributes
    ----------
    distribution:
        Tools per direction (Fig. 2).
    shares:
        Direction key → percentage of all tools.
    coverage:
        Institutions by number of covered directions (Fig. 3).
    evenness:
        Diversity indices over :attr:`distribution`.
    single_topic_institutions:
        Number of institutions covering exactly one direction.
    n_institutions:
        Number of tool-providing institutions.
    balanced:
        The paper's qualitative claim, operationalized: True when Shannon
        evenness of the tool distribution exceeds 0.9.
    """

    distribution: FrequencyTable
    shares: dict[str, float]
    coverage: FrequencyTable
    evenness: dict[str, float]
    single_topic_institutions: int
    n_institutions: int
    balanced: bool

    @property
    def majority_single_topic(self) -> bool:
        """Paper claim: "more than half of the involved institutions cover a
        single research topic"."""
        return self.single_topic_institutions * 2 > self.n_institutions

    @property
    def full_coverage_institutions(self) -> int:
        """Institutions spanning every direction (paper observes zero)."""
        return self.coverage[len(self.distribution)]


def answer_q2(tools: ToolCatalog, scheme: ClassificationScheme) -> Q2Answer:
    """Answer Q2 from the tool catalogue (Fig. 2 + Fig. 3 + evenness)."""
    distribution = supply_distribution(tools, scheme)
    coverage = coverage_histogram(tools, scheme)
    evenness = evenness_report(distribution)
    return Q2Answer(
        distribution=distribution,
        shares={k: distribution.share(k) for k in scheme.keys},
        coverage=coverage,
        evenness=evenness,
        single_topic_institutions=coverage[1],
        n_institutions=coverage.total,
        balanced=evenness["shannon_evenness"] > 0.9,
    )


@dataclass(frozen=True, slots=True)
class Q3Answer:
    """Which directions applications actually need.

    Attributes
    ----------
    votes:
        Selection votes per direction (Fig. 4).
    shares:
        Direction key → share of all votes.
    comparison:
        Full supply-vs-demand comparison (Fig. 2 vs. Fig. 4).
    critical_directions:
        Directions selected by at least *critical_threshold* distinct
        applications — the paper's "at least three application providers"
        criterion for significant interest.
    top_direction, bottom_direction:
        Most and least demanded directions.
    """

    votes: FrequencyTable
    shares: dict[str, float]
    comparison: SupplyDemandComparison
    critical_directions: tuple[str, ...]
    top_direction: str
    bottom_direction: str


def answer_q3(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
    *,
    critical_threshold: int = 3,
    seed: int = 2023,
) -> Q3Answer:
    """Answer Q3 from the selection survey (Fig. 4 + supply/demand contrast).

    ``critical_threshold`` counts *distinct applications* selecting at least
    one tool of the direction (the paper's criterion), not raw votes.
    """
    selection = SelectionMatrix.from_catalogs(tools, applications, scheme)
    votes = selection.votes_per_direction(tools, scheme)
    comparison = compare_supply_demand(tools, applications, scheme, seed=seed)

    apps_per_direction: dict[str, set[str]] = {key: set() for key in scheme.keys}
    for app in applications:
        for tool_key in app.selected_tools:
            apps_per_direction[tools[tool_key].primary_direction].add(app.key)
    critical = tuple(
        key
        for key in scheme.keys
        if len(apps_per_direction[key]) >= critical_threshold
    )
    return Q3Answer(
        votes=votes,
        shares={k: votes.share(k) for k in scheme.keys},
        comparison=comparison,
        critical_directions=critical,
        top_direction=votes.mode(),
        bottom_direction=votes.argmin(),
    )
