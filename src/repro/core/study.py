"""The mapping-study pipeline.

:class:`MappingStudy` drives a protocol through the SMS stages::

    protocol → collect → classify → survey → analyze

Each stage validates its precondition (you cannot analyze before
surveying), so a study object is always in a well-defined state.
:func:`run_icsc_study` replays the paper end to end from the encoded
dataset and returns a :class:`StudyResults` holding everything the
evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.analysis import SupplyDemandComparison
from repro.core.catalog import (
    ApplicationCatalog,
    InstitutionRegistry,
    ToolCatalog,
    validate_ecosystem,
)
from repro.core.classification import (
    ClassifierEvaluation,
    KeywordClassifier,
    evaluate_classifier,
)
from repro.core.protocol import StudyProtocol, icsc_protocol
from repro.core.questions import (
    Q1Answer,
    Q2Answer,
    Q3Answer,
    answer_q1,
    answer_q2,
    answer_q3,
)
from repro.core.selection import SelectionMatrix
from repro.errors import StudyError
from repro.survey.aggregate import (
    run_tool_selection_survey,
    selection_matrix_from_responses,
)
from repro.survey.response import ResponseSet
from repro.tables.render import TextTable
from repro.tables.table1 import build_table1
from repro.tables.table2 import build_table2

__all__ = [
    "StudyStage",
    "StudyResults",
    "MappingStudy",
    "run_icsc_study",
    "classify_tools",
    "survey_selection",
    "analyze_study",
]


def classify_tools(
    tools: ToolCatalog, scheme
) -> ClassifierEvaluation | None:
    """Cross-check the collected labels with the keyword classifier.

    Re-derives each described tool's direction from its description and
    scores the agreement with the published (manual) labels — the
    simulated-manual-classification experiment.  Returns ``None`` when no
    tool carries a description.
    """
    classifier = KeywordClassifier(scheme)
    described = [t for t in tools if t.description.strip()]
    if not described:
        return None
    predictions = classifier.classify_many([t.description for t in described])
    return evaluate_classifier(
        predictions, [t.primary_direction for t in described], scheme
    )


def survey_selection(
    tools: ToolCatalog, applications: ApplicationCatalog, scheme
) -> tuple[ResponseSet, SelectionMatrix]:
    """Run the tool-selection survey and build the Table 2 matrix."""
    _, responses = run_tool_selection_survey(tools, applications)
    ordered_tools = [
        t.key
        for direction in scheme.keys
        for t in tools.by_direction(direction)
    ]
    matrix = selection_matrix_from_responses(
        responses,
        ordered_tools,
        name_to_key={t.name: t.key for t in tools},
    )
    return responses, matrix


def analyze_study(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    selection: SelectionMatrix,
    scheme,
    *,
    seed: int = 2023,
    classifier_evaluation: ClassifierEvaluation | None = None,
) -> StudyResults:
    """Answer the research questions and regenerate every artifact."""
    q1 = answer_q1(tools, scheme)
    q2 = answer_q2(tools, scheme)
    q3 = answer_q3(tools, applications, scheme, seed=seed)
    return StudyResults(
        q1=q1,
        q2=q2,
        q3=q3,
        table1=build_table1(tools, scheme),
        table2=build_table2(
            tools, applications, scheme, selection=selection
        ),
        selection=selection,
        comparison=q3.comparison,
        classifier_evaluation=classifier_evaluation,
    )


class StudyStage(Enum):
    """Pipeline position of a :class:`MappingStudy`."""

    PLANNED = "planned"
    COLLECTED = "collected"
    CLASSIFIED = "classified"
    SURVEYED = "surveyed"
    ANALYZED = "analyzed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class StudyResults:
    """Everything the evaluation section reports.

    Attributes
    ----------
    q1, q2, q3:
        Structured answers to the three research questions.
    table1, table2:
        The regenerated paper tables.
    selection:
        The Table 2 matrix.
    comparison:
        The supply-vs-demand analysis behind Q3.
    classifier_evaluation:
        Agreement of the automatic classifier with the published labels
        (the simulated manual-classification experiment), when the study
        ran auto-classification.
    """

    q1: Q1Answer
    q2: Q2Answer
    q3: Q3Answer
    table1: TextTable
    table2: TextTable
    selection: SelectionMatrix
    comparison: SupplyDemandComparison
    classifier_evaluation: ClassifierEvaluation | None = None


class MappingStudy:
    """A mapping study executing a :class:`StudyProtocol` stage by stage."""

    def __init__(self, protocol: StudyProtocol) -> None:
        self.protocol = protocol
        self.stage = StudyStage.PLANNED
        self._institutions: InstitutionRegistry | None = None
        self._tools: ToolCatalog | None = None
        self._applications: ApplicationCatalog | None = None
        self._responses: ResponseSet | None = None
        self._selection: SelectionMatrix | None = None
        self._classifier_evaluation: ClassifierEvaluation | None = None
        self._flow = None
        self._harvested: list | None = None

    # -- stage 0 (optional): harvest ---------------------------------------------

    def harvest(self, corpus, *, query=None, criterion=None) -> "MappingStudy":
        """Optionally harvest a bibliographic corpus before collection.

        Deduplicates *corpus*, applies the protocol's (or the given) search
        *query* and an optional screening *criterion*, and records the
        narrowing as a PRISMA-style :class:`~repro.reporting.prisma.StudyFlow`
        available at :attr:`flow`.  The included publications are kept at
        :attr:`harvested_publications`.  The study remains in the PLANNED
        stage: harvesting informs collection, it does not replace it (the
        ICSC study collected tools by consortium instead).
        """
        from repro.corpus.query import Query
        from repro.reporting.prisma import StudyFlow

        self._require(StudyStage.PLANNED)
        records = list(corpus)
        flow = StudyFlow("records identified", len(records))
        deduped = corpus.deduplicate()
        records = list(deduped)
        flow.narrow("after deduplication", len(records), "duplicate records")
        queries = [query] if query is not None else list(
            self.protocol.search_queries
        )
        if queries:
            compiled = [
                Query(q) if isinstance(q, str) else q for q in queries
            ]
            records = [
                publication
                for publication in records
                if any(q.matches(publication) for q in compiled)
            ]
            flow.narrow("matched search queries", len(records), "off-topic")
        if criterion is not None:
            records = [
                publication
                for publication in records
                if criterion.evaluate(publication).included
            ]
            flow.narrow(
                "passed screening criteria", len(records),
                "failed inclusion criteria",
            )
        self._flow = flow
        self._harvested = records
        return self

    @property
    def flow(self):
        """The harvest :class:`~repro.reporting.prisma.StudyFlow`, if any."""
        if self._flow is None:
            raise StudyError("study has not harvested a corpus")
        return self._flow

    @property
    def harvested_publications(self) -> list:
        """Publications surviving the harvest, if any."""
        if self._harvested is None:
            raise StudyError("study has not harvested a corpus")
        return list(self._harvested)

    # -- stage helpers ----------------------------------------------------------

    def _require(self, *stages: StudyStage) -> None:
        if self.stage not in stages:
            expected = " or ".join(s.value for s in stages)
            raise StudyError(
                f"operation requires stage {expected}; study is "
                f"{self.stage.value!r}"
            )

    # -- stage 1: collect ----------------------------------------------------------

    def collect(
        self,
        institutions: InstitutionRegistry,
        tools: ToolCatalog,
        applications: ApplicationCatalog,
    ) -> "MappingStudy":
        """Load the study entities (validated against the protocol scheme)."""
        self._require(StudyStage.PLANNED)
        validate_ecosystem(institutions, tools, applications, self.protocol.scheme)
        self._institutions = institutions
        self._tools = tools
        self._applications = applications
        self.stage = StudyStage.COLLECTED
        return self

    # -- stage 2: classify ----------------------------------------------------------

    def classify(self, *, check_with_classifier: bool = True) -> "MappingStudy":
        """Accept the collected classification, optionally cross-checking it.

        The ICSC dataset carries the published (manual) labels; with
        *check_with_classifier* the keyword classifier re-derives labels
        from the descriptions and the agreement is recorded as the
        simulated-manual-classification experiment.
        """
        self._require(StudyStage.COLLECTED)
        assert self._tools is not None
        if check_with_classifier:
            self._classifier_evaluation = classify_tools(
                self._tools, self.protocol.scheme
            )
        self.stage = StudyStage.CLASSIFIED
        return self

    # -- stage 3: survey ----------------------------------------------------------

    def survey(self) -> "MappingStudy":
        """Run the tool-selection survey and build the selection matrix."""
        self._require(StudyStage.CLASSIFIED)
        assert self._tools is not None and self._applications is not None
        self._responses, self._selection = survey_selection(
            self._tools, self._applications, self.protocol.scheme
        )
        self.stage = StudyStage.SURVEYED
        return self

    # -- stage 4: analyze ----------------------------------------------------------

    def analyze(self, *, seed: int = 2023) -> StudyResults:
        """Answer the research questions and regenerate every artifact."""
        self._require(StudyStage.SURVEYED)
        assert (
            self._tools is not None
            and self._applications is not None
            and self._selection is not None
        )
        results = analyze_study(
            self._tools,
            self._applications,
            self._selection,
            self.protocol.scheme,
            seed=seed,
            classifier_evaluation=self._classifier_evaluation,
        )
        self.stage = StudyStage.ANALYZED
        return results

    # -- accessors ---------------------------------------------------------------

    @property
    def tools(self) -> ToolCatalog:
        if self._tools is None:
            raise StudyError("study has not collected tools yet")
        return self._tools

    @property
    def applications(self) -> ApplicationCatalog:
        if self._applications is None:
            raise StudyError("study has not collected applications yet")
        return self._applications

    @property
    def institutions(self) -> InstitutionRegistry:
        if self._institutions is None:
            raise StudyError("study has not collected institutions yet")
        return self._institutions

    @property
    def responses(self) -> ResponseSet:
        if self._responses is None:
            raise StudyError("study has not run the survey yet")
        return self._responses


def run_icsc_study(
    *,
    seed: int = 2023,
    cache=None,
    parallel: bool = False,
    telemetry=None,
) -> StudyResults:
    """Replay the paper's full pipeline on the encoded ICSC dataset.

    Runs on the :mod:`repro.pipeline` stage DAG: repeated invocations with
    identical parameters are served from a process-wide artifact cache
    without recomputing any stage.  Pass an explicit
    :class:`~repro.pipeline.ArtifactCache` (e.g. disk-backed) via *cache*,
    ``parallel=True`` to run independent stages concurrently, or a
    :class:`repro.telemetry.Telemetry` as *telemetry* to record spans and
    pipeline metrics for profiling.
    """
    from repro.pipeline.study import run_icsc_pipeline

    results, _ = run_icsc_pipeline(
        seed=seed, cache=cache, parallel=parallel, telemetry=telemetry
    )
    return results
