"""Typed catalogues of study entities with query and validation support.

A catalogue is an insertion-ordered, keyed collection.  On top of the generic
container, :class:`ToolCatalog` and :class:`ApplicationCatalog` add the
domain queries the analysis layer needs (tools by direction, tools by
institution, selections by application), and :func:`validate_ecosystem`
cross-checks an entire dataset: every key referenced anywhere must resolve.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Generic, TypeVar

from repro.core.entities import Application, Institution, Tool
from repro.core.taxonomy import ClassificationScheme
from repro.errors import DuplicateEntityError, UnknownEntityError, ValidationError

__all__ = [
    "Catalog",
    "InstitutionRegistry",
    "ToolCatalog",
    "ApplicationCatalog",
    "validate_ecosystem",
]

T = TypeVar("T")


class Catalog(Generic[T]):
    """Insertion-ordered keyed collection of entities.

    Subclasses set :attr:`entity_name` (used in error messages) and supply a
    ``_key_of`` implementation.
    """

    entity_name = "entity"

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._items: dict[str, T] = {}
        for item in items:
            self.add(item)

    @staticmethod
    def _key_of(item: T) -> str:
        return item.key  # type: ignore[attr-defined]

    def add(self, item: T) -> None:
        """Register *item*; reject duplicate keys."""
        key = self._key_of(item)
        if key in self._items:
            raise DuplicateEntityError(
                f"duplicate {self.entity_name} key {key!r}"
            )
        self._items[key] = item

    def __getitem__(self, key: str) -> T:
        try:
            return self._items[key]
        except KeyError:
            raise UnknownEntityError(
                f"unknown {self.entity_name} {key!r}"
            ) from None

    def get(self, key: str, default: T | None = None) -> T | None:
        """Dict-style tolerant lookup."""
        return self._items.get(key, default)

    def __contains__(self, key: object) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self)} items)"

    @property
    def keys(self) -> tuple[str, ...]:
        """Entity keys in insertion order."""
        return tuple(self._items)

    def filter(self, predicate: Callable[[T], bool]) -> list[T]:
        """Entities satisfying *predicate*, in insertion order."""
        return [item for item in self if predicate(item)]


class InstitutionRegistry(Catalog[Institution]):
    """Catalogue of :class:`Institution` entities."""

    entity_name = "institution"

    def by_kind(self, kind) -> list[Institution]:
        """Institutions of the given :class:`~repro.core.entities.InstitutionKind`."""
        return self.filter(lambda inst: inst.kind == kind)


class ToolCatalog(Catalog[Tool]):
    """Catalogue of :class:`Tool` entities with direction/institution queries."""

    entity_name = "tool"

    def by_direction(self, direction: str, *, include_secondary: bool = False) -> list[Tool]:
        """Tools whose primary (or any, with *include_secondary*) direction is *direction*."""
        if include_secondary:
            return self.filter(lambda t: direction in t.directions)
        return self.filter(lambda t: t.primary_direction == direction)

    def by_institution(self, institution: str) -> list[Tool]:
        """Tools provided by *institution*."""
        return self.filter(lambda t: t.institution == institution)

    def institutions(self) -> tuple[str, ...]:
        """Distinct institution keys, in first-appearance order."""
        seen: dict[str, None] = {}
        for tool in self:
            seen.setdefault(tool.institution, None)
        return tuple(seen)

    def direction_counts(self, scheme: ClassificationScheme) -> dict[str, int]:
        """Number of tools per primary direction, in scheme order (Fig. 2 data)."""
        counts = {key: 0 for key in scheme.keys}
        for tool in self:
            if tool.primary_direction not in counts:
                raise UnknownEntityError(
                    f"tool {tool.key!r} has direction "
                    f"{tool.primary_direction!r} outside scheme {scheme.name!r}"
                )
            counts[tool.primary_direction] += 1
        return counts

    def institution_coverage(self) -> dict[str, frozenset[str]]:
        """Map each institution to the set of primary directions it covers.

        This is the raw material of Fig. 3.
        """
        coverage: dict[str, set[str]] = {}
        for tool in self:
            coverage.setdefault(tool.institution, set()).add(tool.primary_direction)
        return {inst: frozenset(dirs) for inst, dirs in coverage.items()}


class ApplicationCatalog(Catalog[Application]):
    """Catalogue of :class:`Application` entities, ordered by paper section."""

    entity_name = "application"

    def ordered(self) -> list[Application]:
        """Applications sorted by paper subsection (3.1, 3.2, ...)."""
        return sorted(self, key=lambda app: app.section_order)

    def by_provider(self, institution: str) -> list[Application]:
        """Applications provided (or co-provided) by *institution*."""
        return self.filter(lambda app: institution in app.providers)

    def providers(self) -> tuple[str, ...]:
        """Distinct provider keys, in first-appearance order."""
        seen: dict[str, None] = {}
        for app in self.ordered():
            for provider in app.providers:
                seen.setdefault(provider, None)
        return tuple(seen)

    def selecting(self, tool: str) -> list[Application]:
        """Applications that selected *tool* for integration."""
        return self.filter(lambda app: tool in app.selected_tools)


def validate_ecosystem(
    institutions: InstitutionRegistry,
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
) -> None:
    """Cross-validate a complete study dataset.

    Checks that every cross-reference resolves:

    * every tool's institution is registered;
    * every tool direction (primary and secondary) belongs to *scheme*;
    * every application provider is registered;
    * every selected tool exists in the tool catalogue.

    Raises
    ------
    UnknownEntityError, UnknownCategoryError
        On the first dangling reference found.
    ValidationError
        If a catalogue is empty (a study needs at least one of each entity).
    """
    if not len(institutions) or not len(tools) or not len(applications):
        raise ValidationError(
            "ecosystem needs at least one institution, tool, and application"
        )
    for tool in tools:
        institutions[tool.institution]  # raises UnknownEntityError
        scheme.validate(tool.directions)
    for app in applications:
        for provider in app.providers:
            institutions[provider]
        for selected in app.selected_tools:
            tools[selected]
