"""Classification schemes (taxonomies) for mapping studies.

A systematic mapping study clusters primary studies into the categories of a
*classification scheme*.  The paper under reproduction uses a single-facet,
five-category scheme (interactive computing, orchestration, energy efficiency,
performance portability, Big Data management); this module keeps the concept
generic so new studies can define their own facets and categories.

The scheme is deliberately decoupled from the entity model: entities refer to
categories by *key* (a short, stable identifier) and the scheme validates and
resolves those keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import TaxonomyError, UnknownCategoryError, ValidationError

__all__ = ["Category", "ClassificationScheme", "Facet", "workflow_directions"]


def _require_key(key: str, what: str) -> str:
    """Validate a category/facet key: non-empty, lowercase, no spaces."""
    if not key:
        raise ValidationError(f"{what} key must be non-empty")
    if key != key.strip() or " " in key:
        raise ValidationError(f"{what} key {key!r} must not contain spaces")
    if key != key.lower():
        raise ValidationError(f"{what} key {key!r} must be lowercase")
    return key


@dataclass(frozen=True, slots=True)
class Category:
    """One category of a classification scheme.

    Parameters
    ----------
    key:
        Short stable identifier, e.g. ``"orchestration"``.
    name:
        Human-readable name, e.g. ``"Orchestration"``.
    description:
        A paragraph describing the category's scope; used both for
        documentation and as a keyword source by automatic classifiers.
    keywords:
        Terms that signal membership; consumed by
        :class:`repro.core.classification.KeywordClassifier`.
    """

    key: str
    name: str
    description: str = ""
    keywords: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require_key(self.key, "category")
        if not self.name:
            raise ValidationError("category name must be non-empty")
        # Normalize keywords to a lowercase tuple regardless of input type.
        object.__setattr__(
            self, "keywords", tuple(k.lower() for k in self.keywords)
        )

    def matches_keyword(self, term: str) -> bool:
        """Return whether *term* (case-insensitive) is a keyword of this category."""
        return term.lower() in self.keywords


@dataclass(frozen=True, slots=True)
class Facet:
    """A named dimension of a multi-faceted classification scheme."""

    key: str
    name: str
    description: str = ""

    def __post_init__(self) -> None:
        _require_key(self.key, "facet")
        if not self.name:
            raise ValidationError("facet name must be non-empty")


class ClassificationScheme:
    """An ordered, keyed collection of :class:`Category` objects.

    The scheme preserves insertion order (which fixes the row/slice order of
    every derived table and figure) and enforces key uniqueness.

    Examples
    --------
    >>> scheme = workflow_directions()
    >>> [c.key for c in scheme]  # doctest: +NORMALIZE_WHITESPACE
    ['interactive-computing', 'orchestration', 'energy-efficiency',
     'performance-portability', 'big-data-management']
    >>> scheme["orchestration"].name
    'Orchestration'
    """

    def __init__(
        self,
        categories: Iterable[Category] = (),
        *,
        facet: Facet | None = None,
        name: str = "unnamed scheme",
    ) -> None:
        self.name = name
        self.facet = facet
        self._categories: dict[str, Category] = {}
        for category in categories:
            self.add(category)

    # -- mutation ---------------------------------------------------------

    def add(self, category: Category) -> None:
        """Register *category*; raise :class:`TaxonomyError` on duplicate keys."""
        if category.key in self._categories:
            raise TaxonomyError(f"duplicate category key {category.key!r}")
        self._categories[category.key] = category

    # -- lookup -----------------------------------------------------------

    def __getitem__(self, key: str) -> Category:
        try:
            return self._categories[key]
        except KeyError:
            raise UnknownCategoryError(
                f"unknown category {key!r}; scheme {self.name!r} has "
                f"{sorted(self._categories)}"
            ) from None

    def __contains__(self, key: object) -> bool:
        return key in self._categories

    def __iter__(self) -> Iterator[Category]:
        return iter(self._categories.values())

    def __len__(self) -> int:
        return len(self._categories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassificationScheme(name={self.name!r}, "
            f"categories={list(self._categories)!r})"
        )

    @property
    def keys(self) -> tuple[str, ...]:
        """Category keys in scheme order."""
        return tuple(self._categories)

    @property
    def names(self) -> tuple[str, ...]:
        """Human-readable category names in scheme order."""
        return tuple(c.name for c in self)

    def index(self, key: str) -> int:
        """Return the 0-based position of *key* in scheme order."""
        try:
            return self.keys.index(key)
        except ValueError:
            raise UnknownCategoryError(f"unknown category {key!r}") from None

    def validate(self, keys: Iterable[str]) -> tuple[str, ...]:
        """Validate that every key in *keys* belongs to the scheme.

        Returns the keys as a tuple (in input order) so the call can be used
        inline during entity construction.
        """
        out = tuple(keys)
        for key in out:
            if key not in self:
                raise UnknownCategoryError(
                    f"unknown category {key!r}; scheme {self.name!r} has "
                    f"{sorted(self._categories)}"
                )
        return out

    def keyword_index(self) -> Mapping[str, str]:
        """Map every keyword to its category key.

        Raises
        ------
        TaxonomyError
            If the same keyword is claimed by two categories, which would
            make keyword classification ambiguous.
        """
        index: dict[str, str] = {}
        for category in self:
            for keyword in category.keywords:
                owner = index.setdefault(keyword, category.key)
                if owner != category.key:
                    raise TaxonomyError(
                        f"keyword {keyword!r} claimed by both "
                        f"{owner!r} and {category.key!r}"
                    )
        return index

    def subscheme(self, keys: Sequence[str]) -> "ClassificationScheme":
        """Return a new scheme restricted to *keys* (in the given order)."""
        return ClassificationScheme(
            (self[k] for k in keys), facet=self.facet, name=f"{self.name} (subset)"
        )


# Canonical keys of the paper's five research directions, in paper order.
INTERACTIVE_COMPUTING = "interactive-computing"
ORCHESTRATION = "orchestration"
ENERGY_EFFICIENCY = "energy-efficiency"
PERFORMANCE_PORTABILITY = "performance-portability"
BIG_DATA_MANAGEMENT = "big-data-management"

DIRECTION_KEYS: tuple[str, ...] = (
    INTERACTIVE_COMPUTING,
    ORCHESTRATION,
    ENERGY_EFFICIENCY,
    PERFORMANCE_PORTABILITY,
    BIG_DATA_MANAGEMENT,
)


def workflow_directions() -> ClassificationScheme:
    """Build the paper's five-direction classification scheme (Sec. 2).

    Category descriptions are condensed from the paper's Sec. 2.1-2.5 and the
    keywords are the discriminative terms those sections use; they feed the
    automatic classifiers used to simulate the manual classification step.
    """
    return ClassificationScheme(
        [
            Category(
                INTERACTIVE_COMPUTING,
                "Interactive computing",
                "User-friendly interactive interfaces to HPC systems: "
                "on-demand resource provisioning over batch queue managers, "
                "Jupyter-based workflows as a service, notebook kernels that "
                "orchestrate distributed steps.",
                keywords=(
                    "interactive", "jupyter", "notebook", "kernel",
                    "reservation", "calendar", "on-demand", "slurm",
                    "web", "dashboard", "cell",
                ),
            ),
            Category(
                ORCHESTRATION,
                "Orchestration",
                "Deployment and life-cycle management of modular applications "
                "across the Computing Continuum: TOSCA orchestrators, "
                "multi-cluster federation, hybrid Cloud/HPC workflow "
                "execution, FaaS platforms, service placement and live "
                "migration of micro-services.",
                keywords=(
                    "orchestration", "orchestrator", "tosca", "deployment",
                    "kubernetes", "multi-cloud", "federation", "faas",
                    "serverless", "placement", "migration", "micro-service",
                    "microservice", "fog", "provisioning",
                ),
            ),
            Category(
                ENERGY_EFFICIENCY,
                "Energy efficiency",
                "Measuring and reducing the energy footprint of workload "
                "execution: energy-aware placement under QoS constraints, "
                "resource-constrained algorithms for low-power Edge devices, "
                "carbon-footprint-aware computing.",
                keywords=(
                    "energy", "energy-efficient", "power", "low-power",
                    "carbon", "footprint", "green", "consumption",
                    "sustainable",
                ),
            ),
            Category(
                PERFORMANCE_PORTABILITY,
                "Performance portability",
                "Abstraction layers that keep performance across diverse "
                "execution environments: structured parallel programming, "
                "network and I/O abstraction, machine-learning-driven "
                "tuning, and multi-level compiler representations.",
                keywords=(
                    "portability", "portable", "abstraction", "dataflow",
                    "shared-memory", "compiler", "toolchain", "llvm", "mlir",
                    "posix", "intercept", "block-size", "partitioning",
                    "socket", "primitives",
                ),
            ),
            Category(
                BIG_DATA_MANAGEMENT,
                "Big Data management",
                "Parallel data mining, stream processing, autoML performance "
                "modelling, multi-dimensional analytics over graph data, and "
                "real-time simulation data sources for Big Data pipelines.",
                keywords=(
                    "big-data", "data-mining", "mining", "stream",
                    "streaming", "analytics", "automl", "hadoop", "spark",
                    "clustering", "hotspot", "regression", "graph-data",
                    "simulator",
                ),
            ),
        ],
        facet=Facet(
            "research-direction",
            "Research direction",
            "Primary research direction of a workflow-ecosystem tool.",
        ),
        name="workflow-research-directions",
    )
