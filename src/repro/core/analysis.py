"""Quantitative analyses over a study dataset — the data behind Figs. 2-4.

Each function takes the entity catalogues and returns plain statistical
objects (:class:`~repro.stats.frequency.FrequencyTable`, dicts, arrays), so
the visualization and reporting layers stay decoupled from entity types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import ClassificationScheme
from repro.errors import ValidationError
from repro.stats.diversity import evenness_report
from repro.stats.frequency import FrequencyTable
from repro.stats.inference import (
    TestResult,
    chi_square_homogeneity,
    permutation_tvd_test,
    total_variation_distance,
)

__all__ = [
    "supply_distribution",
    "coverage_histogram",
    "demand_distribution",
    "SupplyDemandComparison",
    "compare_supply_demand",
    "institution_profile",
]


def supply_distribution(
    tools: ToolCatalog, scheme: ClassificationScheme
) -> FrequencyTable:
    """Tools per research direction — the Fig. 2 pie data.

    Labels are category *keys* in scheme order.
    """
    return FrequencyTable(tools.direction_counts(scheme))


def coverage_histogram(
    tools: ToolCatalog, scheme: ClassificationScheme
) -> FrequencyTable:
    """Institutions by number of directions covered — the Fig. 3 data.

    Labels are the integers ``1 .. len(scheme)``; a label's count is the
    number of institutions whose tools span exactly that many primary
    directions.
    """
    coverage = tools.institution_coverage()
    if not coverage:
        raise ValidationError("no tools, cannot compute coverage")
    sizes = np.asarray([len(dirs) for dirs in coverage.values()])
    k = len(scheme)
    if (sizes > k).any():
        raise ValidationError("an institution covers more directions than the scheme has")
    bins = np.bincount(sizes, minlength=k + 1)[1:]
    return FrequencyTable({i + 1: int(bins[i]) for i in range(k)})


def demand_distribution(
    selection: SelectionMatrix,
    tools: ToolCatalog,
    scheme: ClassificationScheme,
) -> FrequencyTable:
    """Selection votes per research direction — the Fig. 4 pie data."""
    return selection.votes_per_direction(tools, scheme)


@dataclass(frozen=True, slots=True)
class SupplyDemandComparison:
    """Supply (Fig. 2) versus demand (Fig. 4) over the research directions.

    Attributes
    ----------
    supply, demand:
        The two frequency tables, aligned on scheme order.
    supply_evenness, demand_evenness:
        Diversity/evenness indices for each distribution, quantifying the
        paper's "balanced" vs. "much more unbalanced" observations.
    tvd:
        Total variation distance between the two share vectors.
    homogeneity:
        Chi-square homogeneity test outcome.
    permutation:
        Seeded permutation (TVD) test outcome.
    demand_supply_ratio:
        Per-direction ratio of demand share to supply share; > 1 means the
        direction is more demanded than supplied (orchestration), < 1 the
        reverse (energy efficiency).
    """

    supply: FrequencyTable
    demand: FrequencyTable
    supply_evenness: dict[str, float]
    demand_evenness: dict[str, float]
    tvd: float
    homogeneity: TestResult
    permutation: TestResult
    demand_supply_ratio: dict[str, float]

    def most_demanded(self) -> str:
        """Direction with the highest demand share."""
        return self.demand.mode()

    def least_demanded(self) -> str:
        """Direction with the lowest demand share."""
        return self.demand.argmin()


def compare_supply_demand(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
    *,
    seed: int = 2023,
    n_permutations: int = 10_000,
) -> SupplyDemandComparison:
    """Run the full Fig. 2 vs. Fig. 4 comparison (the heart of Q3)."""
    selection = SelectionMatrix.from_catalogs(tools, applications, scheme)
    supply = supply_distribution(tools, scheme)
    demand = demand_distribution(selection, tools, scheme)
    ratios: dict[str, float] = {}
    supply_shares = supply.shares()
    demand_shares = demand.shares()
    for i, key in enumerate(scheme.keys):
        if supply_shares[i] == 0:
            ratios[key] = float("inf") if demand_shares[i] > 0 else 1.0
        else:
            ratios[key] = float(demand_shares[i] / supply_shares[i])
    return SupplyDemandComparison(
        supply=supply,
        demand=demand,
        supply_evenness=evenness_report(supply),
        demand_evenness=evenness_report(demand),
        tvd=total_variation_distance(supply, demand),
        homogeneity=chi_square_homogeneity(supply, demand),
        permutation=permutation_tvd_test(
            supply, demand, seed=seed, n_permutations=n_permutations
        ),
        demand_supply_ratio=ratios,
    )


def institution_profile(
    tools: ToolCatalog, scheme: ClassificationScheme
) -> dict[str, FrequencyTable]:
    """Per-institution distribution of tools over directions.

    Returns institution key → frequency table over the full scheme (zero
    counts kept so all profiles are comparable).
    """
    profiles: dict[str, FrequencyTable] = {}
    for institution in tools.institutions():
        counts = {key: 0 for key in scheme.keys}
        for tool in tools.by_institution(institution):
            counts[tool.primary_direction] += 1
        profiles[institution] = FrequencyTable(counts)
    return profiles
