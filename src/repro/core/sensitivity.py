"""Sensitivity analysis: how robust are the study's findings?

A mapping study's headline claims should not hinge on a single catalogued
tool or a single surveyed application.  This module quantifies that with
leave-one-out (LOO) perturbations:

* :func:`leave_one_application_out` — recompute the demand distribution
  (Fig. 4) with each application removed; report how often the top/bottom
  direction ranking survives.
* :func:`leave_one_tool_out` — recompute the supply distribution (Fig. 2)
  with each tool removed; report the worst-case share swing.
* :func:`jackknife_shares` — LOO jackknife standard errors for every
  direction's demand share.

The paper's conclusions hold under all 10 application removals (orchestration
stays first, energy efficiency stays last) — an analysis the benchmark
regenerates (see ``benchmarks/test_bench_sensitivity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.taxonomy import ClassificationScheme
from repro.errors import ValidationError
from repro.stats.frequency import FrequencyTable

__all__ = [
    "LeaveOneOutResult",
    "leave_one_application_out",
    "leave_one_tool_out",
    "jackknife_shares",
]


@dataclass(frozen=True, slots=True)
class LeaveOneOutResult:
    """Outcome of one leave-one-out family.

    Attributes
    ----------
    baseline:
        The unperturbed distribution.
    perturbed:
        Removed-entity key → resulting distribution.
    top_stable, bottom_stable:
        Whether the most/least frequent category is identical in every
        perturbation.
    max_share_swing:
        Largest absolute change of any category share across perturbations.
    breaking_cases:
        Removed-entity keys whose perturbation changes the top or bottom
        category.
    """

    baseline: FrequencyTable
    perturbed: dict[str, FrequencyTable]
    top_stable: bool
    bottom_stable: bool
    max_share_swing: float
    breaking_cases: tuple[str, ...]


def _votes_table(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
    *,
    skip_application: str | None = None,
) -> FrequencyTable:
    counts = {key: 0 for key in scheme.keys}
    for app in applications:
        if app.key == skip_application:
            continue
        for tool_key in app.selected_tools:
            counts[tools[tool_key].primary_direction] += 1
    return FrequencyTable(counts)


def _summarize(
    baseline: FrequencyTable, perturbed: dict[str, FrequencyTable]
) -> LeaveOneOutResult:
    if not perturbed:
        raise ValidationError("need at least one perturbation")
    base_shares = baseline.shares()
    top, bottom = baseline.mode(), baseline.argmin()
    breaking: list[str] = []
    max_swing = 0.0
    for removed, table in perturbed.items():
        if table.total == 0:
            breaking.append(removed)
            continue
        swing = float(np.abs(table.shares() - base_shares).max())
        max_swing = max(max_swing, swing)
        if table.mode() != top or table.argmin() != bottom:
            breaking.append(removed)
    return LeaveOneOutResult(
        baseline=baseline,
        perturbed=perturbed,
        top_stable=all(
            t.total > 0 and t.mode() == top for t in perturbed.values()
        ),
        bottom_stable=all(
            t.total > 0 and t.argmin() == bottom for t in perturbed.values()
        ),
        max_share_swing=max_swing,
        breaking_cases=tuple(breaking),
    )


def leave_one_application_out(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
) -> LeaveOneOutResult:
    """Recompute the Fig. 4 demand distribution with each application removed."""
    if len(applications) < 2:
        raise ValidationError("need at least two applications for LOO")
    baseline = _votes_table(tools, applications, scheme)
    perturbed = {
        app.key: _votes_table(
            tools, applications, scheme, skip_application=app.key
        )
        for app in applications.ordered()
    }
    return _summarize(baseline, perturbed)


def leave_one_tool_out(
    tools: ToolCatalog, scheme: ClassificationScheme
) -> LeaveOneOutResult:
    """Recompute the Fig. 2 supply distribution with each tool removed."""
    if len(tools) < 2:
        raise ValidationError("need at least two tools for LOO")
    baseline = FrequencyTable(tools.direction_counts(scheme))
    perturbed: dict[str, FrequencyTable] = {}
    for removed in tools:
        counts = {key: 0 for key in scheme.keys}
        for tool in tools:
            if tool.key == removed.key:
                continue
            counts[tool.primary_direction] += 1
        perturbed[removed.key] = FrequencyTable(counts)
    return _summarize(baseline, perturbed)


def jackknife_shares(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
) -> dict[str, tuple[float, float]]:
    """Leave-one-application-out jackknife of the demand shares.

    Returns direction key → ``(share, standard_error)``.  The jackknife SE
    is ``sqrt((n-1)/n * sum((theta_i - theta_bar)^2))`` over the ``n``
    LOO replicates — the appropriate resampling scheme when the sampling
    unit is the *application* (each contributes a block of votes), not the
    individual vote.
    """
    apps = applications.ordered()
    n = len(apps)
    if n < 2:
        raise ValidationError("need at least two applications for jackknife")
    baseline = _votes_table(tools, applications, scheme)
    replicates = np.empty((n, len(scheme)), dtype=np.float64)
    for i, app in enumerate(apps):
        table = _votes_table(
            tools, applications, scheme, skip_application=app.key
        )
        if table.total == 0:
            raise ValidationError(
                f"removing {app.key!r} empties the vote table"
            )
        replicates[i] = table.shares()
    mean = replicates.mean(axis=0)
    se = np.sqrt((n - 1) / n * ((replicates - mean) ** 2).sum(axis=0))
    return {
        key: (float(baseline.shares()[i]), float(se[i]))
        for i, key in enumerate(scheme.keys)
    }
