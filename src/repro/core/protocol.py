"""Study protocol: the plan an SMS commits to before collecting data.

Per the SMS methodology (Petersen et al. 2008), a mapping study fixes its
research questions, search/collection strategy, screening criteria, and
classification scheme *up front*.  :class:`StudyProtocol` captures that
plan; :class:`~repro.core.study.MappingStudy` executes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import ClassificationScheme, workflow_directions
from repro.errors import ValidationError
from repro.screening.criteria import Criterion

__all__ = ["ResearchQuestion", "StudyProtocol", "icsc_protocol"]


@dataclass(frozen=True, slots=True)
class ResearchQuestion:
    """One research question of the protocol."""

    key: str
    text: str

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("research question key must be non-empty")
        if not self.text:
            raise ValidationError("research question text must be non-empty")


@dataclass(frozen=True)
class StudyProtocol:
    """The full plan of a mapping study.

    Parameters
    ----------
    title:
        Study title.
    questions:
        The research questions driving the analysis.
    scheme:
        The classification scheme for primary studies/tools.
    search_queries:
        Boolean query strings for corpus harvesting (optional — the ICSC
        study collected by consortium instead).
    inclusion:
        Screening criterion candidate items must pass (optional).
    scope_note:
        A statement of scope and threats to validity.
    """

    title: str
    questions: tuple[ResearchQuestion, ...]
    scheme: ClassificationScheme
    search_queries: tuple[str, ...] = ()
    inclusion: Criterion | None = None
    scope_note: str = ""

    def __post_init__(self) -> None:
        if not self.title:
            raise ValidationError("protocol title must be non-empty")
        if not self.questions:
            raise ValidationError("protocol needs at least one research question")
        keys = [q.key for q in self.questions]
        if len(set(keys)) != len(keys):
            raise ValidationError("duplicate research question keys")
        if len(self.scheme) == 0:
            raise ValidationError("protocol scheme must have categories")

    def question(self, key: str) -> ResearchQuestion:
        """Look one research question up by key."""
        for q in self.questions:
            if q.key == key:
                return q
        raise ValidationError(f"unknown research question {key!r}")


def icsc_protocol() -> StudyProtocol:
    """The protocol of the paper under reproduction (Sec. 1)."""
    return StudyProtocol(
        title="A Systematic Mapping Study of Italian Research on Workflows",
        questions=(
            ResearchQuestion(
                "q1",
                "Which are the main research directions for WMSs in the "
                "Computing Continuum?",
            ),
            ResearchQuestion(
                "q2",
                "Which research directions are widespread in the scientific "
                "community?",
            ),
            ResearchQuestion(
                "q3",
                "Which research directions address a critical need for "
                "modern scientific applications?",
            ),
        ),
        scheme=workflow_directions(),
        scope_note=(
            "The study only considers the Italian ICSC ecosystem and is not "
            "a survey of the international state of the art; the ICSC "
            "ecosystem is used as a statistical sample of international "
            "research on workflows."
        ),
    )
