"""Multi-faceted classification: the full SMS map.

Petersen's systematic maps classify primary studies along *several* facets
at once — typically a topic facet (here: the five research directions) and
the Wieringa *research type* facet (validation research, evaluation
research, solution proposal, ...).  The crossing of two facets is the
signature SMS visualization: a bubble chart with topic on one axis and
research type on the other.

This module provides:

* :func:`research_type_facet` — the Wieringa et al. (2006) research-type
  scheme with classifier-ready keywords;
* :class:`FacetedClassification` — per-item labels across any number of
  facets, with validation against each facet's scheme;
* :func:`facet_matrix` — the cross-facet count matrix feeding
  :func:`repro.viz.matrix.bubble_plot`.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.taxonomy import Category, ClassificationScheme, Facet
from repro.errors import TaxonomyError, UnknownCategoryError, ValidationError

__all__ = ["research_type_facet", "FacetedClassification", "facet_matrix"]


def research_type_facet() -> ClassificationScheme:
    """The Wieringa et al. research-type facet, keyworded for auto-classification."""
    return ClassificationScheme(
        [
            Category(
                "validation-research",
                "Validation research",
                "Techniques investigated are novel and not yet implemented "
                "in practice: experiments, simulation, prototypes, "
                "mathematical analysis.",
                keywords=(
                    "experiment", "experiments", "simulation", "prototype",
                    "benchmark", "evaluate", "evaluation", "measured",
                    "synthetic",
                ),
            ),
            Category(
                "evaluation-research",
                "Evaluation research",
                "Techniques are implemented in practice and evaluated in "
                "production: case studies, field studies, deployments.",
                keywords=(
                    "case-study", "production", "deployment", "deployed",
                    "field", "industrial", "practice", "users",
                ),
            ),
            Category(
                "solution-proposal",
                "Solution proposal",
                "A solution is proposed with a small example or argument, "
                "without a full-blown validation.",
                keywords=(
                    "propose", "proposal", "approach", "framework", "design",
                    "architecture", "method", "toolbox", "middleware",
                    "library",
                ),
            ),
            Category(
                "philosophical",
                "Philosophical paper",
                "Sketches a new way of looking at things: taxonomies, "
                "conceptual frameworks, roadmaps.",
                keywords=(
                    "taxonomy", "roadmap", "vision", "survey", "mapping",
                    "classification", "landscape", "directions", "future",
                ),
            ),
            Category(
                "experience",
                "Experience paper",
                "What was done in practice and the lessons learned, from "
                "the author's personal experience.",
                keywords=(
                    "experience", "lessons", "learned", "report",
                    "retrospective", "initiative",
                ),
            ),
        ],
        facet=Facet(
            "research-type",
            "Research type",
            "Wieringa et al. (2006) research-type classification.",
        ),
        name="wieringa-research-types",
    )


class FacetedClassification:
    """Labels for a set of items across several classification facets.

    Parameters
    ----------
    facets:
        Facet key → scheme.  Every recorded label is validated against the
        owning scheme.

    Examples
    --------
    >>> from repro.core.taxonomy import workflow_directions
    >>> faceted = FacetedClassification({
    ...     "direction": workflow_directions(),
    ...     "type": research_type_facet(),
    ... })
    >>> faceted.record("streamflow", direction="orchestration",
    ...                type="evaluation-research")
    >>> faceted.label_of("streamflow", "direction")
    'orchestration'
    """

    def __init__(self, facets: Mapping[str, ClassificationScheme]) -> None:
        if not facets:
            raise ValidationError("need at least one facet")
        self._schemes = dict(facets)
        self._labels: dict[str, dict[str, str]] = {}

    @property
    def facet_keys(self) -> tuple[str, ...]:
        return tuple(self._schemes)

    @property
    def item_keys(self) -> tuple[str, ...]:
        """Items in recording order."""
        return tuple(self._labels)

    def scheme(self, facet: str) -> ClassificationScheme:
        """The scheme backing one facet."""
        try:
            return self._schemes[facet]
        except KeyError:
            raise TaxonomyError(f"unknown facet {facet!r}") from None

    def record(self, item: str, **labels: str) -> None:
        """Record facet labels for *item* (validated; re-labeling is an error)."""
        if not item:
            raise ValidationError("item key must be non-empty")
        if not labels:
            raise ValidationError("record() needs at least one facet label")
        entry = self._labels.setdefault(item, {})
        for facet, label in labels.items():
            scheme = self.scheme(facet)
            if label not in scheme:
                raise UnknownCategoryError(
                    f"label {label!r} outside facet {facet!r}"
                )
            if facet in entry:
                raise ValidationError(
                    f"item {item!r} already labelled on facet {facet!r}"
                )
            entry[facet] = label

    def label_of(self, item: str, facet: str) -> str:
        """The recorded label of *item* on *facet*."""
        self.scheme(facet)
        try:
            return self._labels[item][facet]
        except KeyError:
            raise ValidationError(
                f"item {item!r} has no label on facet {facet!r}"
            ) from None

    def complete_items(self) -> tuple[str, ...]:
        """Items labelled on every facet."""
        return tuple(
            item
            for item, entry in self._labels.items()
            if len(entry) == len(self._schemes)
        )

    def distribution(self, facet: str):
        """Frequency table of one facet over completely-labelled items."""
        from repro.stats.frequency import FrequencyTable

        scheme = self.scheme(facet)
        return FrequencyTable.from_observations(
            (self._labels[item][facet] for item in self.complete_items()),
            order=scheme.keys,
        )


def facet_matrix(
    classification: FacetedClassification,
    row_facet: str,
    col_facet: str,
) -> tuple[np.ndarray, tuple[str, ...], tuple[str, ...]]:
    """Cross-facet count matrix — the systematic-map bubble chart data.

    Returns ``(matrix, row_keys, col_keys)`` over the two facets' scheme
    orders, counting the items completely labelled on both.
    """
    rows = classification.scheme(row_facet)
    cols = classification.scheme(col_facet)
    matrix = np.zeros((len(rows), len(cols)), dtype=np.int64)
    counted = 0
    for item in classification.item_keys:
        try:
            r = classification.label_of(item, row_facet)
            c = classification.label_of(item, col_facet)
        except ValidationError:
            continue
        matrix[rows.index(r), cols.index(c)] += 1
        counted += 1
    if counted == 0:
        raise ValidationError(
            f"no item is labelled on both {row_facet!r} and {col_facet!r}"
        )
    return matrix, rows.keys, cols.keys
