"""Keywording: building a classification scheme from document text.

Petersen's SMS methodology constructs the classification scheme by
*keywording* abstracts.  This module automates the two directions of that
step:

* :func:`discriminative_keywords` — given documents already grouped into
  draft categories, find each category's most discriminative terms (mean
  in-class TF-IDF contrasted against out-of-class), i.e. derive the
  ``Category.keywords`` a :class:`KeywordClassifier` needs;
* :func:`induce_scheme` — with no draft at all, cluster the documents
  (seeded spherical k-means over TF-IDF vectors, implemented from scratch
  with vectorized numpy) and return a generated
  :class:`~repro.core.taxonomy.ClassificationScheme` plus the cluster
  assignment.

Applied to the 25 ICSC tool descriptions, the induced 5-cluster scheme
recovers the paper's manual grouping to a large extent (measured in the
tests via the adjusted Rand index, also implemented here).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.taxonomy import Category, ClassificationScheme
from repro.errors import ClassificationError, ValidationError
from repro.text.vectorize import TfidfModel

__all__ = [
    "discriminative_keywords",
    "kmeans",
    "induce_scheme",
    "adjusted_rand_index",
]


def discriminative_keywords(
    texts_by_category: Mapping[str, Sequence[str]],
    *,
    top_k: int = 8,
) -> dict[str, tuple[str, ...]]:
    """Most discriminative (stemmed) terms per category.

    Scores each vocabulary term by ``mean tf-idf inside the category minus
    mean tf-idf outside it`` and keeps the *top_k* positive terms.
    """
    if top_k < 1:
        raise ValidationError(f"top_k must be >= 1, got {top_k}")
    if not texts_by_category:
        raise ValidationError("need at least one category")
    categories = list(texts_by_category)
    documents: list[str] = []
    labels: list[int] = []
    for c, category in enumerate(categories):
        texts = texts_by_category[category]
        if not texts:
            raise ValidationError(f"category {category!r} has no documents")
        documents.extend(texts)
        labels.extend([c] * len(texts))
    model = TfidfModel(documents)
    matrix = model.matrix  # (docs, vocab), L2-normalized rows
    label_vector = np.asarray(labels)
    terms = sorted(model.vocabulary, key=model.vocabulary.get)

    result: dict[str, tuple[str, ...]] = {}
    for c, category in enumerate(categories):
        inside = label_vector == c
        mean_in = matrix[inside].mean(axis=0)
        mean_out = (
            matrix[~inside].mean(axis=0)
            if (~inside).any()
            else np.zeros(matrix.shape[1])
        )
        contrast = mean_in - mean_out
        order = np.argsort(-contrast, kind="stable")[:top_k]
        result[category] = tuple(
            terms[i] for i in order if contrast[i] > 0
        )
    return result


def kmeans(
    matrix: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 8,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Spherical k-means over L2-normalized rows.

    Uses cosine similarity (rows and centroids unit-normalized, assignment
    by maximum dot product), k-means++-style seeding, and *n_init* restarts
    keeping the best inertia.  Fully vectorized: the assignment step is one
    ``matrix @ centroids.T`` product per iteration.

    Returns ``(labels, centroids, inertia)`` where inertia is the summed
    cosine distance ``sum(1 - sim(doc, centroid))``.
    """
    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < k:
        raise ValidationError(
            f"need a 2-D matrix with at least k={k} rows, got {data.shape}"
        )
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    norms = np.linalg.norm(data, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    data = data / norms
    rng = np.random.default_rng(seed)

    best: tuple[np.ndarray, np.ndarray, float] | None = None
    for _ in range(n_init):
        # k-means++ seeding on cosine distance.
        centroids = np.empty((k, data.shape[1]))
        first = int(rng.integers(data.shape[0]))
        centroids[0] = data[first]
        min_dist = 1.0 - data @ centroids[0]
        for c in range(1, k):
            weights = np.clip(min_dist, 1e-12, None)
            probabilities = weights / weights.sum()
            choice = int(rng.choice(data.shape[0], p=probabilities))
            centroids[c] = data[choice]
            min_dist = np.minimum(min_dist, 1.0 - data @ centroids[c])

        labels = np.zeros(data.shape[0], dtype=np.int64)
        previous_inertia = np.inf
        for _ in range(max_iter):
            similarity = data @ centroids.T
            labels = similarity.argmax(axis=1)
            inertia = float((1.0 - similarity.max(axis=1)).sum())
            # Recompute centroids; empty clusters grab the farthest point.
            for c in range(k):
                members = data[labels == c]
                if len(members) == 0:
                    farthest = int((1.0 - similarity.max(axis=1)).argmax())
                    centroids[c] = data[farthest]
                    continue
                mean = members.mean(axis=0)
                norm = np.linalg.norm(mean)
                centroids[c] = mean / norm if norm > 0 else mean
            if previous_inertia - inertia < tol:
                break
            previous_inertia = inertia
        similarity = data @ centroids.T
        labels = similarity.argmax(axis=1)
        inertia = float((1.0 - similarity.max(axis=1)).sum())
        if best is None or inertia < best[2]:
            best = (labels.copy(), centroids.copy(), inertia)
    assert best is not None
    return best


def induce_scheme(
    documents: Sequence[str],
    k: int,
    *,
    seed: int = 0,
    keywords_per_category: int = 6,
) -> tuple[ClassificationScheme, np.ndarray]:
    """Induce a *k*-category scheme by clustering the documents.

    Each cluster becomes a :class:`Category` keyed ``cluster-0`` ... and
    named/keyworded by its centroid's top TF-IDF terms.  Returns the scheme
    and the per-document cluster labels.
    """
    if len(documents) < k:
        raise ClassificationError(
            f"cannot induce {k} categories from {len(documents)} documents"
        )
    model = TfidfModel(documents)
    labels, centroids, _ = kmeans(model.matrix, k, seed=seed)
    terms = sorted(model.vocabulary, key=model.vocabulary.get)
    categories = []
    for c in range(k):
        order = np.argsort(-centroids[c], kind="stable")
        top_terms = [terms[i] for i in order[:keywords_per_category]
                     if centroids[c][i] > 0]
        if not top_terms:
            top_terms = [f"cluster{c}"]
        categories.append(
            Category(
                f"cluster-{c}",
                " / ".join(top_terms[:3]),
                description="Induced by spherical k-means over TF-IDF vectors.",
                keywords=tuple(top_terms),
            )
        )
    scheme = ClassificationScheme(categories, name=f"induced-{k}")
    return scheme, labels


def adjusted_rand_index(
    labels_a: Sequence[int] | np.ndarray, labels_b: Sequence[int] | np.ndarray
) -> float:
    """Adjusted Rand index between two clusterings of the same items.

    1 means identical partitions, ~0 chance-level agreement.  Vectorized
    over the contingency table.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValidationError("need two aligned non-empty label vectors")
    _, a_codes = np.unique(a, return_inverse=True)
    _, b_codes = np.unique(b, return_inverse=True)
    n_a = a_codes.max() + 1
    n_b = b_codes.max() + 1
    contingency = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(contingency, (a_codes, b_codes), 1)

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(contingency).sum()
    sum_rows = comb2(contingency.sum(axis=1)).sum()
    sum_cols = comb2(contingency.sum(axis=0)).sum()
    total = comb2(np.asarray([a.size]))[0]
    expected = sum_rows * sum_cols / total if total else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / (max_index - expected))
