"""Classifiers that map tool descriptions to research directions.

The paper classified its 25 tools *manually*.  To make the pipeline
executable end-to-end (DESIGN.md §3, substitution 1), this module provides
automatic classifiers over the textual descriptions, plus evaluation
machinery to measure their agreement with the published labels:

* :class:`KeywordClassifier` — scores each category by (stemmed) taxonomy
  keyword hits; transparent and deterministic, mirroring how a human skims
  for signal terms.
* :class:`CentroidClassifier` — TF-IDF nearest-centroid over category
  descriptions plus optional labeled seeds.
* :class:`EnsembleClassifier` — normalized-score ensemble of the above.
* :func:`evaluate_classifier` — accuracy, confusion matrix, and per-class
  precision/recall/F1 against gold labels.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.taxonomy import ClassificationScheme
from repro.errors import ClassificationError, ValidationError
from repro.text.stem import porter_stem, stem_tokens
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfidfModel

__all__ = [
    "ClassificationResult",
    "KeywordClassifier",
    "CentroidClassifier",
    "EnsembleClassifier",
    "ClassifierEvaluation",
    "evaluate_classifier",
]


@dataclass(frozen=True, slots=True)
class ClassificationResult:
    """Outcome of classifying one document.

    Attributes
    ----------
    label:
        Winning category key.
    scores:
        Category key → raw score, over the whole scheme.
    confidence:
        Winning share of total score, in ``(0, 1]``; 1/k for an
        all-zero-score fallback over k categories.
    """

    label: str
    scores: Mapping[str, float]
    confidence: float

    def top(self, k: int = 3) -> list[tuple[str, float]]:
        """The *k* best-scoring categories, descending, ties alphabetical."""
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


def _normalize_result(
    scheme: ClassificationScheme, scores: dict[str, float]
) -> ClassificationResult:
    total = sum(scores.values())
    if total <= 0.0:
        # No signal at all: deterministic fallback to the first category,
        # flagged by the minimal possible confidence.
        label = scheme.keys[0]
        return ClassificationResult(label, scores, 1.0 / len(scheme))
    best = max(scheme.keys, key=lambda k: (scores[k], -scheme.index(k)))
    return ClassificationResult(best, scores, scores[best] / total)


class KeywordClassifier:
    """Score categories by stemmed keyword occurrences in the text.

    Each category keyword is stemmed; each (stemmed) document token that
    matches contributes 1 to that category.  Multi-word keywords are matched
    against the raw lowercase text instead.
    """

    def __init__(self, scheme: ClassificationScheme) -> None:
        if len(scheme) == 0:
            raise ValidationError("scheme must have at least one category")
        self.scheme = scheme
        self._single: dict[str, list[str]] = {}
        self._phrases: dict[str, list[str]] = {}
        for category in scheme:
            singles, phrases = [], []
            for keyword in category.keywords:
                if " " in keyword:
                    phrases.append(keyword)
                else:
                    singles.append(porter_stem(keyword))
            self._single[category.key] = singles
            self._phrases[category.key] = phrases

    def classify(self, text: str) -> ClassificationResult:
        """Classify one document."""
        if not text.strip():
            raise ClassificationError("cannot classify empty text")
        tokens = stem_tokens(tokenize(text))
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        lower = text.lower()
        scores: dict[str, float] = {}
        for key in self.scheme.keys:
            hits = sum(counts.get(stemmed, 0) for stemmed in self._single[key])
            hits += sum(lower.count(phrase) for phrase in self._phrases[key])
            scores[key] = float(hits)
        return _normalize_result(self.scheme, scores)

    def classify_many(self, texts: Iterable[str]) -> list[ClassificationResult]:
        """Classify a batch of documents."""
        return [self.classify(text) for text in texts]


class CentroidClassifier:
    """TF-IDF nearest-centroid classifier.

    The fitting corpus is one pseudo-document per category: the category
    description and keywords, concatenated with any labeled *seeds*.  A new
    document is assigned to the category with the highest cosine similarity.

    Parameters
    ----------
    scheme:
        The classification scheme.
    seeds:
        Optional ``(text, label)`` pairs to enrich the category centroids
        (e.g. leave-one-out folds of already-classified tools).
    """

    def __init__(
        self,
        scheme: ClassificationScheme,
        seeds: Sequence[tuple[str, str]] = (),
    ) -> None:
        if len(scheme) == 0:
            raise ValidationError("scheme must have at least one category")
        self.scheme = scheme
        corpus: dict[str, list[str]] = {
            c.key: [c.description + " " + " ".join(c.keywords)] for c in scheme
        }
        for text, label in seeds:
            if label not in scheme:
                raise ValidationError(f"seed label {label!r} outside scheme")
            corpus[label].append(text)
        self._docs = [" ".join(corpus[key]) for key in scheme.keys]
        self._model = TfidfModel(self._docs)

    def classify(self, text: str) -> ClassificationResult:
        """Classify one document by cosine similarity to category centroids."""
        if not text.strip():
            raise ClassificationError("cannot classify empty text")
        sims = self._model.similarity([text])[0]
        # Cosine can be 0 across the board for out-of-vocabulary text.
        scores = {
            key: float(max(sims[i], 0.0))
            for i, key in enumerate(self.scheme.keys)
        }
        return _normalize_result(self.scheme, scores)

    def classify_many(self, texts: Sequence[str]) -> list[ClassificationResult]:
        """Classify a batch with a single vectorized similarity call."""
        texts = list(texts)
        if not texts:
            return []
        if any(not t.strip() for t in texts):
            raise ClassificationError("cannot classify empty text")
        sims = self._model.similarity(texts)  # (n_texts, n_categories)
        results = []
        for row in sims:
            scores = {
                key: float(max(row[i], 0.0))
                for i, key in enumerate(self.scheme.keys)
            }
            results.append(_normalize_result(self.scheme, scores))
        return results


class EnsembleClassifier:
    """Combine classifiers by averaging their normalized score vectors.

    Parameters
    ----------
    classifiers:
        Sub-classifiers sharing one scheme.
    weights:
        Optional positive weight per classifier (default: uniform).
    """

    def __init__(
        self,
        classifiers: Sequence[KeywordClassifier | CentroidClassifier],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not classifiers:
            raise ValidationError("ensemble needs at least one classifier")
        schemes = {id(c.scheme) for c in classifiers}
        keys = {c.scheme.keys for c in classifiers}
        if len(keys) != 1:
            raise ValidationError("ensemble members must share category keys")
        self.scheme = classifiers[0].scheme
        self._members = tuple(classifiers)
        if weights is None:
            weights = [1.0] * len(classifiers)
        if len(weights) != len(classifiers) or any(w <= 0 for w in weights):
            raise ValidationError("need one positive weight per classifier")
        total = float(sum(weights))
        self._weights = tuple(w / total for w in weights)
        del schemes  # identity equality not required, key equality is

    def classify(self, text: str) -> ClassificationResult:
        """Weighted-average of member score vectors (each L1-normalized)."""
        combined = {key: 0.0 for key in self.scheme.keys}
        for weight, member in zip(self._weights, self._members):
            result = member.classify(text)
            total = sum(result.scores.values())
            if total <= 0:
                continue
            for key, score in result.scores.items():
                combined[key] += weight * score / total
        return _normalize_result(self.scheme, combined)

    def classify_many(self, texts: Sequence[str]) -> list[ClassificationResult]:
        """Classify a batch of documents."""
        return [self.classify(text) for text in texts]


@dataclass(frozen=True, slots=True)
class ClassifierEvaluation:
    """Agreement between predicted and gold labels.

    Attributes
    ----------
    accuracy:
        Fraction of exact label matches.
    confusion:
        ``confusion[i, j]`` counts gold category ``labels[i]`` predicted as
        ``labels[j]``.
    labels:
        Category keys indexing the confusion matrix (scheme order).
    per_class:
        Category key → ``{"precision", "recall", "f1", "support"}``.
    misclassified:
        ``(index, gold, predicted)`` triples for every miss.
    """

    accuracy: float
    confusion: np.ndarray
    labels: tuple[str, ...]
    per_class: Mapping[str, Mapping[str, float]]
    misclassified: tuple[tuple[int, str, str], ...]

    def macro_f1(self) -> float:
        """Unweighted mean F1 over classes with support."""
        values = [
            m["f1"] for m in self.per_class.values() if m["support"] > 0
        ]
        return float(np.mean(values)) if values else 0.0


def evaluate_classifier(
    predictions: Sequence[ClassificationResult],
    gold: Sequence[str],
    scheme: ClassificationScheme,
) -> ClassifierEvaluation:
    """Compare *predictions* with *gold* labels over *scheme*."""
    if len(predictions) != len(gold):
        raise ValidationError(
            f"{len(predictions)} predictions vs {len(gold)} gold labels"
        )
    if not predictions:
        raise ValidationError("cannot evaluate zero predictions")
    labels = scheme.keys
    index = {key: i for i, key in enumerate(labels)}
    confusion = np.zeros((len(labels), len(labels)), dtype=np.int64)
    misses: list[tuple[int, str, str]] = []
    for i, (pred, true) in enumerate(zip(predictions, gold)):
        if true not in index:
            raise ValidationError(f"gold label {true!r} outside scheme")
        confusion[index[true], index[pred.label]] += 1
        if pred.label != true:
            misses.append((i, true, pred.label))
    accuracy = float(np.trace(confusion) / confusion.sum())

    per_class: dict[str, dict[str, float]] = {}
    col_sums = confusion.sum(axis=0)
    row_sums = confusion.sum(axis=1)
    for key, i in index.items():
        tp = float(confusion[i, i])
        precision = tp / col_sums[i] if col_sums[i] else 0.0
        recall = tp / row_sums[i] if row_sums[i] else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        per_class[key] = {
            "precision": float(precision),
            "recall": float(recall),
            "f1": float(f1),
            "support": float(row_sums[i]),
        }
    confusion.setflags(write=False)
    return ClassifierEvaluation(
        accuracy, confusion, labels, per_class, tuple(misses)
    )
