"""CSV export of analysis artifacts.

Frequency tables and selection matrices export to CSV so downstream users
can load the regenerated figure data into any tool.  Reading validates
shapes and types.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.core.selection import SelectionMatrix
from repro.errors import SerializationError
from repro.stats.frequency import FrequencyTable

__all__ = [
    "frequency_to_csv",
    "frequency_from_csv",
    "selection_to_csv",
    "selection_from_csv",
]


def frequency_to_csv(table: FrequencyTable, path: str | Path | None = None) -> str:
    """Serialize a frequency table (``label,count`` rows with a header).

    Returns the CSV text; writes it to *path* when given.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["label", "count"])
    for label, count in table.items():
        writer.writerow([label, count])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def frequency_from_csv(source: str | Path) -> FrequencyTable:
    """Load a frequency table written by :func:`frequency_to_csv`.

    *source* may be CSV text or a path to a CSV file.  Integer-looking
    labels are restored as ints (the Fig. 3 histogram keys are integers).
    """
    text = _read_source(source)
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or rows[0] != ["label", "count"]:
        raise SerializationError("expected a 'label,count' header")
    counts: dict[object, int] = {}
    for line_number, row in enumerate(rows[1:], start=2):
        if len(row) != 2:
            raise SerializationError(f"line {line_number}: expected 2 fields")
        label: object = row[0]
        if isinstance(label, str) and label.lstrip("-").isdigit():
            label = int(label)
        try:
            counts[label] = int(row[1])
        except ValueError as exc:
            raise SerializationError(
                f"line {line_number}: count {row[1]!r} is not an integer"
            ) from exc
    if not counts:
        raise SerializationError("CSV contains no data rows")
    return FrequencyTable(counts)


def selection_to_csv(
    selection: SelectionMatrix, path: str | Path | None = None
) -> str:
    """Serialize a selection matrix (header of application keys, one row per tool)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["tool", *selection.application_keys])
    for i, tool in enumerate(selection.tool_keys):
        writer.writerow(
            [tool, *(int(v) for v in selection.matrix[i])]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def selection_from_csv(source: str | Path) -> SelectionMatrix:
    """Load a selection matrix written by :func:`selection_to_csv`."""
    import numpy as np

    text = _read_source(source)
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or not rows[0] or rows[0][0] != "tool":
        raise SerializationError("expected a 'tool,<applications...>' header")
    applications = rows[0][1:]
    if not applications:
        raise SerializationError("matrix has no application columns")
    tools: list[str] = []
    cells: list[list[bool]] = []
    for line_number, row in enumerate(rows[1:], start=2):
        if len(row) != len(applications) + 1:
            raise SerializationError(
                f"line {line_number}: expected {len(applications) + 1} fields"
            )
        tools.append(row[0])
        try:
            cells.append([bool(int(v)) for v in row[1:]])
        except ValueError as exc:
            raise SerializationError(
                f"line {line_number}: non-binary cell value"
            ) from exc
    if not tools:
        raise SerializationError("matrix has no tool rows")
    return SelectionMatrix(tools, applications, np.asarray(cells, dtype=bool))


def _read_source(source: str | Path) -> str:
    if isinstance(source, Path):
        return source.read_text(encoding="utf-8")
    # A string containing a newline (or comma) is CSV text; otherwise treat
    # it as a path.
    if "\n" in source or "," in source:
        return source
    return Path(source).read_text(encoding="utf-8")
