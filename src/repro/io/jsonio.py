"""JSON serialization of study datasets.

Round-trips the whole ecosystem (institutions, tools, applications, scheme)
through a single JSON document, so studies can be edited as data files and
reloaded.  The format is versioned; loading validates cross-references the
same way the in-memory constructors do.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.catalog import (
    ApplicationCatalog,
    InstitutionRegistry,
    ToolCatalog,
    validate_ecosystem,
)
from repro.core.entities import (
    Application,
    Institution,
    InstitutionKind,
    Reference,
    Tool,
)
from repro.core.taxonomy import Category, ClassificationScheme, Facet
from repro.errors import SerializationError

__all__ = ["ecosystem_to_dict", "ecosystem_from_dict", "save_ecosystem", "load_ecosystem"]

FORMAT_VERSION = 1


def _reference_to_dict(ref: Reference | None) -> dict[str, Any] | None:
    if ref is None:
        return None
    return {"citation": ref.citation, "year": ref.year, "doi": ref.doi, "url": ref.url}


def _reference_from_dict(data: dict[str, Any] | None) -> Reference | None:
    if data is None:
        return None
    return Reference(
        citation=data["citation"],
        year=data.get("year"),
        doi=data.get("doi", ""),
        url=data.get("url", ""),
    )


def ecosystem_to_dict(
    institutions: InstitutionRegistry,
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
) -> dict[str, Any]:
    """Serialize a full ecosystem to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "scheme": {
            "name": scheme.name,
            "facet": (
                {"key": scheme.facet.key, "name": scheme.facet.name,
                 "description": scheme.facet.description}
                if scheme.facet
                else None
            ),
            "categories": [
                {
                    "key": c.key,
                    "name": c.name,
                    "description": c.description,
                    "keywords": list(c.keywords),
                }
                for c in scheme
            ],
        },
        "institutions": [
            {
                "key": i.key, "name": i.name, "short_name": i.short_name,
                "kind": i.kind.value, "city": i.city,
            }
            for i in institutions
        ],
        "tools": [
            {
                "key": t.key, "name": t.name, "institution": t.institution,
                "primary_direction": t.primary_direction,
                "secondary_directions": list(t.secondary_directions),
                "description": t.description,
                "reference": _reference_to_dict(t.reference),
                "institution_inferred": t.institution_inferred,
            }
            for t in tools
        ],
        "applications": [
            {
                "key": a.key, "title": a.title, "section": a.section,
                "providers": list(a.providers), "domain": a.domain,
                "description": a.description,
                "selected_tools": list(a.selected_tools),
            }
            for a in applications
        ],
    }


def ecosystem_from_dict(
    data: dict[str, Any],
) -> tuple[InstitutionRegistry, ToolCatalog, ApplicationCatalog, ClassificationScheme]:
    """Deserialize and cross-validate an ecosystem."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format_version {version!r}; expected {FORMAT_VERSION}"
        )
    try:
        scheme_data = data["scheme"]
        facet_data = scheme_data.get("facet")
        scheme = ClassificationScheme(
            (
                Category(
                    c["key"], c["name"], c.get("description", ""),
                    tuple(c.get("keywords", ())),
                )
                for c in scheme_data["categories"]
            ),
            facet=(
                Facet(facet_data["key"], facet_data["name"],
                      facet_data.get("description", ""))
                if facet_data
                else None
            ),
            name=scheme_data.get("name", "unnamed scheme"),
        )
        institutions = InstitutionRegistry(
            Institution(
                i["key"], i["name"], i.get("short_name", ""),
                InstitutionKind(i.get("kind", "university")),
                i.get("city", ""),
            )
            for i in data["institutions"]
        )
        tools = ToolCatalog(
            Tool(
                t["key"], t["name"], t["institution"],
                t["primary_direction"],
                tuple(t.get("secondary_directions", ())),
                t.get("description", ""),
                _reference_from_dict(t.get("reference")),
                t.get("institution_inferred", False),
            )
            for t in data["tools"]
        )
        applications = ApplicationCatalog(
            Application(
                a["key"], a["title"], a["section"],
                tuple(a.get("providers", ())),
                a.get("domain", ""),
                a.get("description", ""),
                tuple(a.get("selected_tools", ())),
            )
            for a in data["applications"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed ecosystem document: {exc}") from exc
    validate_ecosystem(institutions, tools, applications, scheme)
    return institutions, tools, applications, scheme


def save_ecosystem(
    path: str | Path,
    institutions: InstitutionRegistry,
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
) -> None:
    """Write the ecosystem to a JSON file."""
    document = ecosystem_to_dict(institutions, tools, applications, scheme)
    Path(path).write_text(
        json.dumps(document, indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )


def load_ecosystem(
    path: str | Path,
) -> tuple[InstitutionRegistry, ToolCatalog, ApplicationCatalog, ClassificationScheme]:
    """Read an ecosystem from a JSON file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read ecosystem from {path}: {exc}") from exc
    return ecosystem_from_dict(document)
