"""Serialization: JSON ecosystems and CSV analysis artifacts."""

from repro.io.csvio import (
    frequency_from_csv,
    frequency_to_csv,
    selection_from_csv,
    selection_to_csv,
)
from repro.io.jsonio import (
    ecosystem_from_dict,
    ecosystem_to_dict,
    load_ecosystem,
    save_ecosystem,
)

__all__ = [
    "ecosystem_from_dict",
    "ecosystem_to_dict",
    "frequency_from_csv",
    "frequency_to_csv",
    "load_ecosystem",
    "save_ecosystem",
    "selection_from_csv",
    "selection_to_csv",
]
