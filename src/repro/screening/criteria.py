"""Inclusion/exclusion criteria for study screening.

A systematic mapping study screens candidate primary studies against a
protocol of explicit criteria.  This module provides a small combinator DSL
over predicate criteria, so protocols read declaratively::

    criteria = (
        year_between(2015, 2023)
        & has_any_keyword(["workflow", "orchestration"])
        & ~venue_matches("blog")
    )
    outcome = criteria.evaluate(publication)

Each criterion explains itself: :meth:`Criterion.evaluate` returns a
:class:`ScreeningOutcome` carrying the verdict *and* the names of the
criteria that failed, which a screening report can surface.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.errors import ScreeningError

__all__ = [
    "ScreeningOutcome",
    "Criterion",
    "predicate",
    "year_between",
    "has_any_keyword",
    "has_all_keywords",
    "venue_matches",
    "min_length",
    "language_is",
]


@dataclass(frozen=True, slots=True)
class ScreeningOutcome:
    """Verdict of screening one item.

    Attributes
    ----------
    included:
        True when every criterion passed.
    failed:
        Names of failed criteria (empty when included).
    """

    included: bool
    failed: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.included


class Criterion:
    """A named, composable screening predicate.

    Compose with ``&`` (both must pass), ``|`` (either passes), and ``~``
    (negation).  Composition tracks failure provenance: the outcome of an
    ``&`` lists each failed operand by name.
    """

    def __init__(self, name: str, check: Callable[[object], bool]) -> None:
        if not name:
            raise ScreeningError("criterion name must be non-empty")
        self.name = name
        self._check = check

    def evaluate(self, item: object) -> ScreeningOutcome:
        """Evaluate the criterion against *item*."""
        try:
            passed = bool(self._check(item))
        except Exception as exc:  # noqa: BLE001 - wrap with provenance
            raise ScreeningError(
                f"criterion {self.name!r} failed to evaluate: {exc}"
            ) from exc
        return ScreeningOutcome(passed, () if passed else (self.name,))

    def __and__(self, other: "Criterion") -> "Criterion":
        def check_both(item: object) -> bool:
            return self._check(item) and other._check(item)

        combined = Criterion(f"({self.name} AND {other.name})", check_both)

        def evaluate_both(item: object) -> ScreeningOutcome:
            mine = self.evaluate(item)
            theirs = other.evaluate(item)
            return ScreeningOutcome(
                mine.included and theirs.included, mine.failed + theirs.failed
            )

        combined.evaluate = evaluate_both  # type: ignore[method-assign]
        return combined

    def __or__(self, other: "Criterion") -> "Criterion":
        name = f"({self.name} OR {other.name})"
        return Criterion(
            name, lambda item: self._check(item) or other._check(item)
        )

    def __invert__(self) -> "Criterion":
        return Criterion(f"NOT {self.name}", lambda item: not self._check(item))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Criterion({self.name!r})"


def predicate(name: str) -> Callable[[Callable[[object], bool]], Criterion]:
    """Decorator turning a plain function into a named :class:`Criterion`.

    >>> @predicate("is-recent")
    ... def is_recent(pub):
    ...     return pub.year >= 2020
    """

    def wrap(func: Callable[[object], bool]) -> Criterion:
        return Criterion(name, func)

    return wrap


def _text_of(item: object) -> str:
    """Best-effort searchable text of a screening item."""
    for attr in ("searchable_text", "text"):
        value = getattr(item, attr, None)
        if callable(value):
            value = value()
        if isinstance(value, str):
            return value
    parts = [
        str(getattr(item, attr, ""))
        for attr in ("title", "abstract", "keywords", "description")
    ]
    return " ".join(p for p in parts if p)


def year_between(first: int, last: int) -> Criterion:
    """Publication year within ``[first, last]`` (missing year fails)."""
    if first > last:
        raise ScreeningError(f"empty year range [{first}, {last}]")

    def check(item: object) -> bool:
        year = getattr(item, "year", None)
        return isinstance(year, int) and first <= year <= last

    return Criterion(f"year in [{first}, {last}]", check)


def has_any_keyword(keywords: Iterable[str]) -> Criterion:
    """Any of *keywords* appears (case-insensitive) in the item's text."""
    terms = tuple(k.lower() for k in keywords)
    if not terms:
        raise ScreeningError("has_any_keyword needs at least one keyword")

    def check(item: object) -> bool:
        text = _text_of(item).lower()
        return any(term in text for term in terms)

    return Criterion(f"has any of {list(terms)}", check)


def has_all_keywords(keywords: Iterable[str]) -> Criterion:
    """All *keywords* appear (case-insensitive) in the item's text."""
    terms = tuple(k.lower() for k in keywords)
    if not terms:
        raise ScreeningError("has_all_keywords needs at least one keyword")

    def check(item: object) -> bool:
        text = _text_of(item).lower()
        return all(term in text for term in terms)

    return Criterion(f"has all of {list(terms)}", check)


def venue_matches(fragment: str) -> Criterion:
    """The item's venue contains *fragment* (case-insensitive)."""
    if not fragment:
        raise ScreeningError("venue fragment must be non-empty")
    lowered = fragment.lower()

    def check(item: object) -> bool:
        venue = getattr(item, "venue", "") or ""
        return lowered in venue.lower()

    return Criterion(f"venue contains {fragment!r}", check)


def min_length(n_words: int, attr: str = "abstract") -> Criterion:
    """The item's *attr* holds at least *n_words* whitespace words."""
    if n_words < 1:
        raise ScreeningError("n_words must be >= 1")

    def check(item: object) -> bool:
        text = getattr(item, attr, "") or ""
        return len(str(text).split()) >= n_words

    return Criterion(f"{attr} >= {n_words} words", check)


def language_is(language: str) -> Criterion:
    """The item's language equals *language* (case-insensitive).

    Items without a language attribute are assumed to match — most
    bibliographic sources omit it for English records.
    """
    if not language:
        raise ScreeningError("language must be non-empty")
    lowered = language.lower()

    def check(item: object) -> bool:
        value = getattr(item, "language", None)
        return value is None or str(value).lower() == lowered

    return Criterion(f"language is {language!r}", check)
