"""Multi-reviewer screening with adjudication.

Models the SMS double-screening workflow: several reviewers screen each
candidate item against the protocol's criteria (or by judgment), decisions
are recorded, agreement is measured, and conflicts are adjudicated —
either by majority or by an explicit adjudicator decision.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from enum import Enum

from repro.errors import ScreeningError
from repro.screening.agreement import cohen_kappa, fleiss_kappa, observed_agreement
from repro.screening.criteria import Criterion

__all__ = ["Decision", "ReviewRecord", "ScreeningSession"]


class Decision(Enum):
    """A reviewer's verdict on one item."""

    INCLUDE = "include"
    EXCLUDE = "exclude"
    UNSURE = "unsure"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class ReviewRecord:
    """One reviewer's decision on one item, with optional rationale."""

    item_key: str
    reviewer: str
    decision: Decision
    rationale: str = ""

    def __post_init__(self) -> None:
        if not self.item_key:
            raise ScreeningError("item_key must be non-empty")
        if not self.reviewer:
            raise ScreeningError("reviewer must be non-empty")


class ScreeningSession:
    """Collects review records for a set of items and resolves them.

    Parameters
    ----------
    item_keys:
        Keys of the candidate items under screening.
    reviewers:
        Names of the participating reviewers.
    """

    def __init__(self, item_keys: Sequence[str], reviewers: Sequence[str]) -> None:
        if not item_keys:
            raise ScreeningError("need at least one item to screen")
        if not reviewers:
            raise ScreeningError("need at least one reviewer")
        if len(set(item_keys)) != len(item_keys):
            raise ScreeningError("duplicate item keys")
        if len(set(reviewers)) != len(reviewers):
            raise ScreeningError("duplicate reviewer names")
        self._items = tuple(item_keys)
        self._reviewers = tuple(reviewers)
        # decisions[item][reviewer] = ReviewRecord
        self._decisions: dict[str, dict[str, ReviewRecord]] = {
            key: {} for key in self._items
        }
        self._adjudications: dict[str, Decision] = {}

    # -- recording ------------------------------------------------------------

    def record(self, record: ReviewRecord) -> None:
        """Store one decision; re-deciding the same item is an error."""
        if record.item_key not in self._decisions:
            raise ScreeningError(f"unknown item {record.item_key!r}")
        if record.reviewer not in self._reviewers:
            raise ScreeningError(f"unknown reviewer {record.reviewer!r}")
        per_item = self._decisions[record.item_key]
        if record.reviewer in per_item:
            raise ScreeningError(
                f"{record.reviewer!r} already decided {record.item_key!r}"
            )
        per_item[record.reviewer] = record

    def decide(
        self,
        item_key: str,
        reviewer: str,
        decision: Decision,
        rationale: str = "",
    ) -> None:
        """Convenience wrapper around :meth:`record`."""
        self.record(ReviewRecord(item_key, reviewer, decision, rationale))

    def apply_criterion(
        self, reviewer: str, criterion: Criterion, items: Iterable
    ) -> None:
        """Let *reviewer* screen *items* mechanically with *criterion*.

        Each item must expose a ``key`` attribute matching this session.
        The failed-criteria names become the rationale.
        """
        for item in items:
            outcome = criterion.evaluate(item)
            self.decide(
                item.key,
                reviewer,
                Decision.INCLUDE if outcome.included else Decision.EXCLUDE,
                rationale="; ".join(outcome.failed),
            )

    # -- state ----------------------------------------------------------------

    @property
    def items(self) -> tuple[str, ...]:
        return self._items

    @property
    def reviewers(self) -> tuple[str, ...]:
        return self._reviewers

    def decisions_for(self, item_key: str) -> dict[str, Decision]:
        """Reviewer → decision mapping for one item."""
        if item_key not in self._decisions:
            raise ScreeningError(f"unknown item {item_key!r}")
        return {
            reviewer: record.decision
            for reviewer, record in self._decisions[item_key].items()
        }

    def is_complete(self) -> bool:
        """Whether every reviewer decided every item."""
        return all(
            len(per_item) == len(self._reviewers)
            for per_item in self._decisions.values()
        )

    def conflicts(self) -> tuple[str, ...]:
        """Items where reviewers disagree (or anyone is unsure)."""
        out = []
        for key in self._items:
            decisions = set(self.decisions_for(key).values())
            if len(decisions) > 1 or Decision.UNSURE in decisions:
                out.append(key)
        return tuple(out)

    # -- adjudication ------------------------------------------------------------

    def adjudicate(self, item_key: str, decision: Decision) -> None:
        """Record the adjudicator's final decision for a conflicted item."""
        if item_key not in self._decisions:
            raise ScreeningError(f"unknown item {item_key!r}")
        if decision is Decision.UNSURE:
            raise ScreeningError("adjudication must be include or exclude")
        self._adjudications[item_key] = decision

    def resolve(self, *, strategy: str = "majority") -> dict[str, bool]:
        """Resolve every item to a final include/exclude verdict.

        Strategies
        ----------
        ``"majority"``:
            Majority vote (UNSURE counts as neither); ties and all-unsure
            items need a prior :meth:`adjudicate` call, otherwise
            :class:`ScreeningError` is raised.
        ``"conservative"``:
            Include only when *all* reviewers said include.
        ``"liberal"``:
            Include when *any* reviewer said include.

        Explicit adjudications always win over the strategy.
        """
        if not self.is_complete():
            raise ScreeningError("screening incomplete: missing decisions")
        if strategy not in ("majority", "conservative", "liberal"):
            raise ScreeningError(f"unknown strategy {strategy!r}")
        verdicts: dict[str, bool] = {}
        for key in self._items:
            if key in self._adjudications:
                verdicts[key] = self._adjudications[key] is Decision.INCLUDE
                continue
            decisions = list(self.decisions_for(key).values())
            includes = sum(d is Decision.INCLUDE for d in decisions)
            excludes = sum(d is Decision.EXCLUDE for d in decisions)
            if strategy == "conservative":
                verdicts[key] = includes == len(decisions)
            elif strategy == "liberal":
                verdicts[key] = includes > 0
            else:
                if includes == excludes:
                    raise ScreeningError(
                        f"item {key!r} is tied {includes}-{excludes}; adjudicate it"
                    )
                verdicts[key] = includes > excludes
        return verdicts

    # -- agreement ------------------------------------------------------------------

    def pairwise_kappa(self, reviewer_a: str, reviewer_b: str) -> float:
        """Cohen's kappa between two reviewers over jointly decided items."""
        labels_a, labels_b = [], []
        for key in self._items:
            decisions = self._decisions[key]
            if reviewer_a in decisions and reviewer_b in decisions:
                labels_a.append(decisions[reviewer_a].decision.value)
                labels_b.append(decisions[reviewer_b].decision.value)
        if not labels_a:
            raise ScreeningError(
                f"{reviewer_a!r} and {reviewer_b!r} share no decided items"
            )
        return cohen_kappa(labels_a, labels_b)

    def overall_kappa(self) -> float:
        """Fleiss' kappa across all reviewers (requires complete screening)."""
        if not self.is_complete():
            raise ScreeningError("screening incomplete: missing decisions")
        rows = []
        for key in self._items:
            counts: dict[str, int] = {}
            for decision in self.decisions_for(key).values():
                counts[decision.value] = counts.get(decision.value, 0) + 1
            rows.append(counts)
        return fleiss_kappa(rows)

    def raw_agreement(self, reviewer_a: str, reviewer_b: str) -> float:
        """Observed agreement proportion between two reviewers."""
        labels_a, labels_b = [], []
        for key in self._items:
            decisions = self._decisions[key]
            if reviewer_a in decisions and reviewer_b in decisions:
                labels_a.append(decisions[reviewer_a].decision.value)
                labels_b.append(decisions[reviewer_b].decision.value)
        if not labels_a:
            raise ScreeningError(
                f"{reviewer_a!r} and {reviewer_b!r} share no decided items"
            )
        return observed_agreement(labels_a, labels_b)
