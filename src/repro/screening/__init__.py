"""Screening substrate: criteria DSL, multi-reviewer sessions, agreement stats."""

from repro.screening.agreement import (
    cohen_kappa,
    fleiss_kappa,
    interpret_kappa,
    krippendorff_alpha,
    observed_agreement,
)
from repro.screening.criteria import (
    Criterion,
    ScreeningOutcome,
    has_all_keywords,
    has_any_keyword,
    language_is,
    min_length,
    predicate,
    venue_matches,
    year_between,
)
from repro.screening.review import Decision, ReviewRecord, ScreeningSession

__all__ = [
    "Criterion",
    "Decision",
    "ReviewRecord",
    "ScreeningOutcome",
    "ScreeningSession",
    "cohen_kappa",
    "fleiss_kappa",
    "has_all_keywords",
    "has_any_keyword",
    "interpret_kappa",
    "krippendorff_alpha",
    "language_is",
    "min_length",
    "observed_agreement",
    "predicate",
    "venue_matches",
    "year_between",
]
