"""Inter-rater agreement statistics.

Systematic mapping studies double-screen and double-classify primary studies
to control subjectivity; agreement between raters is reported with chance-
corrected coefficients.  Implemented from scratch (vectorized):

* :func:`cohen_kappa` — two raters, nominal labels, optional weighting;
* :func:`fleiss_kappa` — many raters, nominal labels;
* :func:`krippendorff_alpha` — any number of raters with missing data
  (nominal metric);
* :func:`observed_agreement` — the raw proportion of agreeing pairs.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import AgreementError

__all__ = [
    "cohen_kappa",
    "fleiss_kappa",
    "krippendorff_alpha",
    "observed_agreement",
    "interpret_kappa",
]


def _encode(
    a: Sequence[Hashable], b: Sequence[Hashable]
) -> tuple[np.ndarray, np.ndarray, tuple[Hashable, ...]]:
    if len(a) != len(b):
        raise AgreementError(
            f"raters labelled different item counts: {len(a)} vs {len(b)}"
        )
    if not a:
        raise AgreementError("need at least one jointly labelled item")
    labels = tuple(dict.fromkeys(list(a) + list(b)))
    index = {label: i for i, label in enumerate(labels)}
    va = np.fromiter((index[x] for x in a), dtype=np.int64, count=len(a))
    vb = np.fromiter((index[x] for x in b), dtype=np.int64, count=len(b))
    return va, vb, labels


def observed_agreement(a: Sequence[Hashable], b: Sequence[Hashable]) -> float:
    """Raw proportion of items on which two raters agree."""
    va, vb, _ = _encode(a, b)
    return float((va == vb).mean())


def cohen_kappa(
    a: Sequence[Hashable],
    b: Sequence[Hashable],
    *,
    weights: str | None = None,
) -> float:
    """Cohen's kappa for two raters.

    Parameters
    ----------
    a, b:
        Aligned label sequences (one label per item per rater).
    weights:
        ``None`` for nominal kappa, ``"linear"`` or ``"quadratic"`` for
        weighted kappa over the label order of first appearance (only
        meaningful for ordinal labels).

    Returns
    -------
    float
        Kappa in ``[-1, 1]``; 1 is perfect agreement, 0 chance-level.
        Degenerate case: if both raters use a single identical label for
        every item, agreement is perfect and 1.0 is returned.
    """
    if weights not in (None, "linear", "quadratic"):
        raise AgreementError(f"unknown weighting {weights!r}")
    va, vb, labels = _encode(a, b)
    k = len(labels)
    if k == 1:
        return 1.0
    confusion = np.zeros((k, k), dtype=np.float64)
    np.add.at(confusion, (va, vb), 1.0)
    n = confusion.sum()
    p_obs_matrix = confusion / n
    row = p_obs_matrix.sum(axis=1)
    col = p_obs_matrix.sum(axis=0)
    expected = np.outer(row, col)

    if weights is None:
        weight = np.eye(k)
    elif weights == "linear":
        idx = np.arange(k, dtype=np.float64)
        weight = 1.0 - np.abs(idx[:, None] - idx[None, :]) / (k - 1)
    elif weights == "quadratic":
        idx = np.arange(k, dtype=np.float64)
        weight = 1.0 - ((idx[:, None] - idx[None, :]) / (k - 1)) ** 2
    else:
        raise AgreementError(f"unknown weighting {weights!r}")

    p_obs = float((weight * p_obs_matrix).sum())
    p_exp = float((weight * expected).sum())
    if np.isclose(p_exp, 1.0):
        return 1.0 if np.isclose(p_obs, 1.0) else 0.0
    return float((p_obs - p_exp) / (1.0 - p_exp))


def fleiss_kappa(ratings: Sequence[Mapping[Hashable, int]] | np.ndarray) -> float:
    """Fleiss' kappa for many raters.

    Parameters
    ----------
    ratings:
        Either an ``(items × categories)`` count matrix (each row sums to
        the common number of raters), or a sequence of per-item
        ``{category: count}`` mappings.

    Raises
    ------
    AgreementError
        If items were rated by different numbers of raters, or fewer than
        two raters rated each item.
    """
    if isinstance(ratings, np.ndarray):
        matrix = np.asarray(ratings, dtype=np.float64)
        if matrix.ndim != 2 or matrix.size == 0:
            raise AgreementError("ratings matrix must be 2-D and non-empty")
    else:
        if not ratings:
            raise AgreementError("need at least one rated item")
        categories = tuple(
            dict.fromkeys(c for item in ratings for c in item)
        )
        index = {c: j for j, c in enumerate(categories)}
        matrix = np.zeros((len(ratings), len(categories)), dtype=np.float64)
        for i, item in enumerate(ratings):
            for category, count in item.items():
                if count < 0:
                    raise AgreementError("rating counts must be non-negative")
                matrix[i, index[category]] = count

    raters = matrix.sum(axis=1)
    if not np.all(raters == raters[0]):
        raise AgreementError("every item must be rated by the same number of raters")
    n_raters = float(raters[0])
    if n_raters < 2:
        raise AgreementError("Fleiss' kappa needs at least two raters")

    n_items = matrix.shape[0]
    p_item = (
        (matrix * (matrix - 1.0)).sum(axis=1) / (n_raters * (n_raters - 1.0))
    )
    p_obs = float(p_item.mean())
    p_cat = matrix.sum(axis=0) / (n_items * n_raters)
    p_exp = float((p_cat**2).sum())
    if np.isclose(p_exp, 1.0):
        return 1.0 if np.isclose(p_obs, 1.0) else 0.0
    return float((p_obs - p_exp) / (1.0 - p_exp))


def krippendorff_alpha(
    ratings: Sequence[Sequence[Hashable | None]],
) -> float:
    """Krippendorff's alpha (nominal metric) with missing data.

    Parameters
    ----------
    ratings:
        One sequence per rater, aligned on items; ``None`` marks a missing
        rating.  Items rated by fewer than two raters are dropped.

    Returns
    -------
    float
        Alpha in ``[-1, 1]``; 1 is perfect agreement.
    """
    if len(ratings) < 2:
        raise AgreementError("Krippendorff's alpha needs >= 2 raters")
    lengths = {len(r) for r in ratings}
    if len(lengths) != 1:
        raise AgreementError("raters must rate the same item list")
    (n_items,) = lengths
    if n_items == 0:
        raise AgreementError("need at least one item")

    values = tuple(
        dict.fromkeys(
            v for rater in ratings for v in rater if v is not None
        )
    )
    if not values:
        raise AgreementError("all ratings are missing")
    if len(values) == 1:
        return 1.0
    index = {v: i for i, v in enumerate(values)}

    # Coincidence matrix over pairable values within each item.
    k = len(values)
    coincidence = np.zeros((k, k), dtype=np.float64)
    for item in range(n_items):
        present = [
            index[rater[item]] for rater in ratings if rater[item] is not None
        ]
        m = len(present)
        if m < 2:
            continue
        counts = np.bincount(present, minlength=k).astype(np.float64)
        pair = np.outer(counts, counts) - np.diag(counts)
        coincidence += pair / (m - 1.0)
    total = coincidence.sum()
    if total == 0:
        raise AgreementError("no item has two or more ratings")
    marginals = coincidence.sum(axis=0)
    d_observed = total - float(np.trace(coincidence))
    d_expected = (
        (np.outer(marginals, marginals).sum() - (marginals**2).sum())
        / (total - 1.0)
    )
    if d_expected == 0:
        return 1.0 if d_observed == 0 else 0.0
    return float(1.0 - d_observed / d_expected)


def interpret_kappa(kappa: float) -> str:
    """Landis & Koch (1977) verbal interpretation of a kappa value."""
    if not -1.0 - 1e-9 <= kappa <= 1.0 + 1e-9:
        raise AgreementError(f"kappa {kappa} outside [-1, 1]")
    if kappa < 0.0:
        return "poor"
    if kappa <= 0.20:
        return "slight"
    if kappa <= 0.40:
        return "fair"
    if kappa <= 0.60:
        return "moderate"
    if kappa <= 0.80:
        return "substantial"
    return "almost perfect"
