"""Vectorized TF-IDF document representation.

Builds a dense document-term matrix with numpy (the corpora here — tool
descriptions, bibliographies, synthetic abstracts — are thousands of
documents at most, so dense beats sparse bookkeeping).  The hot paths
(counting, weighting, normalization, cosine similarity) are single
vectorized expressions per the HPC guide; no Python-level loops touch the
matrix after construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.text.stem import stem_tokens
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import tokenize

__all__ = ["TfidfModel", "preprocess"]


def preprocess(text: str, *, stem: bool = True) -> list[str]:
    """Standard pipeline: tokenize → drop stopwords → (optionally) stem."""
    tokens = remove_stopwords(tokenize(text))
    return stem_tokens(tokens) if stem else tokens


@dataclass(frozen=True, slots=True)
class _Vocabulary:
    index: dict[str, int]

    @property
    def size(self) -> int:
        return len(self.index)


class TfidfModel:
    """TF-IDF model fitted over a document collection.

    Parameters
    ----------
    documents:
        Raw text documents.
    stem:
        Apply Porter stemming during preprocessing (default True).
    min_df:
        Drop terms appearing in fewer than *min_df* documents.
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw term frequency.

    Notes
    -----
    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so unseen
    query terms never divide by zero, and document vectors are L2-normalized
    so :meth:`similarity` reduces to a matrix product.
    """

    def __init__(
        self,
        documents: Sequence[str],
        *,
        stem: bool = True,
        min_df: int = 1,
        sublinear_tf: bool = True,
    ) -> None:
        if not documents:
            raise ValidationError("TfidfModel needs at least one document")
        if min_df < 1:
            raise ValidationError(f"min_df must be >= 1, got {min_df}")
        self._stem = stem
        self._sublinear = sublinear_tf
        token_lists = [preprocess(doc, stem=stem) for doc in documents]

        # Document frequency over the raw vocabulary.
        df: dict[str, int] = {}
        for tokens in token_lists:
            for term in set(tokens):
                df[term] = df.get(term, 0) + 1
        vocab = {
            term: i
            for i, term in enumerate(
                sorted(t for t, d in df.items() if d >= min_df)
            )
        }
        if not vocab:
            raise ValidationError(
                "vocabulary is empty after min_df filtering; lower min_df"
            )
        self._vocab = _Vocabulary(vocab)

        counts = np.zeros((len(documents), len(vocab)), dtype=np.float64)
        for row, tokens in enumerate(token_lists):
            for term in tokens:
                col = vocab.get(term)
                if col is not None:
                    counts[row, col] += 1.0

        n_docs = len(documents)
        df_vec = np.zeros(len(vocab), dtype=np.float64)
        for term, col in vocab.items():
            df_vec[col] = df[term]
        self._idf = np.log((1.0 + n_docs) / (1.0 + df_vec)) + 1.0
        self._matrix = self._weight(counts)

    # -- internals ----------------------------------------------------------

    def _weight(self, counts: np.ndarray) -> np.ndarray:
        tf = counts.copy()
        if self._sublinear:
            nz = tf > 0
            tf[nz] = 1.0 + np.log(tf[nz])
        weighted = tf * self._idf  # broadcast over rows
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0  # all-zero docs stay zero vectors
        return weighted / norms

    # -- public API ----------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The (documents × vocabulary) L2-normalized TF-IDF matrix."""
        return self._matrix

    @property
    def vocabulary(self) -> dict[str, int]:
        """Term → column index mapping."""
        return dict(self._vocab.index)

    @property
    def n_documents(self) -> int:
        return self._matrix.shape[0]

    def transform(self, texts: Iterable[str]) -> np.ndarray:
        """Vectorize new texts into the fitted space (rows L2-normalized)."""
        texts = list(texts)
        counts = np.zeros((len(texts), self._vocab.size), dtype=np.float64)
        for row, text in enumerate(texts):
            for term in preprocess(text, stem=self._stem):
                col = self._vocab.index.get(term)
                if col is not None:
                    counts[row, col] += 1.0
        return self._weight(counts)

    def similarity(self, texts: Iterable[str]) -> np.ndarray:
        """Cosine similarity of *texts* against every fitted document.

        Returns a ``(len(texts), n_documents)`` matrix in ``[0, 1]``.
        """
        return self.transform(texts) @ self._matrix.T

    def pairwise_similarity(self) -> np.ndarray:
        """Cosine similarity between all fitted documents (symmetric)."""
        return self._matrix @ self._matrix.T

    def top_terms(self, doc_index: int, k: int = 10) -> list[tuple[str, float]]:
        """The *k* highest-weighted terms of a fitted document."""
        if not 0 <= doc_index < self.n_documents:
            raise ValidationError(f"doc_index {doc_index} out of range")
        row = self._matrix[doc_index]
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        terms = sorted(self._vocab.index, key=self._vocab.index.get)
        order = np.argsort(-row, kind="stable")[:k]
        return [(terms[i], float(row[i])) for i in order if row[i] > 0]
