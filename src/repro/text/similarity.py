"""String and set similarity measures.

Used by the corpus deduplicator (title matching across records with
different capitalization, punctuation, truncation) and by tests as reference
implementations.  The Levenshtein distance is a vectorized
dynamic-programming implementation: the DP table is filled row by row with
whole-row numpy operations, turning the O(n*m) inner loop into O(n) vector
steps.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "levenshtein",
    "normalized_levenshtein",
    "jaccard",
    "dice",
    "cosine_counts",
    "token_sort_ratio",
]


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (insert/delete/substitute, unit costs).

    >>> levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Work on code points as arrays; keep the shorter string horizontal so
    # the vectorized row update runs over the longer dimension.
    if len(a) < len(b):
        a, b = b, a
    bv = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    n = len(b)
    ramp = np.arange(n + 1, dtype=np.int64)
    previous = ramp.copy()
    for i, ch in enumerate(a, start=1):
        code = ord(ch)
        # Substitution/deletion candidates for cells 1..n (no left dependency).
        base = np.empty(n + 1, dtype=np.int64)
        base[0] = i
        np.minimum(previous[:-1] + (bv != code), previous[1:] + 1, out=base[1:])
        # Insertions propagate left to right: cell j may also be reached from
        # any cell k < j at cost (j - k).  min_k<=j (base[k] + j - k) equals
        # j + running-min(base - ramp), which np.minimum.accumulate does in C.
        previous = ramp + np.minimum.accumulate(base - ramp)
    return int(previous[-1])


def normalized_levenshtein(a: str, b: str) -> float:
    """Levenshtein distance scaled to ``[0, 1]`` by the longer length."""
    if not a and not b:
        return 0.0
    return levenshtein(a, b) / max(len(a), len(b))


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity of two sets (1 for two empty sets)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


def dice(a: Iterable, b: Iterable) -> float:
    """Sørensen–Dice coefficient of two sets (1 for two empty sets)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return 2.0 * len(sa & sb) / (len(sa) + len(sb))


def cosine_counts(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity of two aligned non-negative count vectors."""
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    if va.shape != vb.shape or va.ndim != 1:
        raise ValidationError("cosine_counts needs two aligned 1-D vectors")
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(va @ vb / (na * nb))


def token_sort_ratio(a: str, b: str) -> float:
    """Similarity of two strings after lowercasing and sorting their tokens.

    Robust to word reordering ("cloud HPC convergence" vs "HPC cloud
    convergence"); returns ``1 - normalized_levenshtein`` of the sorted-token
    joins, in ``[0, 1]``.
    """
    sort_a = " ".join(sorted(a.lower().split()))
    sort_b = " ".join(sorted(b.lower().split()))
    return 1.0 - normalized_levenshtein(sort_a, sort_b)
