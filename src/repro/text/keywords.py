"""Keyword extraction for mapping-study keywording.

The SMS methodology (Petersen et al.) builds its classification scheme by
*keywording* abstracts: extracting the terms that characterize each primary
study.  This module implements a RAKE-style extractor (Rapid Automatic
Keyword Extraction): candidate phrases are maximal stopword-free token runs,
scored by ``degree / frequency`` of their member words, so words that occur
in long, distinctive phrases outrank ubiquitous singletons.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.text.stopwords import is_stopword
from repro.text.tokenize import sentences, tokenize

__all__ = ["Keyword", "extract_keywords", "keyword_overlap"]


@dataclass(frozen=True, slots=True)
class Keyword:
    """An extracted keyword phrase with its RAKE score."""

    phrase: str
    score: float
    frequency: int

    def __post_init__(self) -> None:
        if not self.phrase:
            raise ValidationError("keyword phrase must be non-empty")


def _candidate_phrases(text: str, max_words: int) -> list[tuple[str, ...]]:
    """Maximal stopword-free token runs per sentence, capped at *max_words*."""
    phrases: list[tuple[str, ...]] = []
    for sentence in sentences(text) or [text]:
        run: list[str] = []
        for token in tokenize(sentence, split_compounds=False):
            if is_stopword(token) or token.isdigit():
                if run:
                    phrases.append(tuple(run[:max_words]))
                    run = []
            else:
                run.append(token)
        if run:
            phrases.append(tuple(run[:max_words]))
    return phrases


def extract_keywords(
    text: str,
    *,
    top_k: int = 10,
    max_words: int = 3,
) -> list[Keyword]:
    """Extract the *top_k* RAKE keywords of *text*.

    Each word ``w`` gets ``freq(w)`` (occurrences in candidates) and
    ``degree(w)`` (sum of lengths of candidates containing it); a phrase's
    score is the sum of its words' ``degree/freq`` ratios.  Ties break by
    frequency, then alphabetically, so results are deterministic.
    """
    if top_k < 1:
        raise ValidationError(f"top_k must be >= 1, got {top_k}")
    if max_words < 1:
        raise ValidationError(f"max_words must be >= 1, got {max_words}")
    phrases = _candidate_phrases(text, max_words)
    if not phrases:
        return []

    freq: dict[str, int] = {}
    degree: dict[str, int] = {}
    for phrase in phrases:
        for word in phrase:
            freq[word] = freq.get(word, 0) + 1
            degree[word] = degree.get(word, 0) + len(phrase)

    phrase_stats: dict[tuple[str, ...], int] = {}
    for phrase in phrases:
        phrase_stats[phrase] = phrase_stats.get(phrase, 0) + 1

    scored = [
        Keyword(
            " ".join(phrase),
            sum(degree[w] / freq[w] for w in phrase),
            count,
        )
        for phrase, count in phrase_stats.items()
    ]
    scored.sort(key=lambda k: (-k.score, -k.frequency, k.phrase))
    return scored[:top_k]


def keyword_overlap(a: Sequence[Keyword], b: Sequence[Keyword]) -> float:
    """Jaccard overlap between the word sets of two keyword lists."""
    words_a = {w for kw in a for w in kw.phrase.split()}
    words_b = {w for kw in b for w in kw.phrase.split()}
    if not words_a and not words_b:
        return 1.0
    return len(words_a & words_b) / len(words_a | words_b)
