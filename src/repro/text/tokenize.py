"""Tokenization for tool descriptions and bibliographic records.

The tokenizer is intentionally simple and deterministic: lowercase word
tokens, with hyphenated technical compounds ("multi-cloud", "low-power")
preserved *and* additionally split into their parts, because the taxonomy
keywords use both forms.
"""

from __future__ import annotations

import re
from collections.abc import Iterator

__all__ = ["tokenize", "sentences", "ngrams", "word_spans"]

# A token is a run of letters/digits possibly joined by single hyphens or
# apostrophes ("hadoop-compliant", "provider's").
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9])")


def tokenize(text: str, *, split_compounds: bool = True) -> list[str]:
    """Lowercase word tokens of *text*.

    With *split_compounds* (default), a hyphenated token also yields its
    parts, e.g. ``"multi-cloud"`` → ``["multi-cloud", "multi", "cloud"]``.

    >>> tokenize("Multi-Cloud TOSCA orchestration!")
    ['multi-cloud', 'multi', 'cloud', 'tosca', 'orchestration']
    """
    tokens: list[str] = []
    for match in _TOKEN_RE.finditer(text.lower()):
        token = match.group()
        tokens.append(token)
        if split_compounds and "-" in token:
            tokens.extend(part for part in token.split("-") if part)
    return tokens


def word_spans(text: str) -> Iterator[tuple[str, int, int]]:
    """Yield ``(token, start, end)`` spans without compound splitting."""
    for match in _TOKEN_RE.finditer(text.lower()):
        yield match.group(), match.start(), match.end()


def sentences(text: str) -> list[str]:
    """Naive sentence split on terminal punctuation followed by a capital."""
    parts = [part.strip() for part in _SENTENCE_RE.split(text.strip())]
    return [part for part in parts if part]


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Contiguous *n*-grams of a token list.

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n > len(tokens):
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
