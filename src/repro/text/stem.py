"""Porter stemming algorithm, implemented from scratch.

A faithful implementation of M. F. Porter's 1980 algorithm ("An algorithm
for suffix stripping", *Program* 14(3)), used to conflate morphological
variants before TF-IDF and keyword matching ("orchestration" /
"orchestrator" / "orchestrating" → "orchestr").

Only lowercase ASCII words are stemmed; anything containing other characters
is returned unchanged.
"""

from __future__ import annotations

import re

__all__ = ["porter_stem", "stem_tokens"]

_VOWELS = frozenset("aeiou")
_WORD_RE = re.compile(r"^[a-z]+$")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter *m* value: number of VC sequences in C?(VC)^m V?."""
    forms = "".join(
        "c" if _is_consonant(stem, i) else "v" for i in range(len(stem))
    )
    return len(re.findall("vc", forms))


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """Ends consonant-vowel-consonant, final consonant not w, x, or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str, m_min: int) -> str | None:
    """If *word* ends with *suffix* and the stem has measure > m_min, swap suffixes."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > m_min:
        return stem + replacement
    return word  # suffix matched but condition failed: stop this rule group


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        return stem + "ee" if _measure(stem) > 0 else word
    for suffix in ("ed", "ing"):
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if not _contains_vowel(stem):
                return word
            if stem.endswith(("at", "bl", "iz")):
                return stem + "e"
            if _ends_double_consonant(stem) and stem[-1] not in "lsz":
                return stem[:-1]
            if _measure(stem) == 1 and _ends_cvc(stem):
                return stem + "e"
            return stem
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word[:-1]) > 1:
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase ASCII word with the Porter algorithm.

    Words of length <= 2 or containing non-letters are returned unchanged.

    >>> porter_stem("orchestration")
    'orchestr'
    >>> porter_stem("caresses")
    'caress'
    """
    if len(word) <= 2 or not _WORD_RE.match(word):
        return word
    result = _step_1a(word)
    result = _step_1b(result)
    result = _step_1c(result)
    result = _step_2(result)
    result = _step_3(result)
    result = _step_4(result)
    result = _step_5a(result)
    result = _step_5b(result)
    return result


def _step_4(word: str) -> str:
    # Porter's step 4 tries suffixes in a fixed order; "ion" carries the
    # extra condition that the remaining stem ends in 's' or 't'.
    ordered = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )
    for suffix in ordered:
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if suffix == "ion" and not (stem and stem[-1] in "st"):
                continue
            if _measure(stem) > 1:
                return stem
            return word
    return word


def stem_tokens(tokens: list[str]) -> list[str]:
    """Stem every token of a list, preserving order and length."""
    return [porter_stem(token) for token in tokens]
