"""English stopword list for keyword extraction and TF-IDF weighting.

A compact, hand-curated list tuned for scientific-abstract text: standard
function words plus the publication boilerplate ("paper", "propose",
"approach") that would otherwise dominate term statistics in a corpus of
abstracts.
"""

from __future__ import annotations

__all__ = ["STOPWORDS", "is_stopword", "remove_stopwords"]

_FUNCTION_WORDS = """
a about above after again against all am an and any are as at be because
been before being below between both but by can cannot could did do does
doing down during each few for from further had has have having he her here
hers herself him himself his how i if in into is it its itself just me more
most my myself no nor not now of off on once only or other our ours
ourselves out over own same she should so some such than that the their
theirs them themselves then there these they this those through to too under
until up very was we were what when where which while who whom why will with
would you your yours yourself yourselves
""".split()

_BOILERPLATE = """
also allow allows allowing based can e.g et al etc however i.e may might
new novel one paper papers present presented presents propose proposed
proposes provide provided provides providing report results several show
shown shows study studies towards toward two three use used uses using via
well within without work works
""".split()

STOPWORDS: frozenset[str] = frozenset(_FUNCTION_WORDS) | frozenset(_BOILERPLATE)


def is_stopword(token: str) -> bool:
    """Whether *token* (case-insensitive) is a stopword."""
    return token.lower() in STOPWORDS


def remove_stopwords(tokens: list[str]) -> list[str]:
    """Filter stopwords out of a token list, preserving order."""
    return [token for token in tokens if token.lower() not in STOPWORDS]
