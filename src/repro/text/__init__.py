"""Text-processing substrate: tokenization, stemming, TF-IDF, similarity, keywords."""

from repro.text.keywords import Keyword, extract_keywords, keyword_overlap
from repro.text.similarity import (
    cosine_counts,
    dice,
    jaccard,
    levenshtein,
    normalized_levenshtein,
    token_sort_ratio,
)
from repro.text.stem import porter_stem, stem_tokens
from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.text.tokenize import ngrams, sentences, tokenize, word_spans
from repro.text.vectorize import TfidfModel, preprocess

__all__ = [
    "Keyword",
    "STOPWORDS",
    "TfidfModel",
    "cosine_counts",
    "dice",
    "extract_keywords",
    "is_stopword",
    "jaccard",
    "keyword_overlap",
    "levenshtein",
    "ngrams",
    "normalized_levenshtein",
    "porter_stem",
    "preprocess",
    "remove_stopwords",
    "sentences",
    "stem_tokens",
    "token_sort_ratio",
    "tokenize",
    "word_spans",
]
