"""Monte-Carlo sweep engine: batched, process-parallel continuum experiments.

The one-shot simulators (:func:`repro.continuum.simulate.simulate_schedule`,
:func:`repro.continuum.failures.simulate_with_failures`) answer "what does
one noisy execution of this plan look like?".  The questions the paper's Q3
analysis raises — how do schedulers compare *in distribution* across
failure rates, jitter levels, and a fleet of workflows — need thousands of
replications per grid cell.  Paying the simulators' per-call setup (object
construction, string-keyed lookups, validation) thousands of times makes
that sweep orders of magnitude slower than the arithmetic it performs.

This module is the batched engine, in four layers:

1. **Per-replication speedup** — :class:`SimulationContext` hoists every
   schedule invariant out of the replication loop: integer-indexed
   adjacency, per-task durations on every resource, a precomputed
   ``task × src × dst`` transfer-cost table, the plan's start order, and
   the feasibility sets the migrate policy scans.  One replication then
   runs on flat lists of floats and ints.  The replay is *bit-identical*
   to the one-shot simulators (see the determinism contract below).
2. **Work-stealing process parallelism** — :func:`run_sweep` feeds a
   shared round queue to a ``ProcessPoolExecutor`` (the pure-Python
   replay loop is GIL-bound, so threads cannot scale it).  Workers
   receive the schedules once (pool initializer), build contexts lazily,
   and return raw per-replication metric tuples; the parent dispatches
   the next pending round to whichever worker frees up, so a cell that
   finishes (or stops) early releases its worker to the slow cells
   instead of idling behind a static chunk assignment.
3. **Adaptive replication (sequential stopping)** — with
   ``SweepSpec.target_ci`` set, each cell runs replication *rounds*
   (``chunk_size`` replications each) only until the 95% confidence
   half-width of its primary metric's mean falls to ``target_ci``
   relative to that mean, capped at ``max_replications``.  Low-variance
   cells stop after one round; only genuinely noisy cells spend the full
   budget — a large reduction in simulations at equal statistical
   precision (gated in ``benchmarks/test_bench_montecarlo.py``).
4. **Streaming, mergeable aggregation** — the parent folds replications
   into :class:`RunningStat` (Welford mean/variance, min/max) and
   :class:`~repro.stats.sketch.QuantileSketch` (log-bucket quantile
   sketch with an *exact, associative* merge) accumulators per grid
   cell (:class:`CellAggregate`), so memory stays O(buckets) — constant
   in the replication count — and partial aggregates from independent
   processes or hosts combine deterministically.
5. **Integration** — grid cells are content-addressed: an
   :class:`~repro.pipeline.cache.ArtifactCache` hit skips every
   simulation of an already-computed cell; telemetry spans/counters and
   optional :class:`~repro.obs.RunRegistry` recording ride along; the
   ``repro sweep`` CLI command and the serve layer's ``POST /sweeps``
   drive the whole thing through one spec builder.

Determinism contract
--------------------
Replication ``j`` of a grid cell draws from a dedicated
``np.random.SeedSequence`` child derived from ``(spec.seed, cell
identity)`` — NOT from a shared stream — so results are bit-identical
regardless of worker count, chunk size, serial fallback, or which other
cells share the grid, and the first ``R`` replications of a larger run
reproduce a smaller run exactly.  The parent merges round results in
replication order per cell — out-of-order completions are buffered until
their predecessors fold — which pins the floating-point fold order no
matter which worker ran which round, in what order rounds completed, or
how the round queue was drained (see ``steal_seed``).  Sequential
stopping preserves the guarantee because stop decisions are evaluated
only at fully-folded round boundaries, on statistics that are themselves
bit-identical across execution placements; the round size
(``chunk_size``) is therefore part of an adaptive cell's identity, while
for fixed-replication sweeps chunking still can never change results.
Against the
one-shot simulators, one replication with generator ``g`` reproduces
``simulate_with_failures(schedule, ..., rng=g)`` bit-for-bit when
``jitter == 0``, and ``simulate_schedule(schedule, jitter=j, rng=g)``
when ``mtbf is None`` (batch draws of NumPy ``Generator`` consume the
stream exactly like the equivalent scalar sequence).
"""

from __future__ import annotations

import math
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.continuum.compile import CompiledProblem, compile_problem
from repro.continuum.resources import Continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
    Schedule,
)
from repro.continuum.workflow import Workflow
from repro.errors import ContinuumError, MonteCarloError
from repro.stats.sketch import QuantileSketch
from repro.telemetry import ensure

__all__ = [
    "ENGINE_VERSION",
    "SCHEDULERS",
    "METRIC_NAMES",
    "SKETCH_ALPHA",
    "ReplicationResult",
    "SimulationContext",
    "replicate_once",
    "RunningStat",
    "FixedHistogram",
    "QuantileSketch",
    "CellAggregate",
    "MetricSummary",
    "CellSpec",
    "CellStats",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "parse_grid",
    "build_sweep_spec",
]

#: Bump when the replay semantics or the aggregation layout change —
#: part of every cell's cache key, so stale cached cells can never leak
#: into a sweep computed by a newer engine.  "2": quantile sketches
#: replaced fixed-bucket histograms in the cell aggregate, and the
#: replication plan (fixed count vs adaptive stopping) joined the key.
ENGINE_VERSION = "2"

#: Relative-accuracy guarantee of every cell's quantile sketches.
SKETCH_ALPHA = 0.01

#: Normal-approximation z for the 95% confidence half-width the
#: sequential-stopping rule targets.
_CI_Z = 1.959963984540054

#: Scheduler registry the sweep grid selects from by name.
SCHEDULERS: dict[str, Any] = {
    "heft": HeftScheduler,
    "energy": EnergyAwareScheduler,
    "round_robin": RoundRobinScheduler,
}

#: Per-replication metrics every grid cell aggregates, in fold order.
METRIC_NAMES = ("makespan", "slowdown", "retries", "migrations", "lost_work")


@dataclass(frozen=True, slots=True)
class ReplicationResult:
    """One replication's figures of merit (no placements: streaming-sized)."""

    makespan: float
    slowdown: float
    retries: int
    migrations: int
    lost_work: float

    def as_tuple(self) -> tuple[float, float, int, int, float]:
        return (
            self.makespan,
            self.slowdown,
            self.retries,
            self.migrations,
            self.lost_work,
        )


class SimulationContext:
    """Schedule invariants hoisted out of the replication loop.

    Everything a replication needs that does not depend on the random
    stream is computed once here: integer task/resource indices, the
    plan's start order, per-task durations on every resource (IEEE-equal
    to ``Resource.execution_time``), the plan's own placement durations
    (for the jitter-only path, where ``simulate_schedule`` multiplies the
    *placement* duration), predecessor adjacency, the full
    ``task × src × dst`` transfer-cost table (IEEE-equal to
    ``Continuum.transfer_time``), feasibility sets, and the
    key-sorted resource ranks that break migrate-policy ties exactly like
    the string comparison in :func:`simulate_with_failures`.

    The pairing-level invariants (duration matrix, transfer table,
    adjacency, feasibility) now live on
    :class:`~repro.continuum.compile.CompiledProblem`; pass ``problem=``
    to share one compilation across every schedule/context of the same
    workflow × continuum pairing — only the schedule-specific pieces
    (plan order, planned resources/durations) are rebuilt per context.
    """

    __slots__ = (
        "schedule",
        "n_tasks",
        "n_resources",
        "order",
        "planned_res",
        "plan_dur",
        "dur",
        "transfer",
        "preds",
        "feasible",
        "res_rank",
        "planned_makespan",
    )

    def __init__(
        self, schedule: Schedule, problem: CompiledProblem | None = None
    ) -> None:
        if problem is None:
            problem = compile_problem(schedule.workflow, schedule.continuum)
        cw, cc = problem.cw, problem.cc
        tindex = cw.index
        rindex = cc.index

        self.schedule = schedule
        self.n_tasks = cw.n_tasks
        self.n_resources = cc.n_resources
        #: Plan start order as task indices (a valid topological order —
        #: the schedule validated that successors start after predecessors).
        self.order = [tindex[p.task] for p in schedule.placements]
        self.planned_res = [0] * self.n_tasks
        self.plan_dur = [0.0] * self.n_tasks
        for key in cw.keys:
            placement = schedule[key]
            self.planned_res[tindex[key]] = rindex[placement.resource]
            self.plan_dur[tindex[key]] = placement.duration

        # Pairing-level tables, shared via the compiled problem's cached
        # list views (dur[task][resource] == Resource.execution_time;
        # transfer[task][src][dst] == Continuum.transfer_time — the
        # diagonal is free and a zero output costs latency only, the
        # same IEEE division either way).
        self.dur = problem.dur_lists()
        self.transfer = problem.transfer_lists()
        self.preds = problem.pred_id_lists()
        self.feasible = problem.feasible_id_lists()
        # simulate_with_failures breaks earliest-finish ties on the
        # resource *key string*; ranks reproduce that order on ints.
        self.res_rank = cc.res_rank.tolist()
        self.planned_makespan = schedule.makespan


def replicate_once(
    context: SimulationContext,
    *,
    mtbf: float | None = None,
    repair_time: float = 0.0,
    policy: str = "restart",
    jitter: float = 0.0,
    max_attempts: int = 50,
    rng: np.random.Generator,
) -> ReplicationResult:
    """Run one replication against a precomputed context.

    With ``mtbf=None`` this is the jitter-only replay (bit-identical
    makespan to :func:`~repro.continuum.simulate.simulate_schedule`);
    with a finite ``mtbf`` it is the failure replay (bit-identical to
    :func:`~repro.continuum.failures.simulate_with_failures` when
    ``jitter == 0``).  Draw order: the per-task jitter factors first
    (task insertion order), then the per-resource initial failure times
    (continuum key order), then one exponential per consumed failure.
    """
    _validate_cell_params(
        mtbf=mtbf, repair_time=repair_time, policy=policy, jitter=jitter,
        max_attempts=max_attempts,
    )
    return _replicate(
        context, mtbf, repair_time, policy == "migrate", jitter,
        max_attempts, rng,
    )


def _validate_cell_params(
    *,
    mtbf: float | None,
    repair_time: float,
    policy: str,
    jitter: float,
    max_attempts: int,
) -> None:
    if mtbf is not None and not mtbf > 0:
        raise MonteCarloError("mtbf must be > 0 (or None for no failures)")
    if repair_time < 0:
        raise MonteCarloError("repair_time must be >= 0")
    if policy not in ("restart", "migrate"):
        raise MonteCarloError(f"unknown policy {policy!r}")
    if jitter < 0:
        raise MonteCarloError("jitter must be >= 0")
    if max_attempts < 1:
        raise MonteCarloError("max_attempts must be >= 1")


def _replicate(
    ctx: SimulationContext,
    mtbf: float | None,
    repair_time: float,
    migrate: bool,
    jitter: float,
    max_attempts: int,
    rng: np.random.Generator,
) -> ReplicationResult:
    """The replication hot loop: flat lists, integer indices, local names."""
    n_tasks = ctx.n_tasks
    order = ctx.order
    planned_res = ctx.planned_res
    preds = ctx.preds
    dur_table = ctx.dur
    plan_dur = ctx.plan_dur
    transfer = ctx.transfer
    feasible = ctx.feasible
    res_rank = ctx.res_rank
    exponential = rng.exponential

    factors = (
        rng.lognormal(mean=0.0, sigma=jitter, size=n_tasks).tolist()
        if jitter
        else None
    )
    clocked = mtbf is not None
    next_failure = (
        exponential(mtbf, size=ctx.n_resources).tolist() if clocked else None
    )
    resource_free = [0.0] * ctx.n_resources
    fin_time = [0.0] * n_tasks
    fin_res = list(planned_res)
    n_failures = 0
    lost_work = 0.0

    for ti in order:
        res = planned_res[ti]
        task_preds = preds[ti]
        # The jitter-only path multiplies the *placement* duration, like
        # simulate_schedule; the failure replay recomputes work/speed,
        # like simulate_with_failures (equal up to float noise).
        durations = dur_table[ti]
        attempts = 0
        while True:
            if attempts >= max_attempts:
                raise ContinuumError(
                    f"task #{ti} failed {attempts} times; "
                    f"mtbf={mtbf} is too small for its duration"
                )
            duration = plan_dur[ti] if not clocked else durations[res]
            if factors is not None:
                duration *= factors[ti]
            ready = 0.0
            for p in task_preds:
                arrival = fin_time[p] + transfer[p][fin_res[p]][res]
                if arrival > ready:
                    ready = arrival
            start = resource_free[res]
            if ready > start:
                start = ready
            if not clocked:
                finish = start + duration
                resource_free[res] = finish
                fin_time[ti] = finish
                fin_res[ti] = res
                break
            # Idle failures are harmless reboots: skip any that elapsed
            # before the attempt starts (_FailureClock.advance_past).
            failure = next_failure[res]
            while failure < start:
                failure += float(exponential(mtbf))
            if failure >= start + duration:
                next_failure[res] = failure
                finish = start + duration
                resource_free[res] = finish
                fin_time[ti] = finish
                fin_res[ti] = res
                break
            # The attempt dies at the failure instant.
            attempts += 1
            n_failures += 1
            lost_work += failure - start
            next_failure[res] = failure + float(exponential(mtbf))
            resource_free[res] = failure + repair_time
            if migrate:
                best: tuple[float, int] | None = None
                best_res = res
                for r in feasible[ti]:
                    retry_ready = 0.0
                    for p in task_preds:
                        arrival = fin_time[p] + transfer[p][fin_res[p]][r]
                        if arrival > retry_ready:
                            retry_ready = arrival
                    retry_start = resource_free[r]
                    if retry_ready > retry_start:
                        retry_start = retry_ready
                    candidate = (retry_start + durations[r], res_rank[r])
                    if best is None or candidate < best:
                        best = candidate
                        best_res = r
                res = best_res

    makespan = max(fin_time)
    migrations = 0
    for ti in range(n_tasks):
        if fin_res[ti] != planned_res[ti]:
            migrations += 1
    return ReplicationResult(
        makespan=makespan,
        slowdown=makespan / ctx.planned_makespan,
        retries=n_failures,
        migrations=migrations,
        lost_work=lost_work,
    )


# -- streaming aggregation ----------------------------------------------------


class RunningStat:
    """Welford mean/variance accumulator with min/max, O(1) memory.

    The fold order is fixed by the caller (replication order), which pins
    the floating-point result bit-for-bit across worker counts.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Fold another accumulator in (Chan et al. parallel update).

        For combining partial aggregates from independent processes or
        hosts.  The merged moments are deterministic for a given merge
        tree but — unlike the quantile sketches — not bit-identical to a
        value-by-value fold; that is why :func:`run_sweep` itself folds
        raw replications in replication order and reserves ``merge`` for
        cross-host combination.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def to_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunningStat":
        stat = cls()
        stat.count = int(payload["count"])
        stat.mean = float(payload["mean"])
        stat._m2 = float(payload["m2"])
        if stat.count:
            stat.min = float(payload["min"])
            stat.max = float(payload["max"])
        return stat


class FixedHistogram:
    """Fixed-bucket histogram with interpolated quantiles, O(buckets) memory.

    Values are clamped into ``[lo, hi]`` — quantile resolution is bounded
    by the bucket width (tails saturate at the edges), while the exact
    moments live in the paired :class:`RunningStat`.  Buckets are linear
    or geometric; counts are integers, so the histogram is trivially
    order-independent.

    Clamp semantics: an out-of-range value is *counted* in the nearest
    edge bucket (``clamped_low``/``clamped_high`` track how many), and a
    quantile target whose rank falls within that clamped mass answers
    with the exact edge value, never an interpolated point inside the
    edge bucket.  Without this, a histogram whose mass saturates the
    overflow bucket would spread identical out-of-range values across
    the bucket's span (p50 ≠ p99 for a constant stream), making
    sketch-vs-histogram comparisons unstable.
    """

    __slots__ = ("edges", "counts", "_log", "clamped_low", "clamped_high")

    def __init__(
        self, lo: float, hi: float, n_buckets: int, *, log: bool = False
    ) -> None:
        if not hi > lo:
            raise MonteCarloError("histogram needs hi > lo")
        if n_buckets < 1:
            raise MonteCarloError("histogram needs >= 1 bucket")
        if log and lo <= 0:
            raise MonteCarloError("log-spaced histogram needs lo > 0")
        self._log = log
        if log:
            self.edges = np.geomspace(lo, hi, n_buckets + 1)
        else:
            self.edges = np.linspace(lo, hi, n_buckets + 1)
        self.counts = np.zeros(n_buckets, dtype=np.int64)
        self.clamped_low = 0
        self.clamped_high = 0

    def add(self, value: float) -> None:
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        if index < 0:
            index = 0
            self.clamped_low += 1
        elif index >= self.counts.size:
            index = self.counts.size - 1
            if value > self.edges[-1]:
                self.clamped_high += 1
        self.counts[index] += 1

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile estimate from the bucket counts.

        Targets that land within clamped out-of-range mass return the
        exact range edge (see the class docstring).
        """
        if not 0.0 <= q <= 1.0:
            raise MonteCarloError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            raise MonteCarloError("quantile of an empty histogram")
        target = q * total
        # Ranks inside the clamped tails are known exactly: every such
        # observation sits at (or beyond) the range edge.
        if self.clamped_low and target <= self.clamped_low:
            return float(self.edges[0])
        if self.clamped_high and target >= total - self.clamped_high:
            return float(self.edges[-1])
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, target, side="left"))
        if index >= self.counts.size:
            index = self.counts.size - 1
        below = float(cumulative[index - 1]) if index > 0 else 0.0
        inside = float(self.counts[index])
        fraction = (target - below) / inside if inside else 0.0
        lo, hi = float(self.edges[index]), float(self.edges[index + 1])
        return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """One metric's distribution over a grid cell's replications."""

    count: int
    mean: float
    std: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float

    def to_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricSummary":
        return cls(
            count=int(payload["count"]),
            mean=float(payload["mean"]),
            std=float(payload["std"]),
            min=float(payload["min"]),
            max=float(payload["max"]),
            p50=float(payload["p50"]),
            p90=float(payload["p90"]),
            p99=float(payload["p99"]),
        )


class CellAggregate:
    """Streams one cell's replications into mergeable stats + sketches.

    One :class:`RunningStat` (exact moments) and one
    :class:`~repro.stats.sketch.QuantileSketch` (quantiles within
    :data:`SKETCH_ALPHA` relative error) per metric.  Unlike the
    fixed-bucket histograms this replaces, the sketches need no a-priori
    value range and their :meth:`merge` is *exact*: combining partial
    aggregates from independent processes or hosts yields the same
    sketch state as one aggregate fed every replication — the foundation
    for distributing sweeps beyond one parent process.

    ``to_dict``/``from_dict`` round-trip the full state through JSON so
    a partial aggregate is shippable between hosts.
    """

    __slots__ = ("stats", "sketches")

    def __init__(self) -> None:
        self.stats = {name: RunningStat() for name in METRIC_NAMES}
        self.sketches = {
            name: QuantileSketch(SKETCH_ALPHA) for name in METRIC_NAMES
        }

    def add(self, values: tuple[float, float, int, int, float]) -> None:
        for name, value in zip(METRIC_NAMES, values):
            self.stats[name].add(value)
            self.sketches[name].add(value)

    def merge(self, other: "CellAggregate") -> "CellAggregate":
        """Fold another cell aggregate in (sketch merge is exact)."""
        for name in METRIC_NAMES:
            self.stats[name].merge(other.stats[name])
            self.sketches[name].merge(other.sketches[name])
        return self

    def summaries(self) -> dict[str, MetricSummary]:
        out: dict[str, MetricSummary] = {}
        for name in METRIC_NAMES:
            stat = self.stats[name]
            sketch = self.sketches[name]
            out[name] = MetricSummary(
                count=stat.count,
                mean=stat.mean,
                std=stat.std,
                min=stat.min,
                max=stat.max,
                p50=sketch.quantile(0.50),
                p90=sketch.quantile(0.90),
                p99=sketch.quantile(0.99),
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "stats": {
                name: self.stats[name].to_dict() for name in METRIC_NAMES
            },
            "sketches": {
                name: self.sketches[name].to_dict() for name in METRIC_NAMES
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellAggregate":
        aggregate = cls()
        try:
            aggregate.stats = {
                name: RunningStat.from_dict(payload["stats"][name])
                for name in METRIC_NAMES
            }
            aggregate.sketches = {
                name: QuantileSketch.from_dict(payload["sketches"][name])
                for name in METRIC_NAMES
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise MonteCarloError(
                f"malformed cell aggregate payload: {exc}"
            ) from None
        return aggregate


# -- grid cells ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CellSpec:
    """One grid cell: a workflow × scheduler × failure/jitter condition."""

    workflow: str
    scheduler: str
    mtbf: float | None
    jitter: float
    policy: str

    @property
    def cell_id(self) -> str:
        mtbf = "none" if self.mtbf is None else f"{self.mtbf:g}"
        return (
            f"{self.workflow}|{self.scheduler}|mtbf={mtbf}"
            f"|jitter={self.jitter:g}|policy={self.policy}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workflow": self.workflow,
            "scheduler": self.scheduler,
            "mtbf": self.mtbf,
            "jitter": self.jitter,
            "policy": self.policy,
        }


@dataclass(frozen=True, slots=True)
class CellStats:
    """Aggregated outcome of one grid cell."""

    cell: CellSpec
    replications: int
    planned_makespan: float
    metrics: dict[str, MetricSummary]

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell": self.cell.to_dict(),
            "cell_id": self.cell.cell_id,
            "replications": self.replications,
            "planned_makespan": self.planned_makespan,
            "metrics": {
                name: summary.to_dict()
                for name, summary in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellStats":
        cell = payload["cell"]
        return cls(
            cell=CellSpec(
                workflow=str(cell["workflow"]),
                scheduler=str(cell["scheduler"]),
                mtbf=None if cell["mtbf"] is None else float(cell["mtbf"]),
                jitter=float(cell["jitter"]),
                policy=str(cell["policy"]),
            ),
            replications=int(payload["replications"]),
            planned_makespan=float(payload["planned_makespan"]),
            metrics={
                str(name): MetricSummary.from_dict(summary)
                for name, summary in payload["metrics"].items()
            },
        )


# -- sweep specification --------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A full Monte-Carlo experiment grid.

    The grid is the cross product ``workflows × schedulers × mtbfs ×
    jitters × policies``.  Replication sizing has two modes:

    * **fixed** (``target_ci is None``, the default): every cell runs
      exactly ``replications`` seeded replications, and ``chunk_size``
      shapes the parallel fan-out only — it can never change results
      (see the module determinism contract).
    * **adaptive** (``target_ci`` set): every cell runs rounds of
      ``chunk_size`` replications until the 95% confidence half-width
      of its ``primary_metric`` mean is at most ``target_ci`` *relative
      to that mean* (``1.96·s/√n ≤ target_ci·|mean|``), capped at
      ``max_replications`` (default: ``replications``).  Stop checks
      happen at round boundaries, so in this mode ``chunk_size`` is part
      of a cell's identity (and cache key); results remain bit-identical
      across worker counts and queue orders.

    ``max_replications`` without ``target_ci`` is rejected — a fixed
    sweep sizes itself with ``replications`` alone.
    """

    workflows: tuple[Workflow, ...]
    continuum: Continuum
    schedulers: tuple[str, ...] = ("heft",)
    mtbfs: tuple[float | None, ...] = (None,)
    jitters: tuple[float, ...] = (0.0,)
    policies: tuple[str, ...] = ("restart",)
    repair_time: float = 1.0
    max_attempts: int = 50
    replications: int = 100
    seed: int = 0
    chunk_size: int = 64
    target_ci: float | None = None
    max_replications: int | None = None
    primary_metric: str = "makespan"

    def __post_init__(self) -> None:
        if not self.workflows:
            raise MonteCarloError("sweep needs at least one workflow")
        names = [w.name for w in self.workflows]
        if len(set(names)) != len(names):
            raise MonteCarloError("workflow names must be unique in a sweep")
        if not self.schedulers:
            raise MonteCarloError("sweep needs at least one scheduler")
        for name in self.schedulers:
            if name not in SCHEDULERS:
                raise MonteCarloError(
                    f"unknown scheduler {name!r}; "
                    f"choose from {sorted(SCHEDULERS)}"
                )
        if not self.mtbfs or not self.jitters or not self.policies:
            raise MonteCarloError("mtbfs, jitters, and policies must be non-empty")
        if self.replications < 1:
            raise MonteCarloError("replications must be >= 1")
        if self.chunk_size < 1:
            raise MonteCarloError("chunk_size must be >= 1")
        if self.primary_metric not in METRIC_NAMES:
            raise MonteCarloError(
                f"unknown primary_metric {self.primary_metric!r}; "
                f"choose from {METRIC_NAMES}"
            )
        if self.target_ci is not None:
            if not (math.isfinite(self.target_ci) and self.target_ci > 0):
                raise MonteCarloError(
                    f"target_ci must be a finite value > 0, "
                    f"got {self.target_ci}"
                )
        if self.max_replications is not None:
            if self.target_ci is None:
                raise MonteCarloError(
                    "max_replications requires target_ci (a fixed sweep "
                    "sizes itself with replications)"
                )
            if self.max_replications < 1:
                raise MonteCarloError("max_replications must be >= 1")
        for mtbf in self.mtbfs:
            for jitter in self.jitters:
                for policy in self.policies:
                    _validate_cell_params(
                        mtbf=mtbf, repair_time=self.repair_time,
                        policy=policy, jitter=jitter,
                        max_attempts=self.max_attempts,
                    )

    @property
    def adaptive(self) -> bool:
        """Whether this sweep sizes replications by sequential stopping."""
        return self.target_ci is not None

    @property
    def replication_cap(self) -> int:
        """Per-cell replication ceiling (fixed count in fixed mode)."""
        if self.adaptive and self.max_replications is not None:
            return self.max_replications
        return self.replications

    def replication_plan(self) -> dict[str, Any]:
        """The replication-sizing identity (part of every cell cache key)."""
        if not self.adaptive:
            return {"mode": "fixed", "replications": self.replications}
        return {
            "mode": "adaptive",
            "target_ci": self.target_ci,
            "max_replications": self.replication_cap,
            "round_size": self.chunk_size,
            "primary_metric": self.primary_metric,
        }

    def cells(self) -> tuple[CellSpec, ...]:
        """The grid cells in deterministic enumeration order."""
        return tuple(
            CellSpec(
                workflow=workflow.name, scheduler=scheduler,
                mtbf=mtbf, jitter=jitter, policy=policy,
            )
            for workflow in self.workflows
            for scheduler in self.schedulers
            for mtbf in self.mtbfs
            for jitter in self.jitters
            for policy in self.policies
        )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`run_sweep`.

    ``computed``/``cached`` partition the grid's cell ids by whether
    their replications ran in this call or came from the artifact cache;
    ``n_replications_run`` counts the simulations actually executed.
    ``n_replications_budget`` is what a fixed sweep at the replication
    cap would have executed for the same computed cells — the difference
    is the adaptive engine's savings (zero by construction in fixed
    mode, where run == budget).
    """

    cells: tuple[CellStats, ...]
    computed: tuple[str, ...]
    cached: tuple[str, ...]
    n_replications_run: int
    n_replications_budget: int = 0

    @property
    def n_replications_saved(self) -> int:
        return self.n_replications_budget - self.n_replications_run

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine_version": ENGINE_VERSION,
            "cells": [cell.to_dict() for cell in self.cells],
            "computed": list(self.computed),
            "cached": list(self.cached),
            "n_replications_run": self.n_replications_run,
            "n_replications_budget": self.n_replications_budget,
        }


# -- request construction ---------------------------------------------------------


def parse_grid(text: str) -> dict[str, tuple]:
    """Parse a grid axis spec into :class:`SweepSpec` keyword values.

    The format is shared by ``repro sweep --grid`` and the serve layer's
    ``POST /sweeps`` body: ``"key=v1,v2;key=v1"`` with keys ``scheduler``
    (heft|energy|round_robin), ``mtbf`` (floats or ``none``), ``jitter``
    (floats), and ``policy`` (restart|migrate); omitted axes keep the
    single-cell defaults.

    >>> parse_grid("scheduler=heft,energy;mtbf=50")["schedulers"]
    ('heft', 'energy')
    """
    axes: dict[str, tuple] = {
        "schedulers": ("heft",),
        "mtbfs": (None,),
        "jitters": (0.0,),
        "policies": ("restart",),
    }
    plural = {
        "scheduler": "schedulers",
        "mtbf": "mtbfs",
        "jitter": "jitters",
        "policy": "policies",
    }
    for entry in filter(None, (part.strip() for part in text.split(";"))):
        key, sep, raw = entry.partition("=")
        key = key.strip().lower()
        if not sep or key not in plural:
            raise MonteCarloError(
                f"bad grid entry {entry!r}; expected "
                "scheduler=.../mtbf=.../jitter=.../policy=..."
            )
        values = [v.strip() for v in raw.split(",") if v.strip()]
        if not values:
            raise MonteCarloError(f"grid axis {key!r} has no values")
        if key in ("mtbf", "jitter"):
            try:
                axes[plural[key]] = tuple(
                    None if key == "mtbf" and v.lower() == "none" else float(v)
                    for v in values
                )
            except ValueError:
                raise MonteCarloError(
                    f"grid axis {key!r} needs numeric values, got {raw!r}"
                ) from None
        else:
            axes[plural[key]] = tuple(values)
    return axes


def build_sweep_spec(
    *,
    grid: str = "scheduler=heft",
    fleet: int = 3,
    replications: int = 100,
    seed: int = 0,
    target_ci: float | None = None,
    max_replications: int | None = None,
) -> SweepSpec:
    """The canonical :class:`SweepSpec` for a sweep *request*.

    Both front doors — ``repro sweep`` and the serve layer's
    ``POST /sweeps`` — build their spec through this one function, so an
    HTTP-submitted sweep is *bit-identical* (same fleet, same continuum,
    same per-cell entropy, hence the same cache keys and ledger record)
    to the CLI sweep with the same arguments.  ``target_ci`` switches
    the sweep to adaptive sequential stopping (``max_replications``
    caps it; default: ``replications``) — invalid combinations raise
    :class:`~repro.errors.MonteCarloError` here, before any work runs.
    """
    from repro.continuum.resources import default_continuum
    from repro.data import synthetic_workflows

    if fleet < 1:
        raise MonteCarloError("fleet must be >= 1")
    return SweepSpec(
        workflows=synthetic_workflows(fleet, seed=seed),
        continuum=default_continuum(seed=seed),
        replications=replications,
        seed=seed,
        target_ci=target_ci,
        max_replications=max_replications,
        **parse_grid(grid),
    )


# -- fingerprints and cache keys -------------------------------------------------


def _workflow_fingerprint(workflow: Workflow) -> str:
    from repro.continuum.serialize import workflow_to_dict
    from repro.pipeline.cache import stable_digest

    return stable_digest(workflow_to_dict(workflow))


def _continuum_fingerprint(continuum: Continuum) -> str:
    from repro.continuum.serialize import continuum_to_dict
    from repro.pipeline.cache import stable_digest

    return stable_digest(continuum_to_dict(continuum))


def _cell_identity(spec: SweepSpec, cell: CellSpec,
                   fingerprints: Mapping[str, str],
                   continuum_fp: str) -> dict[str, Any]:
    """Everything that pins a cell's random streams (not the rep count)."""
    return {
        "engine": ENGINE_VERSION,
        "seed": spec.seed,
        "workflow": fingerprints[cell.workflow],
        "continuum": continuum_fp,
        "scheduler": cell.scheduler,
        "mtbf": cell.mtbf,
        "jitter": cell.jitter,
        "policy": cell.policy,
        "repair_time": spec.repair_time,
        "max_attempts": spec.max_attempts,
    }


def _cell_entropy(identity: Mapping[str, Any]) -> int:
    """The SeedSequence entropy word a cell's replications derive from.

    Content-addressed: a cell's streams depend only on its own identity,
    never on its position in the grid, so identical cells in different
    sweeps produce identical replications (and cache hits are sound).
    """
    from repro.pipeline.cache import stable_digest

    return int(stable_digest(identity)[:32], 16)


def _replication_rng(entropy: int, rep_index: int) -> np.random.Generator:
    """The dedicated generator for replication *rep_index* of a cell."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(rep_index,))
    )


# -- worker protocol --------------------------------------------------------------


@dataclass(frozen=True)
class _CellTask:
    """One cell's work order, as shipped to (or run by) a worker."""

    schedule_index: int
    mtbf: float | None
    jitter: float
    policy: str
    repair_time: float
    max_attempts: int
    entropy: int


# Worker-global state, set once per process by the pool initializer; the
# serial fallback uses the same two functions in-process.
_WORKER_SCHEDULES: list[Schedule] = []
_WORKER_TASKS: list[_CellTask] = []
_WORKER_CONTEXTS: dict[int, SimulationContext] = {}
# One CompiledProblem per workflow × continuum pairing.  The pool ships
# all schedules as one payload, so schedules of the same workflow
# unpickle sharing one Workflow/Continuum object and identity keys are
# stable within a worker.
_WORKER_PROBLEMS: dict[tuple[int, int], CompiledProblem] = {}


def _worker_init(schedules: list[Schedule], tasks: list[_CellTask]) -> None:
    global _WORKER_SCHEDULES, _WORKER_TASKS, _WORKER_CONTEXTS, _WORKER_PROBLEMS
    _WORKER_SCHEDULES = schedules
    _WORKER_TASKS = tasks
    _WORKER_CONTEXTS = {}
    _WORKER_PROBLEMS = {}


def _worker_chunk(
    args: tuple[int, int, int],
) -> list[tuple[float, float, int, int, float]]:
    """Run replications [start, start+count) of one cell task.

    Returns raw metric tuples in replication order; every replication
    owns a spawned generator, so execution placement is irrelevant.
    """
    task_index, start, count = args
    task = _WORKER_TASKS[task_index]
    context = _WORKER_CONTEXTS.get(task.schedule_index)
    if context is None:
        schedule = _WORKER_SCHEDULES[task.schedule_index]
        pairing = (id(schedule.workflow), id(schedule.continuum))
        problem = _WORKER_PROBLEMS.get(pairing)
        if problem is None:
            problem = compile_problem(schedule.workflow, schedule.continuum)
            _WORKER_PROBLEMS[pairing] = problem
        context = SimulationContext(schedule, problem)
        _WORKER_CONTEXTS[task.schedule_index] = context
    migrate = task.policy == "migrate"
    return [
        _replicate(
            context, task.mtbf, task.repair_time, migrate, task.jitter,
            task.max_attempts, _replication_rng(task.entropy, rep),
        ).as_tuple()
        for rep in range(start, start + count)
    ]


# -- the sweep driver --------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    cache=None,
    telemetry=None,
    registry=None,
    steal_seed: int | None = None,
) -> SweepResult:
    """Run the full Monte-Carlo grid of *spec*.

    Parameters
    ----------
    spec:
        The experiment grid (see :class:`SweepSpec`).
    workers:
        Process-pool size for the replication fan-out.  ``0`` or ``1``
        runs the deterministic serial path in-process; results are
        bit-identical either way.
    cache:
        Optional :class:`~repro.pipeline.cache.ArtifactCache`.  Grid
        cells are content-addressed (engine version, seed, workflow and
        continuum fingerprints, cell condition, replication plan): a hit
        skips every simulation of that cell.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; when bound the
        sweep is traced (``sweep`` span with per-scheduler ``schedule.*``
        child spans), counted (``mc.replications``, ``mc.rounds``,
        ``mc.replications_saved``, ``mc.cells_computed``,
        ``mc.cells_cached``), and logged (``sweep.finish``).
    registry:
        Optional :class:`~repro.obs.RunRegistry`; when given, the sweep
        appends a ``mc-sweep`` :class:`~repro.obs.RunRecord` (cell
        digests, replication counters) to the run ledger.
    steal_seed:
        Optional seed that *shuffles* the order rounds are taken off the
        shared work queue — a chaos knob for exercising the determinism
        contract (results are bit-identical for any value, which the
        test suite asserts), never needed for normal runs.

    Returns
    -------
    SweepResult
        Per-cell streaming statistics plus the computed/cached split.
    """
    if workers < 0:
        raise MonteCarloError("workers must be >= 0")
    tel = ensure(telemetry)
    if not tel.enabled:
        return _run_sweep(spec, workers, cache, tel, registry, steal_seed)
    cells = spec.cells()
    with tel.tracer.span(
        "sweep",
        cells=len(cells),
        replications=spec.replication_cap,
        workers=workers,
        adaptive=spec.adaptive,
    ) as span:
        result = _run_sweep(spec, workers, cache, tel, registry, steal_seed)
        span.tags.update(
            computed=len(result.computed),
            cached=len(result.cached),
        )
        tel.log.info(
            "sweep.finish",
            cells=len(result.cells),
            computed=len(result.computed),
            cached=len(result.cached),
            replications_run=result.n_replications_run,
        )
    return result


def _run_sweep(
    spec: SweepSpec, workers: int, cache, tel, registry, steal_seed
) -> SweepResult:
    from repro.pipeline.cache import stable_digest

    cells = spec.cells()
    workflow_of = {w.name: w for w in spec.workflows}
    fingerprints = {
        w.name: _workflow_fingerprint(w) for w in spec.workflows
    }
    continuum_fp = _continuum_fingerprint(spec.continuum)

    # Content-addressed cache lookup per cell.  The key pairs the cell's
    # stream identity with the replication *plan*: a fixed count, or the
    # adaptive stopping rule (whose round size shapes where stop checks
    # happen, hence the result).
    identities = {
        cell.cell_id: _cell_identity(spec, cell, fingerprints, continuum_fp)
        for cell in cells
    }
    replication_plan = spec.replication_plan()
    cache_keys = {
        cell.cell_id: stable_digest(
            "montecarlo-cell",
            identities[cell.cell_id],
            replication_plan,
        )
        for cell in cells
    }
    stats_of: dict[str, CellStats] = {}
    cached_ids: list[str] = []
    misses: list[CellSpec] = []
    for cell in cells:
        payload = (
            cache.get(cache_keys[cell.cell_id]) if cache is not None else None
        )
        if payload is not None:
            stats_of[cell.cell_id] = CellStats.from_dict(payload)
            cached_ids.append(cell.cell_id)
        else:
            misses.append(cell)

    replications_run = 0
    if misses:
        # Schedule once per (workflow, scheduler) pair actually needed;
        # compile each workflow × continuum pairing exactly once and
        # share it across every scheduler placing on it.
        schedules: list[Schedule] = []
        schedule_index: dict[tuple[str, str], int] = {}
        problems: dict[str, CompiledProblem] = {}
        for cell in misses:
            pair = (cell.workflow, cell.scheduler)
            if pair not in schedule_index:
                scheduler = SCHEDULERS[cell.scheduler]()
                problem = problems.get(cell.workflow)
                if problem is None:
                    problem = compile_problem(
                        workflow_of[cell.workflow], spec.continuum
                    )
                    problems[cell.workflow] = problem
                schedule_index[pair] = len(schedules)
                schedules.append(
                    scheduler.schedule(
                        workflow_of[cell.workflow], spec.continuum,
                        telemetry=tel if tel.enabled else None,
                        problem=problem,
                    )
                )

        tasks = [
            _CellTask(
                schedule_index=schedule_index[(cell.workflow, cell.scheduler)],
                mtbf=cell.mtbf,
                jitter=cell.jitter,
                policy=cell.policy,
                repair_time=spec.repair_time,
                max_attempts=spec.max_attempts,
                entropy=_cell_entropy(identities[cell.cell_id]),
            )
            for cell in misses
        ]
        progresses = [
            _CellProgress(
                cell=cell,
                planned=schedules[
                    schedule_index[(cell.workflow, cell.scheduler)]
                ].makespan,
                cap=spec.replication_cap,
            )
            for cell in misses
        ]
        rounds_run = _execute_cells(
            spec, schedules, tasks, progresses, workers, steal_seed
        )

        for cell, progress in zip(misses, progresses):
            stats = CellStats(
                cell=cell,
                replications=progress.folded,
                planned_makespan=progress.planned,
                metrics=progress.aggregate.summaries(),
            )
            stats_of[cell.cell_id] = stats
            replications_run += progress.folded
            if cache is not None:
                cache.store(cache_keys[cell.cell_id], stats.to_dict())

    budget = spec.replication_cap * len(misses)
    result = SweepResult(
        cells=tuple(stats_of[cell.cell_id] for cell in cells),
        computed=tuple(cell.cell_id for cell in misses),
        cached=tuple(cached_ids),
        n_replications_run=replications_run,
        n_replications_budget=budget,
    )
    if tel.enabled:
        metrics = tel.metrics
        metrics.counter("mc.replications").inc(replications_run)
        metrics.counter("mc.cells_computed").inc(len(result.computed))
        metrics.counter("mc.cells_cached").inc(len(result.cached))
        if misses:
            metrics.counter("mc.rounds").inc(rounds_run)
        if spec.adaptive:
            metrics.counter("mc.replications_saved").inc(
                result.n_replications_saved
            )
    if registry is not None:
        from repro.obs import build_sweep_record

        meta: dict[str, Any] = {
            "seed": spec.seed,
            "replications": spec.replications,
            "workers": workers,
        }
        if spec.adaptive:
            meta["target_ci"] = spec.target_ci
            meta["max_replications"] = spec.replication_cap
            meta["primary_metric"] = spec.primary_metric
        registry.record(
            build_sweep_record(
                result,
                telemetry=tel if tel.enabled else None,
                config_digest=stable_digest(
                    sorted(cache_keys.values())
                ),
                meta=meta,
            )
        )
    return result


# -- the work-stealing round dispatcher --------------------------------------------


class _CellProgress:
    """Parent-side fold state for one computed grid cell.

    ``folded`` counts the replications merged into the aggregate so far —
    always a prefix of the cell's replication stream.  Rounds that
    complete out of order wait in ``buffer`` (keyed by start index) until
    every predecessor has folded, which pins the floating-point fold
    order no matter which worker ran which round.
    """

    __slots__ = ("cell", "planned", "cap", "aggregate", "folded",
                 "buffer", "done", "rounds")

    def __init__(self, cell: CellSpec, planned: float, cap: int) -> None:
        self.cell = cell
        self.planned = planned
        self.cap = cap
        self.aggregate = CellAggregate()
        self.folded = 0
        self.buffer: dict[int, list[tuple[float, float, int, int, float]]] = {}
        self.done = False
        self.rounds = 0


def _stop_met(spec: SweepSpec, aggregate: CellAggregate) -> bool:
    """The sequential-stopping rule, checked at round boundaries only.

    Stop once the normal-approximation 95% confidence half-width of the
    primary metric's mean is within ``target_ci`` of the mean's
    magnitude.  A zero-variance cell (e.g. no failures, no jitter) stops
    after its first round; a zero-mean cell stops only when its variance
    is also zero, since no relative precision is otherwise attainable
    before the cap.
    """
    stat = aggregate.stats[spec.primary_metric]
    if stat.count < 2:
        return False
    half_width = _CI_Z * stat.std / math.sqrt(stat.count)
    return half_width <= spec.target_ci * abs(stat.mean)


def _execute_cells(
    spec: SweepSpec,
    schedules: list[Schedule],
    tasks: list[_CellTask],
    progresses: list[_CellProgress],
    workers: int,
    steal_seed: int | None,
) -> int:
    """Drain every cell's replication rounds through one shared queue.

    Fixed mode enqueues the whole plan upfront, round-major, so the early
    rounds of every cell reach the pool first.  Adaptive mode keeps
    exactly one round outstanding per cell: the next round joins the
    queue only after its predecessor folds and :func:`_stop_met` says
    continue — which is what makes stopping decisions independent of
    worker count and queue order.  Workers pull whatever round is next
    (no static assignment), so a cell that stops early frees its worker
    for the slow cells.  Returns the number of rounds executed.
    """
    chunk = spec.chunk_size
    pending: deque[tuple[int, int, int]] = deque()
    if spec.adaptive:
        for task_index, progress in enumerate(progresses):
            pending.append((task_index, 0, min(chunk, progress.cap)))
    else:
        for start in range(0, spec.replication_cap, chunk):
            for task_index, progress in enumerate(progresses):
                if start < progress.cap:
                    pending.append(
                        (task_index, start, min(chunk, progress.cap - start))
                    )
    steal_rng = (
        np.random.default_rng(steal_seed) if steal_seed is not None else None
    )
    rounds_run = 0

    def receive(
        task_index: int,
        start: int,
        values: list[tuple[float, float, int, int, float]],
    ) -> None:
        nonlocal rounds_run
        progress = progresses[task_index]
        progress.buffer[start] = values
        while progress.folded in progress.buffer:
            rows = progress.buffer.pop(progress.folded)
            for row in rows:
                progress.aggregate.add(row)
            progress.folded += len(rows)
            progress.rounds += 1
            rounds_run += 1
            if progress.folded >= progress.cap:
                progress.done = True
            elif spec.adaptive:
                if _stop_met(spec, progress.aggregate):
                    progress.done = True
                else:
                    pending.append((
                        task_index,
                        progress.folded,
                        min(chunk, progress.cap - progress.folded),
                    ))

    def take() -> tuple[int, int, int]:
        if steal_rng is None or len(pending) == 1:
            return pending.popleft()
        index = int(steal_rng.integers(len(pending)))
        item = pending[index]
        del pending[index]
        return item

    if workers > 1:
        in_flight: dict[Any, tuple[int, int, int]] = {}
        limit = workers * 2
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(schedules, tasks),
        ) as pool:
            while pending or in_flight:
                while pending and len(in_flight) < limit:
                    item = take()
                    in_flight[pool.submit(_worker_chunk, item)] = item
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    task_index, start, _ = in_flight.pop(future)
                    receive(task_index, start, future.result())
    else:
        _worker_init(schedules, tasks)
        while pending:
            item = take()
            receive(item[0], item[1], _worker_chunk(item))
    return rounds_run
