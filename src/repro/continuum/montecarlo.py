"""Monte-Carlo sweep engine: batched, process-parallel continuum experiments.

The one-shot simulators (:func:`repro.continuum.simulate.simulate_schedule`,
:func:`repro.continuum.failures.simulate_with_failures`) answer "what does
one noisy execution of this plan look like?".  The questions the paper's Q3
analysis raises — how do schedulers compare *in distribution* across
failure rates, jitter levels, and a fleet of workflows — need thousands of
replications per grid cell.  Paying the simulators' per-call setup (object
construction, string-keyed lookups, validation) thousands of times makes
that sweep orders of magnitude slower than the arithmetic it performs.

This module is the batched engine, in four layers:

1. **Per-replication speedup** — :class:`SimulationContext` hoists every
   schedule invariant out of the replication loop: integer-indexed
   adjacency, per-task durations on every resource, a precomputed
   ``task × src × dst`` transfer-cost table, the plan's start order, and
   the feasibility sets the migrate policy scans.  One replication then
   runs on flat lists of floats and ints.  The replay is *bit-identical*
   to the one-shot simulators (see the determinism contract below).
2. **Process parallelism** — :func:`run_sweep` fans replication chunks out
   over a ``ProcessPoolExecutor`` (the pure-Python replay loop is
   GIL-bound, so threads cannot scale it).  Workers receive the schedules
   once (pool initializer), build contexts lazily, and return raw
   per-replication metric tuples.
3. **Streaming aggregation** — the parent folds replications into
   :class:`RunningStat` (Welford mean/variance, min/max) and
   :class:`FixedHistogram` (fixed-bucket counts with interpolated
   p50/p90/p99) accumulators per grid cell, so memory stays O(buckets) —
   constant in the replication count.
4. **Integration** — grid cells are content-addressed: an
   :class:`~repro.pipeline.cache.ArtifactCache` hit skips every
   simulation of an already-computed cell; telemetry spans/counters and
   optional :class:`~repro.obs.RunRegistry` recording ride along; the
   ``repro sweep`` CLI command drives the whole thing.

Determinism contract
--------------------
Replication ``j`` of a grid cell draws from a dedicated
``np.random.SeedSequence`` child derived from ``(spec.seed, cell
identity)`` — NOT from a shared stream — so results are bit-identical
regardless of worker count, chunk size, serial fallback, or which other
cells share the grid, and the first ``R`` replications of a larger run
reproduce a smaller run exactly.  The parent merges chunk results in
replication order, which pins the floating-point fold order.  Against the
one-shot simulators, one replication with generator ``g`` reproduces
``simulate_with_failures(schedule, ..., rng=g)`` bit-for-bit when
``jitter == 0``, and ``simulate_schedule(schedule, jitter=j, rng=g)``
when ``mtbf is None`` (batch draws of NumPy ``Generator`` consume the
stream exactly like the equivalent scalar sequence).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.continuum.compile import CompiledProblem, compile_problem
from repro.continuum.resources import Continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
    Schedule,
)
from repro.continuum.workflow import Workflow
from repro.errors import ContinuumError, MonteCarloError
from repro.telemetry import ensure

__all__ = [
    "ENGINE_VERSION",
    "SCHEDULERS",
    "METRIC_NAMES",
    "ReplicationResult",
    "SimulationContext",
    "replicate_once",
    "RunningStat",
    "FixedHistogram",
    "MetricSummary",
    "CellSpec",
    "CellStats",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "parse_grid",
    "build_sweep_spec",
]

#: Bump when the replay semantics or the aggregation layout change —
#: part of every cell's cache key, so stale cached cells can never leak
#: into a sweep computed by a newer engine.
ENGINE_VERSION = "1"

#: Scheduler registry the sweep grid selects from by name.
SCHEDULERS: dict[str, Any] = {
    "heft": HeftScheduler,
    "energy": EnergyAwareScheduler,
    "round_robin": RoundRobinScheduler,
}

#: Per-replication metrics every grid cell aggregates, in fold order.
METRIC_NAMES = ("makespan", "slowdown", "retries", "migrations", "lost_work")


@dataclass(frozen=True, slots=True)
class ReplicationResult:
    """One replication's figures of merit (no placements: streaming-sized)."""

    makespan: float
    slowdown: float
    retries: int
    migrations: int
    lost_work: float

    def as_tuple(self) -> tuple[float, float, int, int, float]:
        return (
            self.makespan,
            self.slowdown,
            self.retries,
            self.migrations,
            self.lost_work,
        )


class SimulationContext:
    """Schedule invariants hoisted out of the replication loop.

    Everything a replication needs that does not depend on the random
    stream is computed once here: integer task/resource indices, the
    plan's start order, per-task durations on every resource (IEEE-equal
    to ``Resource.execution_time``), the plan's own placement durations
    (for the jitter-only path, where ``simulate_schedule`` multiplies the
    *placement* duration), predecessor adjacency, the full
    ``task × src × dst`` transfer-cost table (IEEE-equal to
    ``Continuum.transfer_time``), feasibility sets, and the
    key-sorted resource ranks that break migrate-policy ties exactly like
    the string comparison in :func:`simulate_with_failures`.

    The pairing-level invariants (duration matrix, transfer table,
    adjacency, feasibility) now live on
    :class:`~repro.continuum.compile.CompiledProblem`; pass ``problem=``
    to share one compilation across every schedule/context of the same
    workflow × continuum pairing — only the schedule-specific pieces
    (plan order, planned resources/durations) are rebuilt per context.
    """

    __slots__ = (
        "schedule",
        "n_tasks",
        "n_resources",
        "order",
        "planned_res",
        "plan_dur",
        "dur",
        "transfer",
        "preds",
        "feasible",
        "res_rank",
        "planned_makespan",
    )

    def __init__(
        self, schedule: Schedule, problem: CompiledProblem | None = None
    ) -> None:
        if problem is None:
            problem = compile_problem(schedule.workflow, schedule.continuum)
        cw, cc = problem.cw, problem.cc
        tindex = cw.index
        rindex = cc.index

        self.schedule = schedule
        self.n_tasks = cw.n_tasks
        self.n_resources = cc.n_resources
        #: Plan start order as task indices (a valid topological order —
        #: the schedule validated that successors start after predecessors).
        self.order = [tindex[p.task] for p in schedule.placements]
        self.planned_res = [0] * self.n_tasks
        self.plan_dur = [0.0] * self.n_tasks
        for key in cw.keys:
            placement = schedule[key]
            self.planned_res[tindex[key]] = rindex[placement.resource]
            self.plan_dur[tindex[key]] = placement.duration

        # Pairing-level tables, shared via the compiled problem's cached
        # list views (dur[task][resource] == Resource.execution_time;
        # transfer[task][src][dst] == Continuum.transfer_time — the
        # diagonal is free and a zero output costs latency only, the
        # same IEEE division either way).
        self.dur = problem.dur_lists()
        self.transfer = problem.transfer_lists()
        self.preds = problem.pred_id_lists()
        self.feasible = problem.feasible_id_lists()
        # simulate_with_failures breaks earliest-finish ties on the
        # resource *key string*; ranks reproduce that order on ints.
        self.res_rank = cc.res_rank.tolist()
        self.planned_makespan = schedule.makespan


def replicate_once(
    context: SimulationContext,
    *,
    mtbf: float | None = None,
    repair_time: float = 0.0,
    policy: str = "restart",
    jitter: float = 0.0,
    max_attempts: int = 50,
    rng: np.random.Generator,
) -> ReplicationResult:
    """Run one replication against a precomputed context.

    With ``mtbf=None`` this is the jitter-only replay (bit-identical
    makespan to :func:`~repro.continuum.simulate.simulate_schedule`);
    with a finite ``mtbf`` it is the failure replay (bit-identical to
    :func:`~repro.continuum.failures.simulate_with_failures` when
    ``jitter == 0``).  Draw order: the per-task jitter factors first
    (task insertion order), then the per-resource initial failure times
    (continuum key order), then one exponential per consumed failure.
    """
    _validate_cell_params(
        mtbf=mtbf, repair_time=repair_time, policy=policy, jitter=jitter,
        max_attempts=max_attempts,
    )
    return _replicate(
        context, mtbf, repair_time, policy == "migrate", jitter,
        max_attempts, rng,
    )


def _validate_cell_params(
    *,
    mtbf: float | None,
    repair_time: float,
    policy: str,
    jitter: float,
    max_attempts: int,
) -> None:
    if mtbf is not None and not mtbf > 0:
        raise MonteCarloError("mtbf must be > 0 (or None for no failures)")
    if repair_time < 0:
        raise MonteCarloError("repair_time must be >= 0")
    if policy not in ("restart", "migrate"):
        raise MonteCarloError(f"unknown policy {policy!r}")
    if jitter < 0:
        raise MonteCarloError("jitter must be >= 0")
    if max_attempts < 1:
        raise MonteCarloError("max_attempts must be >= 1")


def _replicate(
    ctx: SimulationContext,
    mtbf: float | None,
    repair_time: float,
    migrate: bool,
    jitter: float,
    max_attempts: int,
    rng: np.random.Generator,
) -> ReplicationResult:
    """The replication hot loop: flat lists, integer indices, local names."""
    n_tasks = ctx.n_tasks
    order = ctx.order
    planned_res = ctx.planned_res
    preds = ctx.preds
    dur_table = ctx.dur
    plan_dur = ctx.plan_dur
    transfer = ctx.transfer
    feasible = ctx.feasible
    res_rank = ctx.res_rank
    exponential = rng.exponential

    factors = (
        rng.lognormal(mean=0.0, sigma=jitter, size=n_tasks).tolist()
        if jitter
        else None
    )
    clocked = mtbf is not None
    next_failure = (
        exponential(mtbf, size=ctx.n_resources).tolist() if clocked else None
    )
    resource_free = [0.0] * ctx.n_resources
    fin_time = [0.0] * n_tasks
    fin_res = list(planned_res)
    n_failures = 0
    lost_work = 0.0

    for ti in order:
        res = planned_res[ti]
        task_preds = preds[ti]
        # The jitter-only path multiplies the *placement* duration, like
        # simulate_schedule; the failure replay recomputes work/speed,
        # like simulate_with_failures (equal up to float noise).
        durations = dur_table[ti]
        attempts = 0
        while True:
            if attempts >= max_attempts:
                raise ContinuumError(
                    f"task #{ti} failed {attempts} times; "
                    f"mtbf={mtbf} is too small for its duration"
                )
            duration = plan_dur[ti] if not clocked else durations[res]
            if factors is not None:
                duration *= factors[ti]
            ready = 0.0
            for p in task_preds:
                arrival = fin_time[p] + transfer[p][fin_res[p]][res]
                if arrival > ready:
                    ready = arrival
            start = resource_free[res]
            if ready > start:
                start = ready
            if not clocked:
                finish = start + duration
                resource_free[res] = finish
                fin_time[ti] = finish
                fin_res[ti] = res
                break
            # Idle failures are harmless reboots: skip any that elapsed
            # before the attempt starts (_FailureClock.advance_past).
            failure = next_failure[res]
            while failure < start:
                failure += float(exponential(mtbf))
            if failure >= start + duration:
                next_failure[res] = failure
                finish = start + duration
                resource_free[res] = finish
                fin_time[ti] = finish
                fin_res[ti] = res
                break
            # The attempt dies at the failure instant.
            attempts += 1
            n_failures += 1
            lost_work += failure - start
            next_failure[res] = failure + float(exponential(mtbf))
            resource_free[res] = failure + repair_time
            if migrate:
                best: tuple[float, int] | None = None
                best_res = res
                for r in feasible[ti]:
                    retry_ready = 0.0
                    for p in task_preds:
                        arrival = fin_time[p] + transfer[p][fin_res[p]][r]
                        if arrival > retry_ready:
                            retry_ready = arrival
                    retry_start = resource_free[r]
                    if retry_ready > retry_start:
                        retry_start = retry_ready
                    candidate = (retry_start + durations[r], res_rank[r])
                    if best is None or candidate < best:
                        best = candidate
                        best_res = r
                res = best_res

    makespan = max(fin_time)
    migrations = 0
    for ti in range(n_tasks):
        if fin_res[ti] != planned_res[ti]:
            migrations += 1
    return ReplicationResult(
        makespan=makespan,
        slowdown=makespan / ctx.planned_makespan,
        retries=n_failures,
        migrations=migrations,
        lost_work=lost_work,
    )


# -- streaming aggregation ----------------------------------------------------


class RunningStat:
    """Welford mean/variance accumulator with min/max, O(1) memory.

    The fold order is fixed by the caller (replication order), which pins
    the floating-point result bit-for-bit across worker counts.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class FixedHistogram:
    """Fixed-bucket histogram with interpolated quantiles, O(buckets) memory.

    Values are clamped into ``[lo, hi]`` — quantile resolution is bounded
    by the bucket width (tails saturate at the edges), while the exact
    moments live in the paired :class:`RunningStat`.  Buckets are linear
    or geometric; counts are integers, so the histogram is trivially
    order-independent.
    """

    __slots__ = ("edges", "counts", "_log")

    def __init__(
        self, lo: float, hi: float, n_buckets: int, *, log: bool = False
    ) -> None:
        if not hi > lo:
            raise MonteCarloError("histogram needs hi > lo")
        if n_buckets < 1:
            raise MonteCarloError("histogram needs >= 1 bucket")
        if log and lo <= 0:
            raise MonteCarloError("log-spaced histogram needs lo > 0")
        self._log = log
        if log:
            self.edges = np.geomspace(lo, hi, n_buckets + 1)
        else:
            self.edges = np.linspace(lo, hi, n_buckets + 1)
        self.counts = np.zeros(n_buckets, dtype=np.int64)

    def add(self, value: float) -> None:
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        if index < 0:
            index = 0
        elif index >= self.counts.size:
            index = self.counts.size - 1
        self.counts[index] += 1

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile estimate from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise MonteCarloError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            raise MonteCarloError("quantile of an empty histogram")
        target = q * total
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, target, side="left"))
        if index >= self.counts.size:
            index = self.counts.size - 1
        below = float(cumulative[index - 1]) if index > 0 else 0.0
        inside = float(self.counts[index])
        fraction = (target - below) / inside if inside else 0.0
        lo, hi = float(self.edges[index]), float(self.edges[index + 1])
        return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """One metric's distribution over a grid cell's replications."""

    count: int
    mean: float
    std: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float

    def to_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricSummary":
        return cls(
            count=int(payload["count"]),
            mean=float(payload["mean"]),
            std=float(payload["std"]),
            min=float(payload["min"]),
            max=float(payload["max"]),
            p50=float(payload["p50"]),
            p90=float(payload["p90"]),
            p99=float(payload["p99"]),
        )


class _CellAggregate:
    """Streams one cell's replications into stats + histograms."""

    def __init__(self, planned_makespan: float) -> None:
        self.stats = {name: RunningStat() for name in METRIC_NAMES}
        span = max(planned_makespan, 1e-12)
        self.histograms = {
            # Slowdown >= 1 under pure failures; jitter can shrink it, so
            # the geometric range opens well below 1.
            "slowdown": FixedHistogram(0.25, 256.0, 128, log=True),
            "makespan": FixedHistogram(
                0.25 * span, 256.0 * span, 128, log=True
            ),
            "retries": FixedHistogram(0.0, 256.0, 256),
            "migrations": FixedHistogram(0.0, 256.0, 256),
            "lost_work": FixedHistogram(0.0, 64.0 * span, 256),
        }

    def add(self, values: tuple[float, float, int, int, float]) -> None:
        for name, value in zip(METRIC_NAMES, values):
            self.stats[name].add(value)
            self.histograms[name].add(value)

    def summaries(self) -> dict[str, MetricSummary]:
        out: dict[str, MetricSummary] = {}
        for name in METRIC_NAMES:
            stat = self.stats[name]
            histogram = self.histograms[name]
            out[name] = MetricSummary(
                count=stat.count,
                mean=stat.mean,
                std=stat.std,
                min=stat.min,
                max=stat.max,
                p50=histogram.quantile(0.50),
                p90=histogram.quantile(0.90),
                p99=histogram.quantile(0.99),
            )
        return out


# -- grid cells ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CellSpec:
    """One grid cell: a workflow × scheduler × failure/jitter condition."""

    workflow: str
    scheduler: str
    mtbf: float | None
    jitter: float
    policy: str

    @property
    def cell_id(self) -> str:
        mtbf = "none" if self.mtbf is None else f"{self.mtbf:g}"
        return (
            f"{self.workflow}|{self.scheduler}|mtbf={mtbf}"
            f"|jitter={self.jitter:g}|policy={self.policy}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workflow": self.workflow,
            "scheduler": self.scheduler,
            "mtbf": self.mtbf,
            "jitter": self.jitter,
            "policy": self.policy,
        }


@dataclass(frozen=True, slots=True)
class CellStats:
    """Aggregated outcome of one grid cell."""

    cell: CellSpec
    replications: int
    planned_makespan: float
    metrics: dict[str, MetricSummary]

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell": self.cell.to_dict(),
            "cell_id": self.cell.cell_id,
            "replications": self.replications,
            "planned_makespan": self.planned_makespan,
            "metrics": {
                name: summary.to_dict()
                for name, summary in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellStats":
        cell = payload["cell"]
        return cls(
            cell=CellSpec(
                workflow=str(cell["workflow"]),
                scheduler=str(cell["scheduler"]),
                mtbf=None if cell["mtbf"] is None else float(cell["mtbf"]),
                jitter=float(cell["jitter"]),
                policy=str(cell["policy"]),
            ),
            replications=int(payload["replications"]),
            planned_makespan=float(payload["planned_makespan"]),
            metrics={
                str(name): MetricSummary.from_dict(summary)
                for name, summary in payload["metrics"].items()
            },
        )


# -- sweep specification --------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A full Monte-Carlo experiment grid.

    The grid is the cross product ``workflows × schedulers × mtbfs ×
    jitters × policies``; every cell runs ``replications`` seeded
    replications.  ``chunk_size`` shapes the parallel fan-out only — it
    can never change results (see the module determinism contract).
    """

    workflows: tuple[Workflow, ...]
    continuum: Continuum
    schedulers: tuple[str, ...] = ("heft",)
    mtbfs: tuple[float | None, ...] = (None,)
    jitters: tuple[float, ...] = (0.0,)
    policies: tuple[str, ...] = ("restart",)
    repair_time: float = 1.0
    max_attempts: int = 50
    replications: int = 100
    seed: int = 0
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if not self.workflows:
            raise MonteCarloError("sweep needs at least one workflow")
        names = [w.name for w in self.workflows]
        if len(set(names)) != len(names):
            raise MonteCarloError("workflow names must be unique in a sweep")
        if not self.schedulers:
            raise MonteCarloError("sweep needs at least one scheduler")
        for name in self.schedulers:
            if name not in SCHEDULERS:
                raise MonteCarloError(
                    f"unknown scheduler {name!r}; "
                    f"choose from {sorted(SCHEDULERS)}"
                )
        if not self.mtbfs or not self.jitters or not self.policies:
            raise MonteCarloError("mtbfs, jitters, and policies must be non-empty")
        if self.replications < 1:
            raise MonteCarloError("replications must be >= 1")
        if self.chunk_size < 1:
            raise MonteCarloError("chunk_size must be >= 1")
        for mtbf in self.mtbfs:
            for jitter in self.jitters:
                for policy in self.policies:
                    _validate_cell_params(
                        mtbf=mtbf, repair_time=self.repair_time,
                        policy=policy, jitter=jitter,
                        max_attempts=self.max_attempts,
                    )

    def cells(self) -> tuple[CellSpec, ...]:
        """The grid cells in deterministic enumeration order."""
        return tuple(
            CellSpec(
                workflow=workflow.name, scheduler=scheduler,
                mtbf=mtbf, jitter=jitter, policy=policy,
            )
            for workflow in self.workflows
            for scheduler in self.schedulers
            for mtbf in self.mtbfs
            for jitter in self.jitters
            for policy in self.policies
        )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`run_sweep`.

    ``computed``/``cached`` partition the grid's cell ids by whether
    their replications ran in this call or came from the artifact cache;
    ``n_replications_run`` counts the simulations actually executed.
    """

    cells: tuple[CellStats, ...]
    computed: tuple[str, ...]
    cached: tuple[str, ...]
    n_replications_run: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine_version": ENGINE_VERSION,
            "cells": [cell.to_dict() for cell in self.cells],
            "computed": list(self.computed),
            "cached": list(self.cached),
            "n_replications_run": self.n_replications_run,
        }


# -- request construction ---------------------------------------------------------


def parse_grid(text: str) -> dict[str, tuple]:
    """Parse a grid axis spec into :class:`SweepSpec` keyword values.

    The format is shared by ``repro sweep --grid`` and the serve layer's
    ``POST /sweeps`` body: ``"key=v1,v2;key=v1"`` with keys ``scheduler``
    (heft|energy|round_robin), ``mtbf`` (floats or ``none``), ``jitter``
    (floats), and ``policy`` (restart|migrate); omitted axes keep the
    single-cell defaults.

    >>> parse_grid("scheduler=heft,energy;mtbf=50")["schedulers"]
    ('heft', 'energy')
    """
    axes: dict[str, tuple] = {
        "schedulers": ("heft",),
        "mtbfs": (None,),
        "jitters": (0.0,),
        "policies": ("restart",),
    }
    plural = {
        "scheduler": "schedulers",
        "mtbf": "mtbfs",
        "jitter": "jitters",
        "policy": "policies",
    }
    for entry in filter(None, (part.strip() for part in text.split(";"))):
        key, sep, raw = entry.partition("=")
        key = key.strip().lower()
        if not sep or key not in plural:
            raise MonteCarloError(
                f"bad grid entry {entry!r}; expected "
                "scheduler=.../mtbf=.../jitter=.../policy=..."
            )
        values = [v.strip() for v in raw.split(",") if v.strip()]
        if not values:
            raise MonteCarloError(f"grid axis {key!r} has no values")
        if key in ("mtbf", "jitter"):
            try:
                axes[plural[key]] = tuple(
                    None if key == "mtbf" and v.lower() == "none" else float(v)
                    for v in values
                )
            except ValueError:
                raise MonteCarloError(
                    f"grid axis {key!r} needs numeric values, got {raw!r}"
                ) from None
        else:
            axes[plural[key]] = tuple(values)
    return axes


def build_sweep_spec(
    *,
    grid: str = "scheduler=heft",
    fleet: int = 3,
    replications: int = 100,
    seed: int = 0,
) -> SweepSpec:
    """The canonical :class:`SweepSpec` for a sweep *request*.

    Both front doors — ``repro sweep`` and the serve layer's
    ``POST /sweeps`` — build their spec through this one function, so an
    HTTP-submitted sweep is *bit-identical* (same fleet, same continuum,
    same per-cell entropy, hence the same cache keys and ledger record)
    to the CLI sweep with the same arguments.
    """
    from repro.continuum.resources import default_continuum
    from repro.data import synthetic_workflows

    if fleet < 1:
        raise MonteCarloError("fleet must be >= 1")
    return SweepSpec(
        workflows=synthetic_workflows(fleet, seed=seed),
        continuum=default_continuum(seed=seed),
        replications=replications,
        seed=seed,
        **parse_grid(grid),
    )


# -- fingerprints and cache keys -------------------------------------------------


def _workflow_fingerprint(workflow: Workflow) -> str:
    from repro.continuum.serialize import workflow_to_dict
    from repro.pipeline.cache import stable_digest

    return stable_digest(workflow_to_dict(workflow))


def _continuum_fingerprint(continuum: Continuum) -> str:
    from repro.continuum.serialize import continuum_to_dict
    from repro.pipeline.cache import stable_digest

    return stable_digest(continuum_to_dict(continuum))


def _cell_identity(spec: SweepSpec, cell: CellSpec,
                   fingerprints: Mapping[str, str],
                   continuum_fp: str) -> dict[str, Any]:
    """Everything that pins a cell's random streams (not the rep count)."""
    return {
        "engine": ENGINE_VERSION,
        "seed": spec.seed,
        "workflow": fingerprints[cell.workflow],
        "continuum": continuum_fp,
        "scheduler": cell.scheduler,
        "mtbf": cell.mtbf,
        "jitter": cell.jitter,
        "policy": cell.policy,
        "repair_time": spec.repair_time,
        "max_attempts": spec.max_attempts,
    }


def _cell_entropy(identity: Mapping[str, Any]) -> int:
    """The SeedSequence entropy word a cell's replications derive from.

    Content-addressed: a cell's streams depend only on its own identity,
    never on its position in the grid, so identical cells in different
    sweeps produce identical replications (and cache hits are sound).
    """
    from repro.pipeline.cache import stable_digest

    return int(stable_digest(identity)[:32], 16)


def _replication_rng(entropy: int, rep_index: int) -> np.random.Generator:
    """The dedicated generator for replication *rep_index* of a cell."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(rep_index,))
    )


# -- worker protocol --------------------------------------------------------------


@dataclass(frozen=True)
class _CellTask:
    """One cell's work order, as shipped to (or run by) a worker."""

    schedule_index: int
    mtbf: float | None
    jitter: float
    policy: str
    repair_time: float
    max_attempts: int
    entropy: int


# Worker-global state, set once per process by the pool initializer; the
# serial fallback uses the same two functions in-process.
_WORKER_SCHEDULES: list[Schedule] = []
_WORKER_TASKS: list[_CellTask] = []
_WORKER_CONTEXTS: dict[int, SimulationContext] = {}
# One CompiledProblem per workflow × continuum pairing.  The pool ships
# all schedules as one payload, so schedules of the same workflow
# unpickle sharing one Workflow/Continuum object and identity keys are
# stable within a worker.
_WORKER_PROBLEMS: dict[tuple[int, int], CompiledProblem] = {}


def _worker_init(schedules: list[Schedule], tasks: list[_CellTask]) -> None:
    global _WORKER_SCHEDULES, _WORKER_TASKS, _WORKER_CONTEXTS, _WORKER_PROBLEMS
    _WORKER_SCHEDULES = schedules
    _WORKER_TASKS = tasks
    _WORKER_CONTEXTS = {}
    _WORKER_PROBLEMS = {}


def _worker_chunk(
    args: tuple[int, int, int],
) -> list[tuple[float, float, int, int, float]]:
    """Run replications [start, start+count) of one cell task.

    Returns raw metric tuples in replication order; every replication
    owns a spawned generator, so execution placement is irrelevant.
    """
    task_index, start, count = args
    task = _WORKER_TASKS[task_index]
    context = _WORKER_CONTEXTS.get(task.schedule_index)
    if context is None:
        schedule = _WORKER_SCHEDULES[task.schedule_index]
        pairing = (id(schedule.workflow), id(schedule.continuum))
        problem = _WORKER_PROBLEMS.get(pairing)
        if problem is None:
            problem = compile_problem(schedule.workflow, schedule.continuum)
            _WORKER_PROBLEMS[pairing] = problem
        context = SimulationContext(schedule, problem)
        _WORKER_CONTEXTS[task.schedule_index] = context
    migrate = task.policy == "migrate"
    return [
        _replicate(
            context, task.mtbf, task.repair_time, migrate, task.jitter,
            task.max_attempts, _replication_rng(task.entropy, rep),
        ).as_tuple()
        for rep in range(start, start + count)
    ]


# -- the sweep driver --------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    cache=None,
    telemetry=None,
    registry=None,
) -> SweepResult:
    """Run the full Monte-Carlo grid of *spec*.

    Parameters
    ----------
    spec:
        The experiment grid (see :class:`SweepSpec`).
    workers:
        Process-pool size for the replication fan-out.  ``0`` or ``1``
        runs the deterministic serial path in-process; results are
        bit-identical either way.
    cache:
        Optional :class:`~repro.pipeline.cache.ArtifactCache`.  Grid
        cells are content-addressed (engine version, seed, workflow and
        continuum fingerprints, cell condition, replication count): a hit
        skips every simulation of that cell.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; when bound the
        sweep is traced (``sweep`` span with per-scheduler ``schedule.*``
        child spans), counted (``mc.replications``, ``mc.cells_computed``,
        ``mc.cells_cached``), and logged (``sweep.finish``).
    registry:
        Optional :class:`~repro.obs.RunRegistry`; when given, the sweep
        appends a ``mc-sweep`` :class:`~repro.obs.RunRecord` (cell
        digests, replication counters) to the run ledger.

    Returns
    -------
    SweepResult
        Per-cell streaming statistics plus the computed/cached split.
    """
    if workers < 0:
        raise MonteCarloError("workers must be >= 0")
    tel = ensure(telemetry)
    if not tel.enabled:
        return _run_sweep(spec, workers, cache, tel, registry)
    cells = spec.cells()
    with tel.tracer.span(
        "sweep",
        cells=len(cells),
        replications=spec.replications,
        workers=workers,
    ) as span:
        result = _run_sweep(spec, workers, cache, tel, registry)
        span.tags.update(
            computed=len(result.computed),
            cached=len(result.cached),
        )
        tel.log.info(
            "sweep.finish",
            cells=len(result.cells),
            computed=len(result.computed),
            cached=len(result.cached),
            replications_run=result.n_replications_run,
        )
    return result


def _run_sweep(
    spec: SweepSpec, workers: int, cache, tel, registry
) -> SweepResult:
    from repro.pipeline.cache import stable_digest

    cells = spec.cells()
    workflow_of = {w.name: w for w in spec.workflows}
    fingerprints = {
        w.name: _workflow_fingerprint(w) for w in spec.workflows
    }
    continuum_fp = _continuum_fingerprint(spec.continuum)

    # Content-addressed cache lookup per cell.
    identities = {
        cell.cell_id: _cell_identity(spec, cell, fingerprints, continuum_fp)
        for cell in cells
    }
    cache_keys = {
        cell.cell_id: stable_digest(
            "montecarlo-cell",
            identities[cell.cell_id],
            spec.replications,
        )
        for cell in cells
    }
    stats_of: dict[str, CellStats] = {}
    cached_ids: list[str] = []
    misses: list[CellSpec] = []
    for cell in cells:
        payload = (
            cache.get(cache_keys[cell.cell_id]) if cache is not None else None
        )
        if payload is not None:
            stats_of[cell.cell_id] = CellStats.from_dict(payload)
            cached_ids.append(cell.cell_id)
        else:
            misses.append(cell)

    replications_run = 0
    if misses:
        # Schedule once per (workflow, scheduler) pair actually needed;
        # compile each workflow × continuum pairing exactly once and
        # share it across every scheduler placing on it.
        schedules: list[Schedule] = []
        schedule_index: dict[tuple[str, str], int] = {}
        problems: dict[str, CompiledProblem] = {}
        for cell in misses:
            pair = (cell.workflow, cell.scheduler)
            if pair not in schedule_index:
                scheduler = SCHEDULERS[cell.scheduler]()
                problem = problems.get(cell.workflow)
                if problem is None:
                    problem = compile_problem(
                        workflow_of[cell.workflow], spec.continuum
                    )
                    problems[cell.workflow] = problem
                schedule_index[pair] = len(schedules)
                schedules.append(
                    scheduler.schedule(
                        workflow_of[cell.workflow], spec.continuum,
                        telemetry=tel if tel.enabled else None,
                        problem=problem,
                    )
                )

        tasks = [
            _CellTask(
                schedule_index=schedule_index[(cell.workflow, cell.scheduler)],
                mtbf=cell.mtbf,
                jitter=cell.jitter,
                policy=cell.policy,
                repair_time=spec.repair_time,
                max_attempts=spec.max_attempts,
                entropy=_cell_entropy(identities[cell.cell_id]),
            )
            for cell in misses
        ]
        # Chunked fan-out: (task, start, count) triples in deterministic
        # order; the merge below folds chunk results back in replication
        # order per cell, so chunking never shows in the numbers.
        chunks: list[tuple[int, int, int]] = []
        for task_index in range(len(tasks)):
            for start in range(0, spec.replications, spec.chunk_size):
                count = min(spec.chunk_size, spec.replications - start)
                chunks.append((task_index, start, count))

        if workers > 1:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(schedules, tasks),
            ) as pool:
                chunk_results = pool.map(_worker_chunk, chunks)
                aggregates = _fold(misses, schedules, schedule_index,
                                   chunks, chunk_results)
        else:
            _worker_init(schedules, tasks)
            chunk_results = map(_worker_chunk, chunks)
            aggregates = _fold(misses, schedules, schedule_index,
                               chunks, chunk_results)

        for cell in misses:
            aggregate, planned = aggregates[cell.cell_id]
            stats = CellStats(
                cell=cell,
                replications=spec.replications,
                planned_makespan=planned,
                metrics=aggregate.summaries(),
            )
            stats_of[cell.cell_id] = stats
            replications_run += spec.replications
            if cache is not None:
                cache.store(cache_keys[cell.cell_id], stats.to_dict())

    result = SweepResult(
        cells=tuple(stats_of[cell.cell_id] for cell in cells),
        computed=tuple(cell.cell_id for cell in misses),
        cached=tuple(cached_ids),
        n_replications_run=replications_run,
    )
    if tel.enabled:
        metrics = tel.metrics
        metrics.counter("mc.replications").inc(replications_run)
        metrics.counter("mc.cells_computed").inc(len(result.computed))
        metrics.counter("mc.cells_cached").inc(len(result.cached))
    if registry is not None:
        from repro.obs import build_sweep_record

        registry.record(
            build_sweep_record(
                result,
                telemetry=tel if tel.enabled else None,
                config_digest=stable_digest(
                    sorted(cache_keys.values())
                ),
                meta={
                    "seed": spec.seed,
                    "replications": spec.replications,
                    "workers": workers,
                },
            )
        )
    return result


def _fold(
    misses: Sequence[CellSpec],
    schedules: Sequence[Schedule],
    schedule_index: Mapping[tuple[str, str], int],
    chunks: Sequence[tuple[int, int, int]],
    chunk_results,
) -> dict[str, tuple[_CellAggregate, float]]:
    """Merge chunk results into per-cell aggregates, in replication order.

    ``chunk_results`` arrives in submission order (``Executor.map``
    preserves it), and chunks were submitted cell-major / start-minor,
    so simply folding in arrival order reproduces the serial fold.
    """
    aggregates: dict[str, tuple[_CellAggregate, float]] = {}
    for cell in misses:
        planned = schedules[
            schedule_index[(cell.workflow, cell.scheduler)]
        ].makespan
        aggregates[cell.cell_id] = (_CellAggregate(planned), planned)
    for (task_index, _, _), values in zip(chunks, chunk_results):
        aggregate, _ = aggregates[misses[task_index].cell_id]
        for row in values:
            aggregate.add(row)
    return aggregates
