"""Discrete-event execution of scheduled workflows.

A :class:`Schedule` is a *plan*; the simulator *executes* it under runtime
conditions the plan did not foresee — per-task speed jitter and transient
resource slowdowns — and reports what actually happened.  This is the
standard way to stress a static scheduler (plans built from nominal speeds
meet a noisy reality) and backs the robustness benchmark.

The engine is a classic event-driven simulator: a heap of task-completion
events, tasks becoming ready when all inputs have arrived, resources
processing one task at a time in plan order.  The event loop runs on
integer ids from the compiled problem (:mod:`repro.continuum.compile`):
per-edge transfer times are one vectorized gather from the latency /
bandwidth tables (IEEE-identical to ``Continuum.transfer_time``), and the
per-task jitter factors are a single batched ``rng.lognormal`` draw —
bit-identical to the former per-task scalar draws, since NumPy's
Generator consumes the stream identically either way.  The original
object-keyed loop is preserved as :func:`_simulate_reference` for the
parity suite.

Passing ``telemetry=`` wraps the run in a ``simulate`` span, counts
``sim.events`` / ``sim.tasks``, and emits a ``sim.finish`` log event —
the metrics snapshot :func:`repro.obs.build_simulation_record` lifts
into the run ledger.  The default (``None``) is the zero-overhead null
telemetry; event-loop bookkeeping stays local either way and is flushed
once at the end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.continuum.compile import CompiledProblem, compile_problem
from repro.continuum.resources import Continuum
from repro.continuum.scheduling import Schedule, TaskPlacement
from repro.continuum.workflow import Workflow
from repro.errors import ContinuumError
from repro.telemetry import ensure

__all__ = ["ExecutionTrace", "simulate_schedule"]


@dataclass(frozen=True, slots=True)
class ExecutionTrace:
    """What actually happened when a schedule was executed.

    Attributes
    ----------
    placements:
        Realized per-task timing (same resources as the plan, shifted
        times).
    makespan:
        Realized completion time.
    planned_makespan:
        The schedule's nominal makespan.
    slowdown:
        ``makespan / planned_makespan``.
    busy_energy:
        Realized busy energy in joules.
    """

    placements: tuple[TaskPlacement, ...]
    makespan: float
    planned_makespan: float
    busy_energy: float

    @property
    def slowdown(self) -> float:
        return self.makespan / self.planned_makespan


def simulate_schedule(
    schedule: Schedule,
    *,
    jitter: float = 0.0,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    telemetry=None,
    problem: CompiledProblem | None = None,
) -> ExecutionTrace:
    """Execute *schedule* event-by-event with multiplicative duration jitter.

    Parameters
    ----------
    schedule:
        The plan to execute (placements fix the task→resource mapping and
        the per-resource task order).
    jitter:
        Each task's nominal duration is multiplied by a lognormal factor
        with sigma=*jitter* (0 reproduces the plan exactly, up to float
        noise).
    seed, rng:
        Randomness control (provide one, not both).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when bound the run is
        traced (``simulate`` span), counted (``sim.events``, ``sim.tasks``)
        and logged (``sim.finish``).
    problem:
        Optional precompiled :class:`~repro.continuum.compile.CompiledProblem`
        for the schedule's workflow × continuum pairing, so repeated
        executions of plans on the same pairing skip recompilation.

    Returns
    -------
    ExecutionTrace
        Realized timings, makespan, and energy.
    """
    if jitter < 0:
        raise ContinuumError("jitter must be >= 0")
    if rng is not None and seed is not None:
        raise ContinuumError("provide either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    tel = ensure(telemetry)
    if not tel.enabled:
        return _simulate_counted(schedule, jitter, rng, problem)[0]
    with tel.tracer.span(
        "simulate", tasks=len(schedule.workflow), jitter=jitter
    ) as span:
        trace, n_events = _simulate_counted(schedule, jitter, rng, problem)
        span.tags.update(makespan=trace.makespan, events=n_events)
        tel.metrics.counter("sim.events").inc(n_events)
        tel.metrics.counter("sim.tasks").inc(len(trace.placements))
        tel.log.info(
            "sim.finish",
            tasks=len(trace.placements),
            events=n_events,
            makespan=trace.makespan,
            slowdown=trace.slowdown,
        )
    return trace


def _simulate_counted(
    schedule: Schedule,
    jitter: float,
    rng: np.random.Generator,
    problem: CompiledProblem | None = None,
) -> tuple[ExecutionTrace, int]:
    """Integer-id event loop; bit-identical to :func:`_simulate_reference`."""
    if problem is None:
        problem = compile_problem(schedule.workflow, schedule.continuum)
    cw, cc = problem.cw, problem.cc
    n = cw.n_tasks
    n_res = cc.n_resources
    task_keys = cw.keys
    res_keys = cc.keys

    res_of = np.empty(n, dtype=np.intp)
    nominal = np.empty(n, dtype=np.float64)
    rindex = cc.index
    for i, key in enumerate(task_keys):
        p = schedule[key]
        res_of[i] = rindex[p.resource]
        nominal[i] = p.finish - p.start

    # One batched draw replaces the former per-task scalar loop; NumPy's
    # Generator produces the identical stream, so traces are unchanged
    # bit-for-bit for any jitter (and exactly the plan for jitter=0).
    if jitter:
        durations = (nominal * rng.lognormal(mean=0.0, sigma=jitter, size=n)).tolist()
    else:
        durations = nominal.tolist()

    # Per-edge transfer times in one gather, IEEE-identical to
    # Continuum.transfer_time (latency diagonal is 0, bandwidth diagonal
    # is inf, so same-resource and zero-size cases fall out exactly).
    succ_indptr, succ_ids = cw.succ_indptr, cw.succ_ids
    if succ_ids.size:
        src = np.repeat(np.arange(n, dtype=np.intp), np.diff(succ_indptr))
        sr, dr = res_of[src], res_of[succ_ids]
        edge_transfer = (
            cc.latency[sr, dr] + cw.output_size[src] / cc.bandwidth[sr, dr]
        ).tolist()
    else:
        edge_transfer = []
    succ_list: list[list[int]] = cw.succ_lists()

    # Per-resource task order: exactly as planned.
    queue_of: list[list[int]] = [[] for _ in range(n_res)]
    tindex = cw.index
    for placement in schedule.placements:  # sorted by planned start
        queue_of[rindex[placement.resource]].append(tindex[placement.task])

    remaining_inputs = np.diff(cw.pred_indptr).tolist()
    data_ready = [0.0] * n
    resource_free = [0.0] * n_res
    next_in_queue = [0] * n_res

    start_of = [0.0] * n
    finish_of = [0.0] * n
    started: list[int] = []  # task ids in start order (for energy parity)
    # Event heap: (time, sequence, task) for completions.  `sequence` breaks
    # ties deterministically.
    heap: list[tuple[float, int, int]] = []
    sequence = 0

    def try_start(res_id: int, now: float) -> None:
        """Start the next planned task on *res_id* if it is ready."""
        nonlocal sequence
        queue = queue_of[res_id]
        idx = next_in_queue[res_id]
        if idx >= len(queue):
            return
        task_id = queue[idx]
        if remaining_inputs[task_id] > 0:
            return
        start = max(now, resource_free[res_id], data_ready[task_id])
        finish = start + durations[task_id]
        next_in_queue[res_id] += 1
        resource_free[res_id] = finish
        start_of[task_id] = start
        finish_of[task_id] = finish
        started.append(task_id)
        sequence += 1
        heapq.heappush(heap, (finish, sequence, task_id))

    for res_id in range(n_res):
        try_start(res_id, 0.0)

    n_events = 0
    res_list = res_of.tolist()
    while heap:
        n_events += 1
        now, _, task_id = heapq.heappop(heap)
        lo = int(succ_indptr[task_id])
        succs = succ_list[task_id]
        for k, succ in enumerate(succs, start=lo):
            arrival = now + edge_transfer[k]
            if arrival > data_ready[succ]:
                data_ready[succ] = arrival
            remaining_inputs[succ] -= 1
        # The finished resource may start its next task; successors' hosts
        # may have been waiting on the data that just arrived.
        try_start(res_list[task_id], now)
        for succ in succs:
            try_start(res_list[succ], now)

    if len(started) != n:
        ran = set(started)
        unrun = sorted(task_keys[i] for i in range(n) if i not in ran)
        raise ContinuumError(
            f"simulation deadlocked; tasks never ran: {unrun[:5]}"
        )

    makespan = max(finish_of)
    # Summed in start order with Python floats — the same order and
    # accumulator the reference's dict-of-finished iteration used.
    busy_power = cc.busy_power.tolist()
    busy_energy = sum(
        busy_power[res_list[t]] * (finish_of[t] - start_of[t]) for t in started
    )
    placements = tuple(
        sorted(
            (
                TaskPlacement(
                    task_keys[t], res_keys[res_list[t]], start_of[t], finish_of[t]
                )
                for t in range(n)
            ),
            key=lambda p: (p.start, p.task),
        )
    )
    trace = ExecutionTrace(
        placements=placements,
        makespan=float(makespan),
        planned_makespan=schedule.makespan,
        busy_energy=float(busy_energy),
    )
    return trace, n_events


def _simulate_reference(
    schedule: Schedule, jitter: float, rng: np.random.Generator
) -> tuple[ExecutionTrace, int]:
    """The original object-keyed event loop (parity reference)."""
    workflow: Workflow = schedule.workflow
    continuum: Continuum = schedule.continuum

    # Per-resource task order: exactly as planned.
    queue_of: dict[str, list[str]] = {key: [] for key in continuum.keys}
    for placement in schedule.placements:  # sorted by planned start
        queue_of[placement.resource].append(placement.task)

    durations: dict[str, float] = {}
    for task in workflow:
        nominal = schedule[task.key].duration
        factor = float(rng.lognormal(mean=0.0, sigma=jitter)) if jitter else 1.0
        durations[task.key] = nominal * factor

    remaining_inputs = {
        key: len(workflow.predecessors(key)) for key in workflow.task_keys
    }
    data_ready: dict[str, float] = {key: 0.0 for key in workflow.task_keys}
    resource_free: dict[str, float] = {key: 0.0 for key in continuum.keys}
    next_in_queue: dict[str, int] = {key: 0 for key in continuum.keys}

    finished: dict[str, TaskPlacement] = {}
    # Event heap: (time, sequence, task) for completions.  `sequence` breaks
    # ties deterministically.
    heap: list[tuple[float, int, str]] = []
    sequence = 0

    def try_start(resource_key: str, now: float) -> None:
        """Start the next planned task on *resource_key* if it is ready."""
        nonlocal sequence
        queue = queue_of[resource_key]
        idx = next_in_queue[resource_key]
        if idx >= len(queue):
            return
        task_key = queue[idx]
        if remaining_inputs[task_key] > 0:
            return
        start = max(now, resource_free[resource_key], data_ready[task_key])
        finish = start + durations[task_key]
        next_in_queue[resource_key] += 1
        resource_free[resource_key] = finish
        finished[task_key] = TaskPlacement(task_key, resource_key, start, finish)
        sequence += 1
        heapq.heappush(heap, (finish, sequence, task_key))

    for resource_key in continuum.keys:
        try_start(resource_key, 0.0)

    n_events = 0
    while heap:
        n_events += 1
        now, _, task_key = heapq.heappop(heap)
        placement = finished[task_key]
        for succ in workflow.successors(task_key):
            transfer = continuum.transfer_time(
                workflow[task_key].output_size,
                placement.resource,
                schedule[succ].resource,
            )
            data_ready[succ] = max(data_ready[succ], now + transfer)
            remaining_inputs[succ] -= 1
        # The finished resource may start its next task; successors' hosts
        # may have been waiting on the data that just arrived.
        try_start(placement.resource, now)
        for succ in workflow.successors(task_key):
            try_start(schedule[succ].resource, now)

    if len(finished) != len(workflow):
        unrun = sorted(set(workflow.task_keys) - set(finished))
        raise ContinuumError(
            f"simulation deadlocked; tasks never ran: {unrun[:5]}"
        )

    makespan = max(p.finish for p in finished.values())
    busy_energy = sum(
        continuum[p.resource].busy_power * p.duration
        for p in finished.values()
    )
    trace = ExecutionTrace(
        placements=tuple(
            sorted(finished.values(), key=lambda p: (p.start, p.task))
        ),
        makespan=float(makespan),
        planned_makespan=schedule.makespan,
        busy_energy=float(busy_energy),
    )
    return trace, n_events
