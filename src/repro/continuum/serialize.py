"""Workflow and schedule serialization: JSON round-trips and DOT export.

Workflows are the exchange format of the ecosystem under study; this module
lets them leave the process: a JSON representation that round-trips through
:class:`~repro.continuum.workflow.Workflow`, and Graphviz DOT export for
workflows (DAG structure) and schedules (nodes annotated with placement).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.continuum.resources import Continuum, Resource, ResourceKind
from repro.continuum.scheduling import Schedule
from repro.continuum.workflow import Task, Workflow
from repro.errors import SerializationError

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "continuum_to_dict",
    "continuum_from_dict",
    "save_workflow",
    "load_workflow",
    "workflow_to_dot",
    "schedule_to_dot",
]

FORMAT_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> dict:
    """Serialize a workflow to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": workflow.name,
        "tasks": [
            {
                "key": task.key,
                "work": task.work,
                "output_size": task.output_size,
                "requirements": sorted(task.requirements),
            }
            for task in workflow
        ],
        "edges": [list(edge) for edge in workflow.edges],
    }


def workflow_from_dict(data: dict) -> Workflow:
    """Deserialize a workflow (validates structure and acyclicity)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported workflow format_version {version!r}"
        )
    try:
        tasks = [
            Task(
                entry["key"],
                float(entry["work"]),
                float(entry.get("output_size", 0.0)),
                frozenset(entry.get("requirements", ())),
            )
            for entry in data["tasks"]
        ]
        edges = [tuple(edge) for edge in data.get("edges", [])]
        return Workflow(data["name"], tasks, edges)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed workflow document: {exc}") from exc


def continuum_to_dict(continuum: Continuum) -> dict:
    """Serialize a continuum to a JSON-compatible dict.

    The diagonal of the bandwidth matrix is ``inf`` in memory (local
    transfers are free); it is emitted as ``1.0`` to stay strict-JSON —
    the :class:`~repro.continuum.resources.Continuum` constructor
    overwrites both diagonals anyway, so the round-trip is exact.
    """
    bandwidth = continuum.bandwidth.copy()
    np.fill_diagonal(bandwidth, 1.0)
    latency = continuum.latency.copy()
    np.fill_diagonal(latency, 0.0)
    return {
        "format_version": FORMAT_VERSION,
        "resources": [
            {
                "key": r.key,
                "kind": r.kind.value,
                "speed": r.speed,
                "idle_power": r.idle_power,
                "busy_power": r.busy_power,
                "capabilities": sorted(r.capabilities),
                "carbon_intensity": r.carbon_intensity,
            }
            for r in continuum
        ],
        "bandwidth": bandwidth.tolist(),
        "latency": latency.tolist(),
    }


def continuum_from_dict(data: dict) -> Continuum:
    """Deserialize a continuum written by :func:`continuum_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported continuum format_version {version!r}"
        )
    try:
        resources = [
            Resource(
                entry["key"],
                ResourceKind(entry["kind"]),
                float(entry["speed"]),
                idle_power=float(entry.get("idle_power", 50.0)),
                busy_power=float(entry.get("busy_power", 200.0)),
                capabilities=frozenset(entry.get("capabilities", ())),
                carbon_intensity=float(entry.get("carbon_intensity", 1.0)),
            )
            for entry in data["resources"]
        ]
        return Continuum(
            resources,
            bandwidth=data["bandwidth"],
            latency=data["latency"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed continuum document: {exc}"
        ) from exc


def save_workflow(workflow: Workflow, path: str | Path) -> None:
    """Write a workflow as pretty JSON."""
    Path(path).write_text(
        json.dumps(workflow_to_dict(workflow), indent=2) + "\n",
        encoding="utf-8",
    )


def load_workflow(path: str | Path) -> Workflow:
    """Read a workflow written by :func:`save_workflow`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read workflow: {exc}") from exc
    return workflow_from_dict(data)


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def workflow_to_dot(workflow: Workflow) -> str:
    """Graphviz DOT of the task graph (node label: key and work)."""
    lines = [f'digraph "{_dot_escape(workflow.name)}" {{',
             "  rankdir=LR;",
             "  node [shape=box, style=rounded];"]
    for task in workflow:
        label = f"{task.key}\\nwork={task.work:g}"
        if task.requirements:
            label += "\\n[" + ",".join(sorted(task.requirements)) + "]"
        lines.append(f'  "{_dot_escape(task.key)}" [label="{label}"];')
    for src, dst in workflow.edges:
        size = workflow[src].output_size
        attributes = f' [label="{size:g}"]' if size else ""
        lines.append(
            f'  "{_dot_escape(src)}" -> "{_dot_escape(dst)}"{attributes};'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def schedule_to_dot(schedule: Schedule) -> str:
    """DOT of the scheduled workflow, tasks clustered by resource."""
    workflow = schedule.workflow
    by_resource: dict[str, list[str]] = {}
    for placement in schedule.placements:
        by_resource.setdefault(placement.resource, []).append(placement.task)

    lines = [f'digraph "{_dot_escape(workflow.name)}-schedule" {{',
             "  rankdir=LR;",
             "  node [shape=box, style=rounded];"]
    for i, (resource, tasks) in enumerate(sorted(by_resource.items())):
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f'    label="{_dot_escape(resource)}";')
        for task_key in tasks:
            placement = schedule[task_key]
            label = (
                f"{task_key}\\n[{placement.start:.2f}, {placement.finish:.2f}]"
            )
            lines.append(
                f'    "{_dot_escape(task_key)}" [label="{label}"];'
            )
        lines.append("  }")
    for src, dst in workflow.edges:
        lines.append(f'  "{_dot_escape(src)}" -> "{_dot_escape(dst)}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
