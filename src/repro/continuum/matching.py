"""Requirement ↔ capability matching: the simulated Sec. 3 survey.

The paper's Table 2 came from human application providers picking tools.
The matcher replays that choice mechanically (DESIGN.md §3, substitution 2):

1. embed tools (capabilities) and applications (requirements) in the shared
   research-direction space;
2. refine the direction-level affinity with a TF-IDF text-similarity term
   between the application's and tool's descriptions;
3. per application, select either the top-k tools (cardinality-matched
   evaluation) or all tools above a score threshold.

The key *shape* claim to reproduce: aggregating predicted selections by
direction must rank orchestration first and energy efficiency last,
matching Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.continuum.capabilities import capability_matrix
from repro.continuum.requirements import requirement_matrix
from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import ClassificationScheme
from repro.errors import ValidationError
from repro.text.vectorize import TfidfModel

__all__ = ["MatchModel", "MatchReport"]


@dataclass(frozen=True, slots=True)
class MatchReport:
    """Outcome of evaluating predicted selections against the published ones.

    Attributes
    ----------
    predicted:
        The predicted selection matrix.
    agreement:
        Cell-level accuracy/precision/recall/F1/Jaccard versus ground truth.
    predicted_votes, actual_votes:
        Per-direction vote counts of both matrices.
    rank_match_top, rank_match_bottom:
        Whether the predicted demand ranking agrees with the published one
        on the most- and least-demanded direction.
    """

    predicted: SelectionMatrix
    agreement: dict[str, float]
    predicted_votes: dict[str, int]
    actual_votes: dict[str, int]
    rank_match_top: bool
    rank_match_bottom: bool


class MatchModel:
    """Scores (application, tool) affinity and predicts selections.

    Parameters
    ----------
    tools, applications, scheme:
        The study dataset.
    direction_weight:
        Weight of the direction-space affinity (requirement · capability);
        the remainder goes to TF-IDF description similarity.
    secondary_weight, text_weight, smoothing:
        Passed through to the capability/requirement embeddings.
    """

    def __init__(
        self,
        tools: ToolCatalog,
        applications: ApplicationCatalog,
        scheme: ClassificationScheme,
        *,
        direction_weight: float = 0.7,
        secondary_weight: float = 0.5,
        text_weight: float = 0.3,
        smoothing: float = 0.05,
    ) -> None:
        if not 0.0 <= direction_weight <= 1.0:
            raise ValidationError("direction_weight must be in [0, 1]")
        self.tools = tools
        self.applications = applications
        self.scheme = scheme
        self.direction_weight = direction_weight

        cap, self._tool_keys = capability_matrix(
            tools, scheme,
            secondary_weight=secondary_weight, text_weight=text_weight,
        )
        req, self._app_keys = requirement_matrix(
            applications, scheme, smoothing=smoothing
        )
        # Direction affinity: cosine of the L1-normalized profiles.
        cap_norm = cap / np.linalg.norm(cap, axis=1, keepdims=True)
        req_norm = req / np.linalg.norm(req, axis=1, keepdims=True)
        direction_scores = req_norm @ cap_norm.T  # (apps, tools)

        # Text affinity: TF-IDF cosine between descriptions.
        tool_texts = [tools[k].description for k in self._tool_keys]
        model = TfidfModel(tool_texts)
        app_texts = [applications[k].description for k in self._app_keys]
        text_scores = model.similarity(app_texts)  # (apps, tools)

        self._scores = (
            direction_weight * direction_scores
            + (1.0 - direction_weight) * text_scores
        )
        self._scores.setflags(write=False)

    @property
    def scores(self) -> np.ndarray:
        """The (applications × tools) affinity matrix (read-only)."""
        return self._scores

    @property
    def tool_keys(self) -> tuple[str, ...]:
        return self._tool_keys

    @property
    def application_keys(self) -> tuple[str, ...]:
        return self._app_keys

    # -- prediction ---------------------------------------------------------

    def select_top_k(self, k_per_application: dict[str, int]) -> SelectionMatrix:
        """Predict each application's *k* best tools (cardinality-matched).

        Deterministic tie-break: higher score first, then tool order.
        """
        votes: list[tuple[str, str]] = []
        for i, app_key in enumerate(self._app_keys):
            k = k_per_application.get(app_key, 0)
            if k < 0 or k > len(self._tool_keys):
                raise ValidationError(
                    f"k={k} out of range for application {app_key!r}"
                )
            if k == 0:
                continue
            order = np.argsort(-self._scores[i], kind="stable")[:k]
            votes.extend((app_key, self._tool_keys[j]) for j in order)
        return SelectionMatrix.from_votes(
            self._tool_keys, self._app_keys, votes
        )

    def select_threshold(self, threshold: float) -> SelectionMatrix:
        """Predict every (application, tool) pair scoring above *threshold*."""
        mask = self._scores > threshold
        votes = [
            (self._app_keys[i], self._tool_keys[j])
            for i, j in zip(*np.nonzero(mask))
        ]
        return SelectionMatrix.from_votes(self._tool_keys, self._app_keys, votes)

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, *, mode: str = "cardinality") -> MatchReport:
        """Score the matcher against the published Table 2.

        ``mode="cardinality"`` predicts exactly as many tools per
        application as the ground truth (isolating *which* tools, not *how
        many*); ``mode="threshold:X"`` uses a fixed threshold X.
        """
        actual = SelectionMatrix.from_votes(
            self._tool_keys,
            self._app_keys,
            [
                (app.key, tool)
                for app in self.applications.ordered()
                for tool in app.selected_tools
            ],
        )
        if mode == "cardinality":
            k_map = {
                app.key: len(app.selected_tools)
                for app in self.applications.ordered()
            }
            predicted = self.select_top_k(k_map)
        elif mode.startswith("threshold:"):
            predicted = self.select_threshold(float(mode.split(":", 1)[1]))
        else:
            raise ValidationError(f"unknown evaluation mode {mode!r}")

        agreement = actual.agreement(predicted)
        predicted_votes = predicted.votes_per_direction(self.tools, self.scheme)
        actual_votes = actual.votes_per_direction(self.tools, self.scheme)
        return MatchReport(
            predicted=predicted,
            agreement=agreement,
            predicted_votes=predicted_votes.to_dict(),
            actual_votes=actual_votes.to_dict(),
            rank_match_top=predicted_votes.mode() == actual_votes.mode(),
            rank_match_bottom=predicted_votes.argmin() == actual_votes.argmin(),
        )
