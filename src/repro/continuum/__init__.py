"""Computing-Continuum substrate: resources, workflows, scheduling, matching."""

from repro.continuum.capabilities import capability_matrix, capability_vector
from repro.continuum.compile import (
    CompiledContinuum,
    CompiledProblem,
    CompiledWorkflow,
    ResourceTimeline,
    compile_problem,
)
from repro.continuum.energy import PowerTrace, energy_report, power_trace
from repro.continuum.failures import FailureTrace, simulate_with_failures
from repro.continuum.matching import MatchModel, MatchReport
from repro.continuum.montecarlo import (
    CellAggregate,
    CellSpec,
    CellStats,
    FixedHistogram,
    MetricSummary,
    QuantileSketch,
    ReplicationResult,
    RunningStat,
    SimulationContext,
    SweepResult,
    SweepSpec,
    build_sweep_spec,
    parse_grid,
    replicate_once,
    run_sweep,
)
from repro.continuum.requirements import requirement_matrix, requirement_vector
from repro.continuum.resources import (
    Continuum,
    Resource,
    ResourceKind,
    default_continuum,
)
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
    Schedule,
    TaskPlacement,
)
from repro.continuum.serialize import (
    continuum_from_dict,
    continuum_to_dict,
    load_workflow,
    save_workflow,
    schedule_to_dot,
    workflow_from_dict,
    workflow_to_dict,
    workflow_to_dot,
)
from repro.continuum.simulate import ExecutionTrace, simulate_schedule
from repro.continuum.workflow import (
    Task,
    Workflow,
    layered_workflow,
    random_workflow,
)

__all__ = [
    "CellAggregate",
    "CellSpec",
    "CellStats",
    "CompiledContinuum",
    "CompiledProblem",
    "CompiledWorkflow",
    "Continuum",
    "EnergyAwareScheduler",
    "ExecutionTrace",
    "FailureTrace",
    "FixedHistogram",
    "HeftScheduler",
    "MatchModel",
    "MatchReport",
    "MetricSummary",
    "PowerTrace",
    "QuantileSketch",
    "energy_report",
    "power_trace",
    "ReplicationResult",
    "Resource",
    "ResourceKind",
    "ResourceTimeline",
    "RoundRobinScheduler",
    "RunningStat",
    "Schedule",
    "SimulationContext",
    "SweepResult",
    "SweepSpec",
    "Task",
    "TaskPlacement",
    "Workflow",
    "build_sweep_spec",
    "capability_matrix",
    "capability_vector",
    "compile_problem",
    "default_continuum",
    "parse_grid",
    "layered_workflow",
    "random_workflow",
    "requirement_matrix",
    "requirement_vector",
    "replicate_once",
    "run_sweep",
    "simulate_schedule",
    "simulate_with_failures",
    "continuum_from_dict",
    "continuum_to_dict",
    "load_workflow",
    "save_workflow",
    "schedule_to_dot",
    "workflow_from_dict",
    "workflow_to_dict",
    "workflow_to_dot",
]
