"""Tool capability vectors over the research-direction space.

Every tool is embedded in the 5-dimensional research-direction space of the
taxonomy.  The vector combines:

* **structure** — the published classification: 1.0 on the primary
  direction, ``secondary_weight`` on each secondary direction;
* **text** — the keyword-classifier score profile of the tool's
  description, L1-normalized, blended in with weight ``text_weight``.

The blend keeps the vector faithful to Table 1 while letting the free-text
description add nuance (e.g. CAPIO's streaming vocabulary bleeds a little
into Big Data management, exactly as a human reviewer would perceive).
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import ToolCatalog
from repro.core.classification import KeywordClassifier
from repro.core.entities import Tool
from repro.core.taxonomy import ClassificationScheme
from repro.errors import ValidationError

__all__ = ["capability_vector", "capability_matrix"]


def capability_vector(
    tool: Tool,
    scheme: ClassificationScheme,
    *,
    classifier: KeywordClassifier | None = None,
    secondary_weight: float = 0.5,
    text_weight: float = 0.3,
) -> np.ndarray:
    """The tool's L1-normalized capability vector (aligned with scheme order)."""
    if not 0.0 <= secondary_weight <= 1.0:
        raise ValidationError("secondary_weight must be in [0, 1]")
    if not 0.0 <= text_weight < 1.0:
        raise ValidationError("text_weight must be in [0, 1)")
    structure = np.zeros(len(scheme), dtype=np.float64)
    structure[scheme.index(tool.primary_direction)] = 1.0
    for direction in tool.secondary_directions:
        structure[scheme.index(direction)] = secondary_weight
    structure /= structure.sum()

    if text_weight > 0.0 and tool.description.strip():
        clf = classifier or KeywordClassifier(scheme)
        result = clf.classify(tool.description)
        text = np.asarray(
            [result.scores[key] for key in scheme.keys], dtype=np.float64
        )
        if text.sum() > 0:
            text /= text.sum()
            return (1.0 - text_weight) * structure + text_weight * text
    return structure


def capability_matrix(
    tools: ToolCatalog,
    scheme: ClassificationScheme,
    *,
    secondary_weight: float = 0.5,
    text_weight: float = 0.3,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Stacked capability vectors for a whole catalogue.

    Returns ``(matrix, tool_keys)`` with one row per tool in catalogue
    order; the classifier is built once and shared across tools.
    """
    classifier = KeywordClassifier(scheme) if text_weight > 0 else None
    keys = tools.keys
    matrix = np.empty((len(keys), len(scheme)), dtype=np.float64)
    for i, key in enumerate(keys):
        matrix[i] = capability_vector(
            tools[key],
            scheme,
            classifier=classifier,
            secondary_weight=secondary_weight,
            text_weight=text_weight,
        )
    return matrix, keys
