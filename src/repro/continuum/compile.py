"""Compiled scheduling core: array-backed placement for large fleets.

The reference schedulers in :mod:`repro.continuum.scheduling` are written
against the object model — string task keys, ``Resource.execution_time``
calls, ``Continuum.transfer_time`` per (edge × candidate).  That reads
well and tops out at toy fleets: every placement decision pays thousands
of dict lookups and Python-level float ops.  This module is the
``SimulationContext`` invariant-hoisting idea from
:mod:`~repro.continuum.montecarlo` generalized from *replaying* schedules
to *building* them:

* :class:`CompiledWorkflow` — task keys mapped to integer ids once, work
  and output-size vectors, CSR predecessor/successor adjacency, the
  topological order as an id array, and tasks grouped by distinct
  requirement set (real workloads have a handful of requirement profiles,
  not one per task).
* :class:`CompiledContinuum` — resource ids, speed/power/carbon vectors,
  the latency and bandwidth matrices, and the key-sorted ranks that
  reproduce string tie-breaks on integers.
* :class:`CompiledProblem` — the pairing: the per-(task, resource)
  duration matrix (IEEE-identical to ``Resource.execution_time``),
  per-requirement-group feasibility masks, and per-(src, dst) transfer
  rows so ``Continuum.transfer_time`` becomes an array expression
  (``latency[src, :] + size / bandwidth[src, :]`` — bit-equal in every
  case, including the free diagonal and zero-size transfers, because the
  diagonal is ``latency 0 / bandwidth inf``).

On top of the compiled problem live the three placement kernels
(:func:`heft_placements`, :func:`energy_placements`,
:func:`round_robin_placements`) and the vectorized rank sweep
(:func:`upward_rank_array`).  All of them are **bit-identical** to the
pure-Python reference implementations — same placements, same starts and
finishes, same tie-breaks — which the parity suite in
``tests/test_compile.py`` asserts across a random DAG × fleet grid.  The
speed comes from three moves:

1. every per-candidate quantity (ready time, duration, energy) is one
   array expression over the feasible set instead of a Python loop;
2. the insertion-based ``earliest_slot`` — inherently sequential — is
   only evaluated for candidates whose *lower bound* ``ready + duration``
   can still beat the current best finish, in lower-bound order, so a
   heterogeneous fleet evaluates a handful of timelines per task instead
   of all of them;
3. timelines skip straight to the first interval that can constrain the
   query (bisect on finish times) instead of scanning from zero.

Exactness of the pruning: a candidate's finish is at least
``ready + duration`` (its start is ``>= ready``), so once the bound
exceeds the best finish found, no remaining candidate can win — and
because the reference keeps the *first* strict minimum in feasible
order, candidates whose bound *equals* the best finish are still
evaluated so ties resolve identically.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.continuum.resources import Continuum
from repro.continuum.workflow import Workflow
from repro.errors import SchedulingError

__all__ = [
    "CompiledWorkflow",
    "CompiledContinuum",
    "CompiledProblem",
    "ResourceTimeline",
    "compile_problem",
    "upward_rank_array",
    "heft_placements",
    "energy_placements",
    "round_robin_placements",
]


class CompiledWorkflow:
    """A :class:`Workflow` lowered to integer ids and flat arrays."""

    __slots__ = (
        "workflow",
        "n_tasks",
        "keys",
        "index",
        "key_array",
        "work",
        "output_size",
        "topo_order",
        "pred_indptr",
        "pred_ids",
        "succ_indptr",
        "succ_ids",
        "requirement_sets",
        "group_of",
        "_pred_lists",
        "_succ_lists",
    )

    def __init__(self, workflow: Workflow) -> None:
        self.workflow = workflow
        keys = workflow.task_keys
        self.keys = keys
        self.n_tasks = len(keys)
        index = {key: i for i, key in enumerate(keys)}
        self.index = index
        self.key_array = np.asarray(keys)
        self.work = np.asarray([t.work for t in workflow], dtype=np.float64)
        self.output_size = np.asarray(
            [t.output_size for t in workflow], dtype=np.float64
        )
        self.topo_order = np.asarray(
            [index[key] for key in workflow.topological_order()],
            dtype=np.intp,
        )

        # CSR adjacency, preserving the reference iteration order
        # (workflow.predecessors() / successors() tuple order).
        pred_lists = [
            [index[p] for p in workflow.predecessors(key)] for key in keys
        ]
        succ_lists = [
            [index[s] for s in workflow.successors(key)] for key in keys
        ]
        self._pred_lists = pred_lists
        self._succ_lists = succ_lists
        self.pred_indptr, self.pred_ids = _to_csr(pred_lists)
        self.succ_indptr, self.succ_ids = _to_csr(succ_lists)

        # Distinct requirement sets: feasibility is per *profile*, not per
        # task.  group_of[t] indexes requirement_sets.
        groups: dict[frozenset[str], int] = {}
        group_of = np.empty(self.n_tasks, dtype=np.intp)
        for i, task in enumerate(workflow):
            group = groups.setdefault(task.requirements, len(groups))
            group_of[i] = group
        self.requirement_sets = tuple(groups)
        self.group_of = group_of

    def predecessors_of(self, task_id: int) -> np.ndarray:
        """Predecessor ids of one task (CSR slice, reference order)."""
        return self.pred_ids[
            self.pred_indptr[task_id] : self.pred_indptr[task_id + 1]
        ]

    def successors_of(self, task_id: int) -> np.ndarray:
        """Successor ids of one task (CSR slice, reference order)."""
        return self.succ_ids[
            self.succ_indptr[task_id] : self.succ_indptr[task_id + 1]
        ]

    def pred_lists(self) -> list[list[int]]:
        """Predecessor id lists per task (reference order); do not mutate."""
        return self._pred_lists

    def succ_lists(self) -> list[list[int]]:
        """Successor id lists per task (reference order); do not mutate."""
        return self._succ_lists


def _to_csr(lists: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    indptr = np.zeros(len(lists) + 1, dtype=np.intp)
    np.cumsum([len(lst) for lst in lists], out=indptr[1:])
    flat = [i for lst in lists for i in lst]
    return indptr, np.asarray(flat, dtype=np.intp)


class CompiledContinuum:
    """A :class:`Continuum` lowered to id-aligned vectors and matrices."""

    __slots__ = (
        "continuum",
        "n_resources",
        "keys",
        "index",
        "key_array",
        "speed",
        "busy_power",
        "idle_power",
        "carbon_intensity",
        "latency",
        "bandwidth",
        "res_rank",
        "capabilities",
    )

    def __init__(self, continuum: Continuum) -> None:
        self.continuum = continuum
        keys = continuum.keys
        self.keys = keys
        self.n_resources = len(keys)
        self.index = {key: i for i, key in enumerate(keys)}
        self.key_array = np.asarray(keys)
        self.speed = continuum.speeds
        self.busy_power = continuum.busy_powers
        self.idle_power = continuum.idle_powers
        self.carbon_intensity = continuum.carbon_intensities
        self.latency = continuum.latency
        self.bandwidth = continuum.bandwidth
        self.capabilities = tuple(r.capabilities for r in continuum)
        # Key-sorted ranks reproduce string-key tie-breaks on integers.
        rank_of = {key: i for i, key in enumerate(sorted(keys))}
        self.res_rank = np.asarray(
            [rank_of[key] for key in keys], dtype=np.intp
        )


class CompiledProblem:
    """One workflow × continuum pairing with every invariant precomputed.

    Shared freely: the scheduling kernels, the vectorized validator, the
    compiled simulator, and the Monte-Carlo ``SimulationContext`` all run
    against the same instance, so a sweep compiles each workflow exactly
    once regardless of how many schedulers/cells use it.
    """

    __slots__ = (
        "cw",
        "cc",
        "duration",
        "_feasible_groups",
        "_dur_lists",
        "_pred_id_lists",
        "_feasible_id_lists",
        "_transfer_lists",
        "_rank_cache",
    )

    def __init__(self, workflow: Workflow, continuum: Continuum) -> None:
        cw = CompiledWorkflow(workflow)
        cc = CompiledContinuum(continuum)
        self.cw = cw
        self.cc = cc
        #: duration[t, r] == continuum resources' execution_time(work[t]):
        #: the same IEEE division, vectorized.
        self.duration = cw.work[:, None] / cc.speed[None, :]
        self.duration.setflags(write=False)
        self._feasible_groups = None
        self._dur_lists = None
        self._pred_id_lists = None
        self._feasible_id_lists = None
        self._transfer_lists = None
        self._rank_cache = None

    @property
    def feasible_groups(self) -> tuple[np.ndarray, ...]:
        """Feasible resource ids per requirement group, continuum order.

        Computed lazily on first access and checked like the reference
        ``_feasible_resources``: the first task (in workflow insertion
        order) with no feasible resource raises the identical
        :class:`SchedulingError`.
        """
        if self._feasible_groups is None:
            cw, cc = self.cw, self.cc
            groups: list[np.ndarray] = []
            for requirements in cw.requirement_sets:
                ids = [
                    r
                    for r, caps in enumerate(cc.capabilities)
                    if requirements <= caps
                ]
                groups.append(np.asarray(ids, dtype=np.intp))
            for task_id in range(cw.n_tasks):
                if groups[cw.group_of[task_id]].size == 0:
                    task = cw.workflow[cw.keys[task_id]]
                    raise SchedulingError(
                        f"no resource satisfies requirements "
                        f"{sorted(task.requirements)} of task {task.key!r}"
                    )
            self._feasible_groups = tuple(groups)
        return self._feasible_groups

    # -- hot-path helpers -------------------------------------------------------

    @property
    def workflow(self) -> Workflow:
        return self.cw.workflow

    @property
    def continuum(self) -> Continuum:
        return self.cc.continuum

    def feasible_ids(self, task_id: int) -> np.ndarray:
        """Feasible resource ids for one task, in continuum order."""
        return self.feasible_groups[self.cw.group_of[task_id]]

    def transfer_row(self, size: float, src: int) -> np.ndarray:
        """``Continuum.transfer_time(size, src, ·)`` for every destination.

        ``latency[src] + size / bandwidth[src]`` is bit-equal to the
        scalar method in every case: the diagonal divides by ``inf``
        (exactly 0.0 on top of a 0.0 latency) and a zero size divides to
        exactly 0.0.
        """
        return self.cc.latency[src] + size / self.cc.bandwidth[src]

    # -- cached list views for the pure-Python replay loop ----------------------
    # montecarlo's replication loop runs on nested lists (faster than
    # ndarray scalar indexing under the GIL); these lazy views let every
    # SimulationContext of this problem share one conversion.

    def dur_lists(self) -> list[list[float]]:
        if self._dur_lists is None:
            self._dur_lists = self.duration.tolist()
        return self._dur_lists

    def pred_id_lists(self) -> list[list[int]]:
        if self._pred_id_lists is None:
            self._pred_id_lists = [list(p) for p in self.cw._pred_lists]
        return self._pred_id_lists

    def feasible_id_lists(self) -> list[list[int]]:
        if self._feasible_id_lists is None:
            groups = [ids.tolist() for ids in self.feasible_groups]
            self._feasible_id_lists = [
                groups[g] for g in self.cw.group_of
            ]
        return self._feasible_id_lists

    def transfer_lists(self) -> list[list[list[float]]]:
        """The full ``task × src × dst`` transfer table as nested lists.

        Only sensible for replay-sized fleets (Monte-Carlo uses it); the
        scheduling kernels use :meth:`transfer_row` instead, which stays
        O(n_resources) per lookup at any fleet size.
        """
        if self._transfer_lists is None:
            lat, bw = self.cc.latency, self.cc.bandwidth
            outputs = self.cw.output_size
            self._transfer_lists = (
                lat[None, :, :] + outputs[:, None, None] / bw[None, :, :]
            ).tolist()
        return self._transfer_lists


def compile_problem(workflow: Workflow, continuum: Continuum) -> CompiledProblem:
    """Compile one workflow × continuum pairing (validates feasibility)."""
    return CompiledProblem(workflow, continuum)


# -- upward ranks ----------------------------------------------------------------


def upward_rank_array(problem: CompiledProblem) -> np.ndarray:
    """HEFT upward ranks by task id, one vectorized backward sweep.

    Bit-identical to the reference loop: the mean-communication term of a
    task is the same for all of its successors, and IEEE addition is
    monotone, so ``max over succ of (comm + rank)`` equals
    ``comm + max(rank)`` exactly; the max itself is order-independent.
    Tasks are processed level-by-level (longest hop distance to a sink)
    with one segment-max per level.
    """
    cw, cc = problem.cw, problem.cc
    if problem._rank_cache is not None:
        return problem._rank_cache
    speeds = cc.speed
    mean_speed_inv = float((1.0 / speeds).mean())
    n = cc.n_resources
    if n > 1:
        off_diag = ~np.eye(n, dtype=bool)
        mean_inv_bw = float((1.0 / cc.bandwidth[off_diag]).mean())
        mean_lat = float(cc.latency[off_diag].mean())
    else:
        mean_inv_bw = 0.0
        mean_lat = 0.0

    mean_exec = cw.work * mean_speed_inv
    comm = mean_lat + cw.output_size * mean_inv_bw
    ranks = np.zeros(cw.n_tasks, dtype=np.float64)
    indptr, succ_ids = cw.succ_indptr, cw.succ_ids
    counts = np.diff(indptr)

    # Reverse-topological levels: a task's level is 1 + max over its
    # successors' levels; sinks are level 0.  All successors of a level-L
    # task live strictly below L, so levels can be ranked in one
    # vectorized pass each.
    level = np.zeros(cw.n_tasks, dtype=np.intp)
    for t in cw.topo_order[::-1]:
        succs = succ_ids[indptr[t] : indptr[t + 1]]
        if succs.size:
            level[t] = 1 + int(level[succs].max())
    for depth in range(int(level.max()) + 1):
        tasks = np.flatnonzero(level == depth)
        has_succ = counts[tasks] > 0
        with_succ = tasks[has_succ]
        if with_succ.size:
            # Segment max of successor ranks via reduceat over the
            # concatenated CSR slices of this level's tasks.
            starts = indptr[with_succ]
            stops = indptr[with_succ + 1]
            segments = np.concatenate(
                [succ_ids[a:b] for a, b in zip(starts, stops)]
            )
            offsets = np.zeros(with_succ.size, dtype=np.intp)
            np.cumsum((stops - starts)[:-1], out=offsets[1:])
            best = np.maximum.reduceat(ranks[segments], offsets)
            ranks[with_succ] = mean_exec[with_succ] + (
                comm[with_succ] + best
            )
        without = tasks[~has_succ]
        ranks[without] = mean_exec[without] + 0.0
    problem._rank_cache = ranks
    return ranks


# -- timelines -------------------------------------------------------------------


class ResourceTimeline:
    """Occupied intervals on one resource, bisect-indexed.

    The schedulers' insertion structure: reservations are kept as two
    parallel start/finish lists sorted by start, and queries skip
    straight to the first interval that can constrain them.  For the
    disjoint reservations the schedulers create (every reservation is a
    slot a previous :meth:`earliest_slot` returned) this is semantically
    identical to the seed's cursor scan from zero: intervals finishing
    at or before ``ready`` can never move the cursor or absorb the gap,
    so the scan may start at the first interval whose finish exceeds
    ``ready`` — found by bisection instead of a linear walk.
    """

    __slots__ = ("_starts", "_finishes")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._finishes: list[float] = []

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def intervals(self) -> tuple[tuple[float, float], ...]:
        """Reserved (start, finish) pairs, sorted by start."""
        return tuple(zip(self._starts, self._finishes))

    @property
    def last_finish(self) -> float:
        """Finish time of the final reservation (0.0 when empty).

        The public tail the append-only (``insertion=False``) placement
        path uses — previously reached through ``_intervals[-1][1]``.
        """
        return self._finishes[-1] if self._finishes else 0.0

    def tail(self) -> float:
        """Alias of :attr:`last_finish`, as a method."""
        return self.last_finish

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= *ready* with a free gap of *duration*."""
        starts, finishes = self._starts, self._finishes
        if not finishes or ready >= finishes[-1]:
            return ready  # nothing at or after ready constrains the slot
        cursor = ready
        for i in range(bisect_right(finishes, ready), len(starts)):
            if cursor + duration <= starts[i]:
                break
            finish = finishes[i]
            if finish > cursor:
                cursor = finish
        return cursor

    def reserve(self, start: float, duration: float) -> None:
        i = bisect_right(self._starts, start)
        self._starts.insert(i, start)
        self._finishes.insert(i, start + duration)


# -- candidate kernel ------------------------------------------------------------


def _ready_times(
    problem: CompiledProblem,
    task_id: int,
    fin: np.ndarray,
    res_of: np.ndarray,
    feasible: np.ndarray,
) -> np.ndarray:
    """Earliest data arrival on every feasible resource (0.0 floor).

    One gather per task: ``pred_finish + latency[pred_res, F] +
    output[pred] / bandwidth[pred_res, F]``, max-reduced over the
    predecessors — the reference inner double loop as two array ops.
    """
    cw, cc = problem.cw, problem.cc
    preds = cw.predecessors_of(task_id)
    if preds.size == 0:
        return np.zeros(feasible.size, dtype=np.float64)
    rows = res_of[preds][:, None]
    lat = cc.latency[rows, feasible]
    bw = cc.bandwidth[rows, feasible]
    arrivals = fin[preds][:, None] + (
        lat + cw.output_size[preds][:, None] / bw
    )
    return arrivals.max(axis=0, initial=0.0)


def _heft_order(problem: CompiledProblem) -> np.ndarray:
    """Task ids sorted by (-rank, key) — the reference priority order."""
    ranks = upward_rank_array(problem)
    return np.lexsort((problem.cw.key_array, -ranks))


def heft_placements(
    problem: CompiledProblem, *, insertion: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """HEFT placement on the compiled problem.

    Returns ``(resource_id, start, finish)`` arrays by task id,
    bit-identical to ``HeftScheduler.schedule_reference``.
    """
    cw, cc = problem.cw, problem.cc
    n_tasks = cw.n_tasks
    duration = problem.duration
    order = _heft_order(problem)

    timelines = [ResourceTimeline() for _ in range(cc.n_resources)]
    tails = np.zeros(cc.n_resources, dtype=np.float64)
    res_of = np.zeros(n_tasks, dtype=np.intp)
    start_of = np.zeros(n_tasks, dtype=np.float64)
    fin = np.zeros(n_tasks, dtype=np.float64)

    for task_id in order:
        feasible = problem.feasible_ids(task_id)
        ready = _ready_times(problem, task_id, fin, res_of, feasible)
        durs = duration[task_id, feasible]
        if not insertion:
            starts = np.maximum(ready, tails[feasible])
            finishes = starts + durs
            # First occurrence of the minimum == the reference's first
            # strict improvement in feasible order.
            j = int(np.argmin(finishes))
            best_res = int(feasible[j])
            best_start = float(starts[j])
            best_finish = float(finishes[j])
        else:
            best_res, best_start, best_finish = _best_insertion_slot(
                timelines, feasible, ready, durs
            )
        res_of[task_id] = best_res
        start_of[task_id] = best_start
        fin[task_id] = best_finish
        timelines[best_res].reserve(best_start, best_finish - best_start)
        if best_finish > tails[best_res]:
            tails[best_res] = best_finish
    return res_of, start_of, fin


def _best_insertion_slot(
    timelines: list[ResourceTimeline],
    feasible: np.ndarray,
    ready: np.ndarray,
    durs: np.ndarray,
) -> tuple[int, float, float]:
    """Earliest-finish insertion slot over the feasible set, exactly.

    Evaluates timelines in increasing ``ready + duration`` (a finish
    lower bound) and stops once the bound strictly exceeds the best
    finish found; bound ties are still evaluated, so the winner matches
    the reference's first-strict-minimum-in-feasible-order tie-break.
    """
    bounds = ready + durs
    scan = bounds.argsort(kind="stable").tolist()
    # Python-list views: list indexing in the scan loop is several times
    # cheaper than ndarray scalar indexing.
    bounds_l = bounds.tolist()
    ready_l = ready.tolist()
    durs_l = durs.tolist()
    feasible_l = feasible.tolist()
    best_finish = np.inf
    best_pos = -1
    best_start = 0.0
    for j in scan:
        if bounds_l[j] > best_finish:
            break
        dur = durs_l[j]
        start = timelines[feasible_l[j]].earliest_slot(ready_l[j], dur)
        finish = start + dur
        if finish < best_finish or (
            finish == best_finish and j < best_pos
        ):
            best_finish = finish
            best_pos = j
            best_start = start
    return feasible_l[best_pos], best_start, best_finish


def energy_placements(
    problem: CompiledProblem, *, slack: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Energy-aware placement on the compiled problem.

    Same candidate kernel as HEFT plus the vectorized slack filter:
    marginal energy is ``busy_power × duration`` — start-independent —
    so only candidates whose finish lower bound clears
    ``slack × best_finish`` ever touch a timeline.  Winner selection is
    the reference ``min`` over ``(energy, finish, resource key)`` with
    first-in-feasible-order ties, done as one ``lexsort``.
    """
    cw, cc = problem.cw, problem.cc
    n_tasks = cw.n_tasks
    duration = problem.duration
    order = _heft_order(problem)

    timelines = [ResourceTimeline() for _ in range(cc.n_resources)]
    res_of = np.zeros(n_tasks, dtype=np.intp)
    start_of = np.zeros(n_tasks, dtype=np.float64)
    fin = np.zeros(n_tasks, dtype=np.float64)

    for task_id in order:
        feasible = problem.feasible_ids(task_id)
        ready = _ready_times(problem, task_id, fin, res_of, feasible)
        durs = duration[task_id, feasible]
        energies = cc.busy_power[feasible] * durs
        bounds = ready + durs
        scan = bounds.argsort(kind="stable").tolist()
        bounds_l = bounds.tolist()
        ready_l = ready.tolist()
        durs_l = durs.tolist()
        feasible_l = feasible.tolist()

        # Pass 1: exact best finish via bound-pruned evaluation.
        starts = np.full(feasible.size, np.nan)
        best_finish = np.inf
        for j in scan:
            if bounds_l[j] > best_finish:
                break
            dur = durs_l[j]
            start = timelines[feasible_l[j]].earliest_slot(ready_l[j], dur)
            starts[j] = start
            finish = start + dur
            if finish < best_finish:
                best_finish = finish

        # Pass 2: exact finishes for every candidate that can still be
        # admissible (finish >= bound, so bound > threshold is out).
        threshold = slack * best_finish
        maybe = np.flatnonzero(bounds <= threshold)
        for j in maybe.tolist():
            if np.isnan(starts[j]):
                starts[j] = timelines[feasible_l[j]].earliest_slot(
                    ready_l[j], durs_l[j]
                )
        finishes = starts[maybe] + durs[maybe]
        admissible = maybe[finishes <= threshold]
        fin_adm = starts[admissible] + durs[admissible]
        # min by (energy, finish, resource key), first occurrence wins.
        pick = np.lexsort(
            (
                cc.key_array[feasible[admissible]],
                fin_adm,
                energies[admissible],
            )
        )[0]
        j = int(admissible[pick])
        best_res = int(feasible[j])
        best_start = float(starts[j])
        res_of[task_id] = best_res
        start_of[task_id] = best_start
        fin[task_id] = best_start + float(durs[j])
        timelines[best_res].reserve(best_start, float(durs[j]))
    return res_of, start_of, fin


def round_robin_placements(
    problem: CompiledProblem,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Round-robin placement on the compiled problem.

    The reference rotates a cursor over *all* resources, skipping
    infeasible ones — a linear scan per task.  The feasible sets are
    sorted id arrays here, so the next feasible resource at or after the
    cursor is one ``searchsorted`` (wrapping to the first feasible id).
    """
    cw, cc = problem.cw, problem.cc
    n_tasks = cw.n_tasks
    n_res = cc.n_resources
    duration = problem.duration

    timelines = [ResourceTimeline() for _ in range(n_res)]
    res_of = np.zeros(n_tasks, dtype=np.intp)
    start_of = np.zeros(n_tasks, dtype=np.float64)
    fin = np.zeros(n_tasks, dtype=np.float64)
    cursor = 0
    for task_id in cw.topo_order:
        feasible = problem.feasible_ids(task_id)
        i = int(np.searchsorted(feasible, cursor))
        r = int(feasible[i]) if i < feasible.size else int(feasible[0])
        cursor = (r + 1) % n_res
        ready_vec = _ready_times(
            problem, task_id, fin, res_of, np.asarray([r], dtype=np.intp)
        )
        ready = float(ready_vec[0])
        dur = float(duration[task_id, r])
        start = timelines[r].earliest_slot(ready, dur)
        res_of[task_id] = r
        start_of[task_id] = start
        fin[task_id] = start + dur
        timelines[r].reserve(start, dur)
    return res_of, start_of, fin
