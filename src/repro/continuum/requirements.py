"""Application requirement extraction.

Each surveyed application (Sec. 3) describes its evolution needs in prose.
The requirement extractor embeds that prose in the same 5-dimensional
research-direction space as the tool capability vectors, using the keyword
classifier's score profile — the textual analogue of the paper's expert
judgment of "which directions matter to this workload".
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import ApplicationCatalog
from repro.core.classification import KeywordClassifier
from repro.core.entities import Application
from repro.core.taxonomy import ClassificationScheme
from repro.errors import ValidationError

__all__ = ["requirement_vector", "requirement_matrix"]


def requirement_vector(
    application: Application,
    scheme: ClassificationScheme,
    *,
    classifier: KeywordClassifier | None = None,
    smoothing: float = 0.05,
) -> np.ndarray:
    """The application's L1-normalized requirement vector.

    ``smoothing`` adds a uniform floor so no direction has exactly zero
    demand (an application with no energy vocabulary still has *some*
    latent interest in efficiency); 0 disables it.
    """
    if smoothing < 0:
        raise ValidationError("smoothing must be >= 0")
    if not application.description.strip():
        raise ValidationError(
            f"application {application.key!r} has no description to extract "
            "requirements from"
        )
    clf = classifier or KeywordClassifier(scheme)
    result = clf.classify(application.description)
    scores = np.asarray(
        [result.scores[key] for key in scheme.keys], dtype=np.float64
    )
    if scores.sum() == 0:
        scores = np.ones_like(scores)
    scores = scores / scores.sum()
    if smoothing > 0:
        scores = scores + smoothing
        scores /= scores.sum()
    return scores


def requirement_matrix(
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
    *,
    smoothing: float = 0.05,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Stacked requirement vectors, one row per application in section order."""
    classifier = KeywordClassifier(scheme)
    apps = applications.ordered()
    matrix = np.empty((len(apps), len(scheme)), dtype=np.float64)
    for i, app in enumerate(apps):
        matrix[i] = requirement_vector(
            app, scheme, classifier=classifier, smoothing=smoothing
        )
    return matrix, tuple(app.key for app in apps)
