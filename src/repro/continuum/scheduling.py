"""Workflow scheduling on the Computing Continuum.

Implements the scheduling layer the paper's orchestration tools motivate:

* :class:`HeftScheduler` — the classic Heterogeneous Earliest Finish Time
  list scheduler (Topcuoglu et al. 2002): upward ranks computed in one
  backward pass with vectorized mean costs, then insertion-based earliest-
  finish placement.
* :class:`EnergyAwareScheduler` — greedy energy-aware placement (the PESOS
  idea transplanted to workflows): minimize marginal energy, with a
  configurable makespan-degradation bound.
* :class:`RoundRobinScheduler` — the naive baseline.

All schedulers honour task requirements versus resource capabilities and
return a :class:`Schedule` with per-task timing and the three figures of
merit: makespan, energy, and carbon.

Every ``schedule()`` accepts an optional ``telemetry=`` keyword: when
bound, the placement runs inside a ``schedule.<name>`` span and emits a
``schedule.finish`` log event (scheduler, task count, makespan).  The
default is the shared zero-overhead null telemetry.
"""

from __future__ import annotations

import functools
from bisect import insort
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.continuum.resources import Continuum
from repro.continuum.workflow import Workflow
from repro.errors import SchedulingError
from repro.telemetry import ensure

__all__ = [
    "TaskPlacement",
    "Schedule",
    "HeftScheduler",
    "EnergyAwareScheduler",
    "RoundRobinScheduler",
]


@dataclass(frozen=True, slots=True)
class TaskPlacement:
    """Where and when one task runs."""

    task: str
    resource: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Schedule:
    """A complete placement of a workflow on a continuum."""

    def __init__(
        self,
        workflow: Workflow,
        continuum: Continuum,
        placements: Mapping[str, TaskPlacement],
    ) -> None:
        missing = set(workflow.task_keys) - set(placements)
        if missing:
            raise SchedulingError(f"unplaced tasks: {sorted(missing)}")
        extra = set(placements) - set(workflow.task_keys)
        if extra:
            raise SchedulingError(f"placements for unknown tasks: {sorted(extra)}")
        self.workflow = workflow
        self.continuum = continuum
        self._placements = dict(placements)

    def __getitem__(self, task: str) -> TaskPlacement:
        try:
            return self._placements[task]
        except KeyError:
            raise SchedulingError(f"no placement for task {task!r}") from None

    @property
    def placements(self) -> tuple[TaskPlacement, ...]:
        """All placements, ordered by start time (stable on ties)."""
        return tuple(
            sorted(self._placements.values(), key=lambda p: (p.start, p.task))
        )

    @property
    def makespan(self) -> float:
        """Completion time of the last task."""
        return max(p.finish for p in self._placements.values())

    def busy_energy(self) -> float:
        """Joules consumed executing tasks (busy power × duration)."""
        total = 0.0
        for placement in self._placements.values():
            resource = self.continuum[placement.resource]
            total += resource.busy_power * placement.duration
        return total

    def total_energy(self) -> float:
        """Busy energy plus idle energy of every node over the makespan.

        Idle draw applies to each node for the whole makespan minus its own
        busy time — the platform-level view PESOS-style consolidation cares
        about (idle nodes still burn power unless switched off).
        """
        makespan = self.makespan
        busy_time = {key: 0.0 for key in self.continuum.keys}
        for placement in self._placements.values():
            busy_time[placement.resource] += placement.duration
        total = self.busy_energy()
        for resource in self.continuum:
            idle = max(0.0, makespan - busy_time[resource.key])
            total += resource.idle_power * idle
        return total

    def carbon(self) -> float:
        """Busy energy weighted by each node's carbon intensity."""
        total = 0.0
        for placement in self._placements.values():
            resource = self.continuum[placement.resource]
            total += (
                resource.busy_power
                * placement.duration
                * resource.carbon_intensity
            )
        return total

    def validate(self) -> None:
        """Check dependency and exclusivity invariants.

        * every task starts at or after every predecessor's finish (plus
          the required transfer time);
        * no two tasks overlap on the same resource.

        Raises :class:`SchedulingError` on the first violation.
        """
        eps = 1e-9
        for task_key in self.workflow.task_keys:
            placement = self[task_key]
            if placement.start < -eps or placement.finish < placement.start - eps:
                raise SchedulingError(f"task {task_key!r} has invalid timing")
            for pred_key in self.workflow.predecessors(task_key):
                pred = self[pred_key]
                transfer = self.continuum.transfer_time(
                    self.workflow[pred_key].output_size,
                    pred.resource,
                    placement.resource,
                )
                if placement.start + eps < pred.finish + transfer:
                    raise SchedulingError(
                        f"task {task_key!r} starts before data from "
                        f"{pred_key!r} arrives"
                    )
        by_resource: dict[str, list[TaskPlacement]] = {}
        for placement in self._placements.values():
            by_resource.setdefault(placement.resource, []).append(placement)
        for resource, slots in by_resource.items():
            slots.sort(key=lambda p: p.start)
            for a, b in zip(slots, slots[1:]):
                if b.start + eps < a.finish:
                    raise SchedulingError(
                        f"tasks {a.task!r} and {b.task!r} overlap on {resource!r}"
                    )


class _ResourceTimeline:
    """Occupied intervals on one resource, supporting insertion placement."""

    def __init__(self) -> None:
        self._intervals: list[tuple[float, float]] = []

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= *ready* with a free gap of *duration*."""
        cursor = ready
        for start, finish in self._intervals:
            if cursor + duration <= start:
                break
            cursor = max(cursor, finish)
        return cursor

    def reserve(self, start: float, duration: float) -> None:
        insort(self._intervals, (start, start + duration))


def _feasible_resources(workflow: Workflow, continuum: Continuum) -> dict[str, list[str]]:
    feasible: dict[str, list[str]] = {}
    for task in workflow:
        nodes = [r.key for r in continuum if r.supports(task.requirements)]
        if not nodes:
            raise SchedulingError(
                f"no resource satisfies requirements {sorted(task.requirements)} "
                f"of task {task.key!r}"
            )
        feasible[task.key] = nodes
    return feasible


def _traced_schedule(name: str):
    """Wrap a ``schedule()`` method with optional telemetry.

    The wrapped method grows a keyword-only ``telemetry=`` parameter.
    ``None`` (the default) resolves to the null telemetry and takes the
    undecorated fast path; a real :class:`~repro.telemetry.Telemetry`
    traces the placement as a ``schedule.<name>`` span and logs a
    ``schedule.finish`` event.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, workflow, continuum, *, telemetry=None):
            tel = ensure(telemetry)
            if not tel.enabled:
                return fn(self, workflow, continuum)
            with tel.tracer.span(f"schedule.{name}", tasks=len(workflow)) as span:
                schedule = fn(self, workflow, continuum)
                span.tags.update(makespan=schedule.makespan)
                tel.log.info(
                    "schedule.finish",
                    scheduler=name,
                    tasks=len(workflow),
                    makespan=schedule.makespan,
                )
                return schedule

        return wrapper

    return decorate


class HeftScheduler:
    """Heterogeneous Earliest Finish Time list scheduling."""

    def __init__(self, *, insertion: bool = True) -> None:
        self.insertion = insertion

    def upward_ranks(
        self, workflow: Workflow, continuum: Continuum
    ) -> dict[str, float]:
        """HEFT upward ranks: mean execution + max over successors of
        (mean communication + successor rank), computed in one backward
        sweep over the topological order."""
        speeds = continuum.speeds
        mean_speed_inv = float((1.0 / speeds).mean())
        # Mean communication cost per data unit over distinct node pairs.
        n = len(continuum)
        if n > 1:
            off_diag = ~np.eye(n, dtype=bool)
            mean_inv_bw = float((1.0 / continuum.bandwidth[off_diag]).mean())
            mean_lat = float(continuum.latency[off_diag].mean())
        else:
            mean_inv_bw = 0.0
            mean_lat = 0.0

        ranks: dict[str, float] = {}
        for key in reversed(workflow.topological_order()):
            task = workflow[key]
            mean_exec = task.work * mean_speed_inv
            best = 0.0
            for succ in workflow.successors(key):
                comm = mean_lat + task.output_size * mean_inv_bw
                best = max(best, comm + ranks[succ])
            ranks[key] = mean_exec + best
        return ranks

    @_traced_schedule("heft")
    def schedule(self, workflow: Workflow, continuum: Continuum) -> Schedule:
        """Place every task; returns a validated :class:`Schedule`."""
        feasible = _feasible_resources(workflow, continuum)
        ranks = self.upward_ranks(workflow, continuum)
        order = sorted(workflow.task_keys, key=lambda k: (-ranks[k], k))

        timelines = {key: _ResourceTimeline() for key in continuum.keys}
        placements: dict[str, TaskPlacement] = {}
        for task_key in order:
            task = workflow[task_key]
            best: TaskPlacement | None = None
            for node_key in feasible[task_key]:
                resource = continuum[node_key]
                ready = 0.0
                for pred_key in workflow.predecessors(task_key):
                    pred = placements[pred_key]
                    arrival = pred.finish + continuum.transfer_time(
                        workflow[pred_key].output_size, pred.resource, node_key
                    )
                    ready = max(ready, arrival)
                duration = resource.execution_time(task.work)
                if self.insertion:
                    start = timelines[node_key].earliest_slot(ready, duration)
                else:
                    intervals = timelines[node_key]._intervals
                    start = max(
                        ready, intervals[-1][1] if intervals else 0.0
                    )
                candidate = TaskPlacement(
                    task_key, node_key, start, start + duration
                )
                if best is None or candidate.finish < best.finish:
                    best = candidate
            assert best is not None  # feasible[] is never empty
            timelines[best.resource].reserve(best.start, best.duration)
            placements[task_key] = best
        schedule = Schedule(workflow, continuum, placements)
        schedule.validate()
        return schedule


class EnergyAwareScheduler:
    """Greedy energy-aware placement with a bounded makespan penalty.

    For each task (in HEFT priority order) the scheduler picks the feasible
    resource minimizing marginal busy energy, among candidates whose finish
    time is within ``slack`` × the best achievable finish for that task.
    ``slack=1.0`` degenerates to HEFT; larger values trade makespan for
    energy — the knob the ablation benchmark sweeps.
    """

    def __init__(self, *, slack: float = 2.0) -> None:
        if slack < 1.0:
            raise SchedulingError(f"slack must be >= 1.0, got {slack}")
        self.slack = slack

    @_traced_schedule("energy")
    def schedule(self, workflow: Workflow, continuum: Continuum) -> Schedule:
        """Place every task; returns a validated :class:`Schedule`."""
        feasible = _feasible_resources(workflow, continuum)
        ranks = HeftScheduler().upward_ranks(workflow, continuum)
        order = sorted(workflow.task_keys, key=lambda k: (-ranks[k], k))

        timelines = {key: _ResourceTimeline() for key in continuum.keys}
        placements: dict[str, TaskPlacement] = {}
        for task_key in order:
            task = workflow[task_key]
            candidates: list[tuple[float, float, TaskPlacement]] = []
            for node_key in feasible[task_key]:
                resource = continuum[node_key]
                ready = 0.0
                for pred_key in workflow.predecessors(task_key):
                    pred = placements[pred_key]
                    arrival = pred.finish + continuum.transfer_time(
                        workflow[pred_key].output_size, pred.resource, node_key
                    )
                    ready = max(ready, arrival)
                duration = resource.execution_time(task.work)
                start = timelines[node_key].earliest_slot(ready, duration)
                energy = resource.busy_power * duration
                candidates.append(
                    (
                        energy,
                        start + duration,
                        TaskPlacement(task_key, node_key, start, start + duration),
                    )
                )
            best_finish = min(c[1] for c in candidates)
            admissible = [
                c for c in candidates if c[1] <= self.slack * best_finish
            ]
            energy, _, placement = min(
                admissible, key=lambda c: (c[0], c[1], c[2].resource)
            )
            timelines[placement.resource].reserve(placement.start, placement.duration)
            placements[task_key] = placement
        schedule = Schedule(workflow, continuum, placements)
        schedule.validate()
        return schedule


class RoundRobinScheduler:
    """Naive baseline: tasks in topological order, resources in rotation.

    Skips resources that do not satisfy a task's requirements (still
    rotating), and starts each task as early as dependencies and the
    resource timeline allow.
    """

    @_traced_schedule("round_robin")
    def schedule(self, workflow: Workflow, continuum: Continuum) -> Schedule:
        """Place every task; returns a validated :class:`Schedule`."""
        feasible = _feasible_resources(workflow, continuum)
        keys = continuum.keys
        timelines = {key: _ResourceTimeline() for key in keys}
        placements: dict[str, TaskPlacement] = {}
        cursor = 0
        for task_key in workflow.topological_order():
            task = workflow[task_key]
            for offset in range(len(keys)):
                node_key = keys[(cursor + offset) % len(keys)]
                if node_key in feasible[task_key]:
                    cursor = (cursor + offset + 1) % len(keys)
                    break
            else:  # pragma: no cover - _feasible_resources guarantees a hit
                raise SchedulingError(f"no feasible resource for {task_key!r}")
            resource = continuum[node_key]
            ready = 0.0
            for pred_key in workflow.predecessors(task_key):
                pred = placements[pred_key]
                arrival = pred.finish + continuum.transfer_time(
                    workflow[pred_key].output_size, pred.resource, node_key
                )
                ready = max(ready, arrival)
            duration = resource.execution_time(task.work)
            start = timelines[node_key].earliest_slot(ready, duration)
            placement = TaskPlacement(task_key, node_key, start, start + duration)
            timelines[node_key].reserve(start, duration)
            placements[task_key] = placement
        schedule = Schedule(workflow, continuum, placements)
        schedule.validate()
        return schedule
