"""Workflow scheduling on the Computing Continuum.

Implements the scheduling layer the paper's orchestration tools motivate:

* :class:`HeftScheduler` — the classic Heterogeneous Earliest Finish Time
  list scheduler (Topcuoglu et al. 2002): upward ranks computed in one
  backward pass with vectorized mean costs, then insertion-based earliest-
  finish placement.
* :class:`EnergyAwareScheduler` — greedy energy-aware placement (the PESOS
  idea transplanted to workflows): minimize marginal energy, with a
  configurable makespan-degradation bound.
* :class:`RoundRobinScheduler` — the naive baseline.

All schedulers honour task requirements versus resource capabilities and
return a :class:`Schedule` with per-task timing and the three figures of
merit: makespan, energy, and carbon.

``schedule()`` runs on the compiled core (:mod:`repro.continuum.compile`):
task/resource keys are lowered to integer ids once and every hot placement
quantity — ready times, durations, marginal energies — is an array
expression, which is what lets 10k-task × 1k-resource fleets schedule in
seconds.  The original pure-Python implementations are preserved verbatim
as ``schedule_reference()`` (and ``Schedule.validate_reference()``); the
compiled paths are **bit-identical** to them — same placements, same
starts/finishes, same tie-breaks — asserted across a workflow × fleet
grid by ``tests/test_compile.py`` and speed-gated by
``benchmarks/test_bench_scheduling.py``.

Every ``schedule()`` accepts an optional ``telemetry=`` keyword: when
bound, the placement runs inside a ``schedule.<name>`` span and emits a
``schedule.finish`` log event (scheduler, task count, makespan).  The
default is the shared zero-overhead null telemetry.  An optional
``problem=`` keyword accepts a precompiled
:class:`~repro.continuum.compile.CompiledProblem` so callers placing the
same workflow × continuum pairing repeatedly (sweeps, benchmarks) pay the
compilation exactly once.
"""

from __future__ import annotations

import functools
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.continuum.compile import (
    CompiledProblem,
    ResourceTimeline,
    compile_problem,
    energy_placements,
    heft_placements,
    round_robin_placements,
    upward_rank_array,
)
from repro.continuum.resources import Continuum
from repro.continuum.workflow import Workflow
from repro.errors import SchedulingError
from repro.telemetry import ensure

__all__ = [
    "TaskPlacement",
    "Schedule",
    "HeftScheduler",
    "EnergyAwareScheduler",
    "RoundRobinScheduler",
]

#: Historical name: the timeline lives in the compile module now (both the
#: compiled kernels and the reference schedulers share it), with a public
#: ``last_finish``/``tail()`` API replacing the old ``_intervals``
#: reach-through.
_ResourceTimeline = ResourceTimeline


@dataclass(frozen=True, slots=True)
class TaskPlacement:
    """Where and when one task runs."""

    task: str
    resource: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Schedule:
    """A complete placement of a workflow on a continuum."""

    def __init__(
        self,
        workflow: Workflow,
        continuum: Continuum,
        placements: Mapping[str, TaskPlacement],
    ) -> None:
        missing = set(workflow.task_keys) - set(placements)
        if missing:
            raise SchedulingError(f"unplaced tasks: {sorted(missing)}")
        extra = set(placements) - set(workflow.task_keys)
        if extra:
            raise SchedulingError(f"placements for unknown tasks: {sorted(extra)}")
        self.workflow = workflow
        self.continuum = continuum
        self._placements = dict(placements)
        # The placement map is frozen after construction, so the sorted
        # view and the makespan are computed once on first access —
        # validate(), the tracing wrapper, and the simulator all hit them
        # repeatedly on the same schedule.
        self._sorted_placements: tuple[TaskPlacement, ...] | None = None
        self._makespan: float | None = None

    def __getitem__(self, task: str) -> TaskPlacement:
        try:
            return self._placements[task]
        except KeyError:
            raise SchedulingError(f"no placement for task {task!r}") from None

    @property
    def placements(self) -> tuple[TaskPlacement, ...]:
        """All placements, ordered by start time (stable on ties); cached."""
        if self._sorted_placements is None:
            self._sorted_placements = tuple(
                sorted(self._placements.values(), key=lambda p: (p.start, p.task))
            )
        return self._sorted_placements

    @property
    def makespan(self) -> float:
        """Completion time of the last task; cached."""
        if self._makespan is None:
            self._makespan = max(p.finish for p in self._placements.values())
        return self._makespan

    def busy_energy(self) -> float:
        """Joules consumed executing tasks (busy power × duration)."""
        total = 0.0
        for placement in self._placements.values():
            resource = self.continuum[placement.resource]
            total += resource.busy_power * placement.duration
        return total

    def total_energy(self) -> float:
        """Busy energy plus idle energy of every node over the makespan.

        Idle draw applies to each node for the whole makespan minus its own
        busy time — the platform-level view PESOS-style consolidation cares
        about (idle nodes still burn power unless switched off).
        """
        makespan = self.makespan
        busy_time = {key: 0.0 for key in self.continuum.keys}
        for placement in self._placements.values():
            busy_time[placement.resource] += placement.duration
        total = self.busy_energy()
        for resource in self.continuum:
            idle = max(0.0, makespan - busy_time[resource.key])
            total += resource.idle_power * idle
        return total

    def carbon(self) -> float:
        """Busy energy weighted by each node's carbon intensity."""
        total = 0.0
        for placement in self._placements.values():
            resource = self.continuum[placement.resource]
            total += (
                resource.busy_power
                * placement.duration
                * resource.carbon_intensity
            )
        return total

    def validate(self, *, problem: CompiledProblem | None = None) -> None:
        """Check dependency and exclusivity invariants.

        * every task starts at or after every predecessor's finish (plus
          the required transfer time);
        * no two tasks overlap on the same resource.

        Raises :class:`SchedulingError` on the first violation.

        The checks run as three array expressions (per-task timing, one
        gather over all edges, consecutive-slot comparison per resource);
        when a violation is detected the original loop implementation
        (:meth:`validate_reference`) re-runs to raise the identical
        first-violation error.  ``problem`` optionally supplies a
        precompiled :class:`~repro.continuum.compile.CompiledProblem` to
        skip rebuilding the id maps and adjacency.
        """
        eps = 1e-9
        if problem is None:
            problem = compile_problem(self.workflow, self.continuum)
        cw, cc = problem.cw, problem.cc

        n = cw.n_tasks
        start = np.empty(n, dtype=np.float64)
        finish = np.empty(n, dtype=np.float64)
        res = np.empty(n, dtype=np.intp)
        placements = self._placements
        rindex = cc.index
        for i, key in enumerate(cw.keys):
            p = placements[key]
            start[i] = p.start
            finish[i] = p.finish
            res[i] = rindex[p.resource]

        ok = not bool((start < -eps).any() or (finish < start - eps).any())
        if ok and cw.pred_ids.size:
            # One gather over every (pred, task) edge: arrival is
            # pred_finish + latency + size / bandwidth, IEEE-identical to
            # Continuum.transfer_time.
            dst = np.repeat(
                np.arange(n, dtype=np.intp), np.diff(cw.pred_indptr)
            )
            src = cw.pred_ids
            arrival = finish[src] + (
                cc.latency[res[src], res[dst]]
                + cw.output_size[src] / cc.bandwidth[res[src], res[dst]]
            )
            ok = not bool((start[dst] + eps < arrival).any())
        if ok and n > 1:
            # Per-resource consecutive-slot check, replicating the
            # reference order: stable sort by (resource, start) keeps
            # placement-map order on ties, exactly like the per-resource
            # lists the loop builds.
            vals = list(placements.values())
            v_start = np.asarray([p.start for p in vals])
            v_finish = np.asarray([p.finish for p in vals])
            v_res = np.asarray([rindex[p.resource] for p in vals])
            order = np.lexsort((v_start, v_res))
            s_res = v_res[order]
            same = s_res[1:] == s_res[:-1]
            ok = not bool(
                (v_start[order][1:] + eps < v_finish[order][:-1])[same].any()
            )
        if ok:
            return
        self.validate_reference()
        raise SchedulingError(
            "schedule failed vectorized validation"
        )  # pragma: no cover - reference raises first

    def validate_reference(self) -> None:
        """The original loop validator — raises the first violation found.

        Kept as the arbiter for error ordering/messages and as the parity
        reference for :meth:`validate`.
        """
        eps = 1e-9
        for task_key in self.workflow.task_keys:
            placement = self[task_key]
            if placement.start < -eps or placement.finish < placement.start - eps:
                raise SchedulingError(f"task {task_key!r} has invalid timing")
            for pred_key in self.workflow.predecessors(task_key):
                pred = self[pred_key]
                transfer = self.continuum.transfer_time(
                    self.workflow[pred_key].output_size,
                    pred.resource,
                    placement.resource,
                )
                if placement.start + eps < pred.finish + transfer:
                    raise SchedulingError(
                        f"task {task_key!r} starts before data from "
                        f"{pred_key!r} arrives"
                    )
        by_resource: dict[str, list[TaskPlacement]] = {}
        for placement in self._placements.values():
            by_resource.setdefault(placement.resource, []).append(placement)
        for resource, slots in by_resource.items():
            slots.sort(key=lambda p: p.start)
            for a, b in zip(slots, slots[1:]):
                if b.start + eps < a.finish:
                    raise SchedulingError(
                        f"tasks {a.task!r} and {b.task!r} overlap on {resource!r}"
                    )


def _feasible_resources(workflow: Workflow, continuum: Continuum) -> dict[str, list[str]]:
    feasible: dict[str, list[str]] = {}
    for task in workflow:
        nodes = [r.key for r in continuum if r.supports(task.requirements)]
        if not nodes:
            raise SchedulingError(
                f"no resource satisfies requirements {sorted(task.requirements)} "
                f"of task {task.key!r}"
            )
        feasible[task.key] = nodes
    return feasible


def _traced_schedule(name: str):
    """Wrap a ``schedule()`` method with optional telemetry.

    The wrapped method grows a keyword-only ``telemetry=`` parameter.
    ``None`` (the default) resolves to the null telemetry and takes the
    undecorated fast path; a real :class:`~repro.telemetry.Telemetry`
    traces the placement as a ``schedule.<name>`` span and logs a
    ``schedule.finish`` event.  Other keywords (``problem=``) pass
    through to the wrapped method.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, workflow, continuum, *, telemetry=None, **kwargs):
            tel = ensure(telemetry)
            if not tel.enabled:
                return fn(self, workflow, continuum, **kwargs)
            with tel.tracer.span(f"schedule.{name}", tasks=len(workflow)) as span:
                schedule = fn(self, workflow, continuum, **kwargs)
                span.tags.update(makespan=schedule.makespan)
                tel.log.info(
                    "schedule.finish",
                    scheduler=name,
                    tasks=len(workflow),
                    makespan=schedule.makespan,
                )
                return schedule

        return wrapper

    return decorate


def _build_schedule(
    problem: CompiledProblem,
    res_of: np.ndarray,
    start_of: np.ndarray,
    fin_of: np.ndarray,
) -> Schedule:
    """Lift kernel id/time arrays into a validated :class:`Schedule`."""
    cw = problem.cw
    res_keys = problem.cc.keys
    starts = start_of.tolist()
    finishes = fin_of.tolist()
    resources = res_of.tolist()
    placements = {
        key: TaskPlacement(key, res_keys[resources[i]], starts[i], finishes[i])
        for i, key in enumerate(cw.keys)
    }
    schedule = Schedule(problem.workflow, problem.continuum, placements)
    schedule.validate(problem=problem)
    return schedule


class HeftScheduler:
    """Heterogeneous Earliest Finish Time list scheduling."""

    def __init__(self, *, insertion: bool = True) -> None:
        self.insertion = insertion

    def upward_ranks(
        self, workflow: Workflow, continuum: Continuum
    ) -> dict[str, float]:
        """HEFT upward ranks: mean execution + max over successors of
        (mean communication + successor rank), computed in one vectorized
        backward sweep (bit-identical to :meth:`upward_ranks_reference`)."""
        problem = compile_problem(workflow, continuum)
        ranks = upward_rank_array(problem)
        return dict(zip(problem.cw.keys, ranks.tolist()))

    def upward_ranks_reference(
        self, workflow: Workflow, continuum: Continuum
    ) -> dict[str, float]:
        """The original per-task rank loop (parity reference)."""
        speeds = continuum.speeds
        mean_speed_inv = float((1.0 / speeds).mean())
        # Mean communication cost per data unit over distinct node pairs.
        n = len(continuum)
        if n > 1:
            off_diag = ~np.eye(n, dtype=bool)
            mean_inv_bw = float((1.0 / continuum.bandwidth[off_diag]).mean())
            mean_lat = float(continuum.latency[off_diag].mean())
        else:
            mean_inv_bw = 0.0
            mean_lat = 0.0

        ranks: dict[str, float] = {}
        for key in reversed(workflow.topological_order()):
            task = workflow[key]
            mean_exec = task.work * mean_speed_inv
            best = 0.0
            for succ in workflow.successors(key):
                comm = mean_lat + task.output_size * mean_inv_bw
                best = max(best, comm + ranks[succ])
            ranks[key] = mean_exec + best
        return ranks

    @_traced_schedule("heft")
    def schedule(
        self,
        workflow: Workflow,
        continuum: Continuum,
        *,
        problem: CompiledProblem | None = None,
    ) -> Schedule:
        """Place every task; returns a validated :class:`Schedule`."""
        if problem is None:
            problem = compile_problem(workflow, continuum)
        res_of, start_of, fin_of = heft_placements(
            problem, insertion=self.insertion
        )
        return _build_schedule(problem, res_of, start_of, fin_of)

    def schedule_reference(
        self, workflow: Workflow, continuum: Continuum
    ) -> Schedule:
        """The original pure-Python HEFT (parity/speedup reference)."""
        feasible = _feasible_resources(workflow, continuum)
        ranks = self.upward_ranks_reference(workflow, continuum)
        order = sorted(workflow.task_keys, key=lambda k: (-ranks[k], k))

        timelines = {key: _ResourceTimeline() for key in continuum.keys}
        placements: dict[str, TaskPlacement] = {}
        for task_key in order:
            task = workflow[task_key]
            best: TaskPlacement | None = None
            for node_key in feasible[task_key]:
                resource = continuum[node_key]
                ready = 0.0
                for pred_key in workflow.predecessors(task_key):
                    pred = placements[pred_key]
                    arrival = pred.finish + continuum.transfer_time(
                        workflow[pred_key].output_size, pred.resource, node_key
                    )
                    ready = max(ready, arrival)
                duration = resource.execution_time(task.work)
                if self.insertion:
                    start = timelines[node_key].earliest_slot(ready, duration)
                else:
                    start = max(ready, timelines[node_key].last_finish)
                candidate = TaskPlacement(
                    task_key, node_key, start, start + duration
                )
                if best is None or candidate.finish < best.finish:
                    best = candidate
            assert best is not None  # feasible[] is never empty
            timelines[best.resource].reserve(best.start, best.duration)
            placements[task_key] = best
        schedule = Schedule(workflow, continuum, placements)
        schedule.validate_reference()
        return schedule


class EnergyAwareScheduler:
    """Greedy energy-aware placement with a bounded makespan penalty.

    For each task (in HEFT priority order) the scheduler picks the feasible
    resource minimizing marginal busy energy, among candidates whose finish
    time is within ``slack`` × the best achievable finish for that task.
    ``slack=1.0`` degenerates to HEFT; larger values trade makespan for
    energy — the knob the ablation benchmark sweeps.
    """

    def __init__(self, *, slack: float = 2.0) -> None:
        if slack < 1.0:
            raise SchedulingError(f"slack must be >= 1.0, got {slack}")
        self.slack = slack

    @_traced_schedule("energy")
    def schedule(
        self,
        workflow: Workflow,
        continuum: Continuum,
        *,
        problem: CompiledProblem | None = None,
    ) -> Schedule:
        """Place every task; returns a validated :class:`Schedule`."""
        if problem is None:
            problem = compile_problem(workflow, continuum)
        res_of, start_of, fin_of = energy_placements(problem, slack=self.slack)
        return _build_schedule(problem, res_of, start_of, fin_of)

    def schedule_reference(
        self, workflow: Workflow, continuum: Continuum
    ) -> Schedule:
        """The original pure-Python placement (parity reference)."""
        feasible = _feasible_resources(workflow, continuum)
        ranks = HeftScheduler().upward_ranks_reference(workflow, continuum)
        order = sorted(workflow.task_keys, key=lambda k: (-ranks[k], k))

        timelines = {key: _ResourceTimeline() for key in continuum.keys}
        placements: dict[str, TaskPlacement] = {}
        for task_key in order:
            task = workflow[task_key]
            candidates: list[tuple[float, float, TaskPlacement]] = []
            for node_key in feasible[task_key]:
                resource = continuum[node_key]
                ready = 0.0
                for pred_key in workflow.predecessors(task_key):
                    pred = placements[pred_key]
                    arrival = pred.finish + continuum.transfer_time(
                        workflow[pred_key].output_size, pred.resource, node_key
                    )
                    ready = max(ready, arrival)
                duration = resource.execution_time(task.work)
                start = timelines[node_key].earliest_slot(ready, duration)
                energy = resource.busy_power * duration
                candidates.append(
                    (
                        energy,
                        start + duration,
                        TaskPlacement(task_key, node_key, start, start + duration),
                    )
                )
            best_finish = min(c[1] for c in candidates)
            admissible = [
                c for c in candidates if c[1] <= self.slack * best_finish
            ]
            energy, _, placement = min(
                admissible, key=lambda c: (c[0], c[1], c[2].resource)
            )
            timelines[placement.resource].reserve(placement.start, placement.duration)
            placements[task_key] = placement
        schedule = Schedule(workflow, continuum, placements)
        schedule.validate_reference()
        return schedule


class RoundRobinScheduler:
    """Naive baseline: tasks in topological order, resources in rotation.

    Skips resources that do not satisfy a task's requirements (still
    rotating), and starts each task as early as dependencies and the
    resource timeline allow.
    """

    @_traced_schedule("round_robin")
    def schedule(
        self,
        workflow: Workflow,
        continuum: Continuum,
        *,
        problem: CompiledProblem | None = None,
    ) -> Schedule:
        """Place every task; returns a validated :class:`Schedule`."""
        if problem is None:
            problem = compile_problem(workflow, continuum)
        res_of, start_of, fin_of = round_robin_placements(problem)
        return _build_schedule(problem, res_of, start_of, fin_of)

    def schedule_reference(
        self, workflow: Workflow, continuum: Continuum
    ) -> Schedule:
        """The original pure-Python rotation (parity reference)."""
        feasible = _feasible_resources(workflow, continuum)
        keys = continuum.keys
        timelines = {key: _ResourceTimeline() for key in keys}
        placements: dict[str, TaskPlacement] = {}
        cursor = 0
        for task_key in workflow.topological_order():
            task = workflow[task_key]
            for offset in range(len(keys)):
                node_key = keys[(cursor + offset) % len(keys)]
                if node_key in feasible[task_key]:
                    cursor = (cursor + offset + 1) % len(keys)
                    break
            else:  # pragma: no cover - _feasible_resources guarantees a hit
                raise SchedulingError(f"no feasible resource for {task_key!r}")
            resource = continuum[node_key]
            ready = 0.0
            for pred_key in workflow.predecessors(task_key):
                pred = placements[pred_key]
                arrival = pred.finish + continuum.transfer_time(
                    workflow[pred_key].output_size, pred.resource, node_key
                )
                ready = max(ready, arrival)
            duration = resource.execution_time(task.work)
            start = timelines[node_key].earliest_slot(ready, duration)
            placement = TaskPlacement(task_key, node_key, start, start + duration)
            timelines[node_key].reserve(start, duration)
            placements[task_key] = placement
        schedule = Schedule(workflow, continuum, placements)
        schedule.validate_reference()
        return schedule
