"""Failure injection: executing plans on unreliable resources.

The paper's discussion (Sec. 4) flags *fault tolerance* as a direction the
surveyed ecosystem does not yet cover.  This module supplies the substrate
to study it: a schedule is replayed on resources that fail according to
seeded exponential (Poisson-process) inter-failure times; a failure kills
the running task's attempt (its work is lost) and takes the resource down
for a repair interval.  Two recovery policies:

* ``"restart"`` — re-run the attempt on the same resource once repaired;
* ``"migrate"`` — move the task to the feasible resource that can finish
  it earliest (checkpoint-free migration: the attempt restarts from zero).

The replay is a *list-scheduling replay*: tasks run in dependency
(topological) order, each starting as soon as its inputs have arrived and
its resource is free — the plan fixes the task→resource mapping, reality
fixes the timing.  Returned metrics quantify the fault-tolerance cost:
failure count, retries, lost work, and makespan inflation.

Passing ``telemetry=`` traces the replay (``simulate_failures`` span),
logs every killed attempt (``sim.failure``), and mirrors the cost into
the ``sim.failures_injected`` / ``sim.retries`` / ``sim.migrations`` /
``sim.events`` counters that :func:`repro.obs.build_simulation_record`
lifts into the run ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.continuum.resources import Continuum
from repro.continuum.scheduling import Schedule, TaskPlacement
from repro.errors import ContinuumError
from repro.telemetry import ensure

__all__ = ["FailureTrace", "simulate_with_failures"]


@dataclass(frozen=True, slots=True)
class FailureTrace:
    """Outcome of executing a schedule under failures.

    Attributes
    ----------
    placements:
        Final successful attempt of every task.
    makespan:
        Realized completion time.
    planned_makespan:
        The failure-free plan's makespan.
    n_failures:
        Attempts killed by resource failures.
    n_migrations:
        Tasks that ended up on a different resource than planned.
    lost_work:
        Total seconds of execution destroyed by failures.
    """

    placements: tuple[TaskPlacement, ...]
    makespan: float
    planned_makespan: float
    n_failures: int
    n_migrations: int
    lost_work: float

    @property
    def slowdown(self) -> float:
        return self.makespan / self.planned_makespan


class _FailureClock:
    """Per-resource Poisson failure process, sampled lazily."""

    def __init__(self, keys, mtbf: float, rng: np.random.Generator) -> None:
        self._mtbf = mtbf
        self._rng = rng
        self._next: dict[str, float] = {
            key: float(rng.exponential(mtbf)) for key in keys
        }
        #: Failures that fired (harmless idle reboots included) — the
        #: ``sim.failures_injected`` counter.
        self.consumed = 0

    def next_failure(self, resource: str) -> float:
        return self._next[resource]

    def consume(self, resource: str) -> None:
        """The pending failure happened; sample the next one."""
        self.consumed += 1
        self._next[resource] += float(self._rng.exponential(self._mtbf))

    def advance_past(self, resource: str, time: float) -> None:
        """Discard failures that elapsed while the resource was idle.

        A failure of an idle node is modelled as harmless (it reboots with
        nothing to lose), so pending failure times strictly before *time*
        are skipped.
        """
        while self._next[resource] < time:
            self.consume(resource)


def simulate_with_failures(
    schedule: Schedule,
    *,
    mtbf: float,
    repair_time: float,
    policy: str = "restart",
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    max_attempts: int = 50,
    telemetry=None,
) -> FailureTrace:
    """Replay *schedule* with exponential failures of rate ``1/mtbf``.

    Parameters
    ----------
    schedule:
        The plan (fixes the task→resource mapping and task order).
    mtbf:
        Mean time between failures per resource, in simulated seconds.
    repair_time:
        Downtime after each failure.
    policy:
        ``"restart"`` or ``"migrate"`` (see module docstring).
    seed:
        Seeds both the failure process and migration tie-breaks.
    rng:
        Pre-built generator, as an alternative to *seed* (at most one of
        the two) — lets batch drivers like
        :mod:`repro.continuum.montecarlo` hand in per-replication
        spawned streams.
    max_attempts:
        Abort with :class:`ContinuumError` if one task fails this often —
        guards against ``mtbf`` far below task durations.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when bound the replay
        is traced (``simulate_failures`` span), every killed attempt is
        logged (``sim.failure``), and the counters
        ``sim.failures_injected`` (failures fired, harmless idle reboots
        included), ``sim.retries`` (attempts killed mid-execution),
        ``sim.migrations``, ``sim.events`` (attempts started) and
        ``sim.tasks`` feed the run-ledger metrics snapshot.
    """
    if mtbf <= 0:
        raise ContinuumError("mtbf must be > 0")
    if repair_time < 0:
        raise ContinuumError("repair_time must be >= 0")
    if policy not in ("restart", "migrate"):
        raise ContinuumError(f"unknown policy {policy!r}")
    if max_attempts < 1:
        raise ContinuumError("max_attempts must be >= 1")
    if rng is not None and seed is not None:
        raise ContinuumError("provide either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)

    tel = ensure(telemetry)
    if not tel.enabled:
        return _replay(schedule, mtbf, repair_time, policy, rng, max_attempts, tel)[0]
    with tel.tracer.span(
        "simulate_failures",
        policy=policy,
        mtbf=mtbf,
        tasks=len(schedule.workflow),
    ) as span:
        trace, injected, attempts = _replay(
            schedule, mtbf, repair_time, policy, rng, max_attempts, tel
        )
        span.tags.update(
            makespan=trace.makespan,
            failures=trace.n_failures,
            migrations=trace.n_migrations,
        )
        metrics = tel.metrics
        metrics.counter("sim.failures_injected").inc(injected)
        metrics.counter("sim.retries").inc(trace.n_failures)
        metrics.counter("sim.migrations").inc(trace.n_migrations)
        metrics.counter("sim.events").inc(attempts)
        metrics.counter("sim.tasks").inc(len(trace.placements))
        tel.log.info(
            "sim.finish",
            tasks=len(trace.placements),
            events=attempts,
            failures_injected=injected,
            retries=trace.n_failures,
            migrations=trace.n_migrations,
            makespan=trace.makespan,
            slowdown=trace.slowdown,
            lost_work=trace.lost_work,
        )
    return trace


def _replay(
    schedule: Schedule,
    mtbf: float,
    repair_time: float,
    policy: str,
    rng: np.random.Generator,
    max_attempts: int,
    tel,
) -> tuple[FailureTrace, int, int]:
    """The replay loop; returns (trace, failures fired, attempts started)."""
    workflow = schedule.workflow
    continuum: Continuum = schedule.continuum
    clock = _FailureClock(continuum.keys, mtbf, rng)

    resource_free: dict[str, float] = {key: 0.0 for key in continuum.keys}
    finished: dict[str, TaskPlacement] = {}
    n_failures = 0
    n_migrations = 0
    lost_work = 0.0
    attempts_started = 0

    def data_ready(task_key: str, on_resource: str) -> float:
        ready = 0.0
        for pred in workflow.predecessors(task_key):
            placement = finished[pred]
            arrival = placement.finish + continuum.transfer_time(
                workflow[pred].output_size, placement.resource, on_resource
            )
            ready = max(ready, arrival)
        return ready

    # Replay in the plan's global start order restricted to a valid
    # topological order (the plan's start order IS topological: a schedule
    # validates that successors start after predecessors finish).
    order = [p.task for p in schedule.placements]

    for task_key in order:
        task = workflow[task_key]
        resource_key = schedule[task_key].resource
        attempts = 0
        while True:
            if attempts >= max_attempts:
                raise ContinuumError(
                    f"task {task_key!r} failed {attempts} times; "
                    f"mtbf={mtbf} is too small for its duration"
                )
            attempts_started += 1
            resource = continuum[resource_key]
            duration = resource.execution_time(task.work)
            start = max(
                resource_free[resource_key],
                data_ready(task_key, resource_key),
            )
            clock.advance_past(resource_key, start)
            failure = clock.next_failure(resource_key)
            if failure >= start + duration:
                finish = start + duration
                resource_free[resource_key] = finish
                finished[task_key] = TaskPlacement(
                    task_key, resource_key, start, finish
                )
                break
            # The attempt dies at the failure instant.
            attempts += 1
            n_failures += 1
            lost_work += failure - start
            clock.consume(resource_key)
            resource_free[resource_key] = failure + repair_time
            if tel.enabled:
                tel.log.debug(
                    "sim.failure",
                    task=task_key,
                    resource=resource_key,
                    at=failure,
                    lost=failure - start,
                    attempt=attempts,
                    policy=policy,
                )
            if policy == "migrate":
                # Earliest-finish feasible resource for the retry.
                candidates = []
                for other in continuum:
                    if not other.supports(task.requirements):
                        continue
                    retry_start = max(
                        resource_free[other.key],
                        data_ready(task_key, other.key),
                    )
                    retry_finish = retry_start + other.execution_time(task.work)
                    candidates.append((retry_finish, other.key))
                if not candidates:  # pragma: no cover - plan was feasible
                    raise ContinuumError(
                        f"no feasible resource left for {task_key!r}"
                    )
                _, best_key = min(candidates)
                if best_key != resource_key:
                    resource_key = best_key

    makespan = max(p.finish for p in finished.values())
    n_migrations = sum(
        1
        for task_key, placement in finished.items()
        if placement.resource != schedule[task_key].resource
    )
    trace = FailureTrace(
        placements=tuple(
            sorted(finished.values(), key=lambda p: (p.start, p.task))
        ),
        makespan=float(makespan),
        planned_makespan=schedule.makespan,
        n_failures=n_failures,
        n_migrations=n_migrations,
        lost_work=float(lost_work),
    )
    return trace, clock.consumed, attempts_started
