"""Platform power accounting over time.

Turns a :class:`~repro.continuum.scheduling.Schedule` (or an
:class:`~repro.continuum.simulate.ExecutionTrace`) into a platform power
*trace*: the piecewise-constant total power draw over the makespan, built
vectorized from start/finish events.  From the trace come the figures of
merit energy studies report:

* peak platform power (provisioning limit),
* average power,
* total energy (trapezoid-free exact integral of the step function),
* energy-delay product (EDP) and energy-delay² (ED2P),
* per-tier energy breakdown (HPC / cloud / edge).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.continuum.resources import Continuum, ResourceKind
from repro.continuum.scheduling import Schedule, TaskPlacement
from repro.errors import ContinuumError

__all__ = ["PowerTrace", "power_trace", "energy_report"]


@dataclass(frozen=True, slots=True)
class PowerTrace:
    """A piecewise-constant platform power profile.

    Attributes
    ----------
    times:
        Breakpoints, starting at 0.0 and ending at the makespan.
    power:
        Total platform power on ``[times[i], times[i+1])``; one entry
        fewer than :attr:`times`.
    """

    times: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        if self.times.ndim != 1 or self.power.ndim != 1:
            raise ContinuumError("trace arrays must be 1-D")
        if len(self.times) != len(self.power) + 1:
            raise ContinuumError("need one more breakpoint than power level")
        if (np.diff(self.times) < -1e-12).any():
            raise ContinuumError("breakpoints must be non-decreasing")
        self.times.setflags(write=False)
        self.power.setflags(write=False)

    @property
    def makespan(self) -> float:
        return float(self.times[-1] - self.times[0])

    def peak_power(self) -> float:
        """Highest instantaneous platform power."""
        return float(self.power.max())

    def energy(self) -> float:
        """Exact integral of the step function (joules)."""
        return float((self.power * np.diff(self.times)).sum())

    def average_power(self) -> float:
        """Energy divided by makespan."""
        if self.makespan == 0:
            raise ContinuumError("zero-length trace has no average power")
        return self.energy() / self.makespan

    def power_at(self, time: float) -> float:
        """Platform power at an instant (right-continuous)."""
        if not self.times[0] <= time <= self.times[-1]:
            raise ContinuumError(
                f"time {time} outside trace [{self.times[0]}, {self.times[-1]}]"
            )
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        index = min(index, len(self.power) - 1)
        return float(self.power[index])


def _placements_of(source: Schedule | Sequence[TaskPlacement]) -> tuple[TaskPlacement, ...]:
    if isinstance(source, Schedule):
        return source.placements
    return tuple(source)


def power_trace(
    schedule: Schedule,
    *,
    include_idle: bool = True,
) -> PowerTrace:
    """Build the platform power trace of a schedule.

    Each resource draws busy power while running a task; with
    *include_idle* it draws idle power otherwise (the platform view), else
    0 (the workload-attributable view).  Built vectorized: one +delta/-delta
    event pair per placement, sorted, cumulative-summed.
    """
    continuum: Continuum = schedule.continuum
    placements = schedule.placements
    makespan = schedule.makespan

    base = 0.0
    if include_idle:
        base = float(continuum.idle_powers.sum())

    deltas: list[tuple[float, float]] = []
    for placement in placements:
        resource = continuum[placement.resource]
        step = resource.busy_power - (
            resource.idle_power if include_idle else 0.0
        )
        deltas.append((placement.start, step))
        deltas.append((placement.finish, -step))
    if not deltas:
        return PowerTrace(
            np.asarray([0.0, max(makespan, 0.0)]),
            np.asarray([base]),
        )
    events = np.asarray(deltas, dtype=np.float64)
    order = np.argsort(events[:, 0], kind="stable")
    events = events[order]
    times = np.concatenate(([0.0], events[:, 0], [makespan]))
    levels = base + np.concatenate(([0.0], np.cumsum(events[:, 1])))
    # Deduplicate zero-width segments for a clean trace.
    keep = np.diff(times) > 1e-15
    segment_starts = times[:-1][keep]
    segment_levels = levels[keep]
    trace_times = np.concatenate((segment_starts, [times[-1]]))
    return PowerTrace(trace_times, segment_levels)


def energy_report(schedule: Schedule) -> dict[str, float]:
    """All energy figures of merit for one schedule.

    Keys: ``makespan``, ``peak_power``, ``average_power``, ``energy``,
    ``edp``, ``ed2p``, ``carbon``, plus ``energy_<tier>`` per continuum
    tier present (busy energy attributable to that tier).
    """
    trace = power_trace(schedule, include_idle=True)
    makespan = schedule.makespan
    energy = trace.energy()
    report: dict[str, float] = {
        "makespan": makespan,
        "peak_power": trace.peak_power(),
        "average_power": trace.average_power(),
        "energy": energy,
        "edp": energy * makespan,
        "ed2p": energy * makespan * makespan,
        "carbon": schedule.carbon(),
    }
    for kind in ResourceKind:
        members = {r.key for r in schedule.continuum.by_kind(kind)}
        if not members:
            continue
        tier_energy = sum(
            schedule.continuum[p.resource].busy_power * p.duration
            for p in schedule.placements
            if p.resource in members
        )
        report[f"energy_{kind.value}"] = float(tier_energy)
    return report
