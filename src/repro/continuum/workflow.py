"""Workflow DAG model.

The paper's subject matter — scientific workflows in the Computing
Continuum — needs an executable substrate: a task graph with costs and data
dependencies.  :class:`Workflow` validates acyclicity, exposes topological
order, critical-path analysis (vectorized longest path over the topological
order), and a seeded random generator for benchmark workloads.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError, WorkflowGraphError

__all__ = ["Task", "Workflow", "random_workflow", "layered_workflow"]


@dataclass(frozen=True, slots=True)
class Task:
    """One workflow step.

    Parameters
    ----------
    key:
        Unique task identifier within its workflow.
    work:
        Computational cost in abstract operations (e.g. GFLOP); execution
        time on a resource is ``work / speed``.
    output_size:
        Data produced for each successor, in abstract units (e.g. GB);
        transfer time over a link is ``output_size / bandwidth``.
    requirements:
        Non-functional tags a resource must offer (e.g. ``{"gpu"}``).
    """

    key: str
    work: float
    output_size: float = 0.0
    requirements: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("task key must be non-empty")
        if self.work <= 0:
            raise ValidationError(f"task {self.key!r}: work must be > 0")
        if self.output_size < 0:
            raise ValidationError(f"task {self.key!r}: output_size must be >= 0")
        object.__setattr__(self, "requirements", frozenset(self.requirements))


class Workflow:
    """A directed acyclic graph of :class:`Task` objects.

    Edges point from producer to consumer.  Construction validates that all
    edges reference known tasks and the graph is acyclic; topological order
    is computed once (Kahn's algorithm) and cached.
    """

    def __init__(
        self,
        name: str,
        tasks: Iterable[Task],
        edges: Iterable[tuple[str, str]] = (),
    ) -> None:
        if not name:
            raise ValidationError("workflow name must be non-empty")
        self.name = name
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            if task.key in self._tasks:
                raise WorkflowGraphError(f"duplicate task {task.key!r}")
            self._tasks[task.key] = task
        if not self._tasks:
            raise WorkflowGraphError("workflow needs at least one task")

        self._successors: dict[str, list[str]] = {k: [] for k in self._tasks}
        self._predecessors: dict[str, list[str]] = {k: [] for k in self._tasks}
        seen_edges: set[tuple[str, str]] = set()
        for src, dst in edges:
            if src not in self._tasks or dst not in self._tasks:
                raise WorkflowGraphError(f"edge ({src!r}, {dst!r}) references unknown task")
            if src == dst:
                raise WorkflowGraphError(f"self-loop on {src!r}")
            if (src, dst) in seen_edges:
                continue
            seen_edges.add((src, dst))
            self._successors[src].append(dst)
            self._predecessors[dst].append(src)
        self._topo = self._topological_order()

    # -- structure -------------------------------------------------------------

    def _topological_order(self) -> tuple[str, ...]:
        in_degree = {k: len(v) for k, v in self._predecessors.items()}
        ready = [k for k, d in in_degree.items() if d == 0]
        order: list[str] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in self._successors[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            raise WorkflowGraphError(f"workflow {self.name!r} contains a cycle")
        return tuple(order)

    @property
    def tasks(self) -> tuple[Task, ...]:
        """Tasks in insertion order."""
        return tuple(self._tasks.values())

    @property
    def task_keys(self) -> tuple[str, ...]:
        return tuple(self._tasks)

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        """All edges as (producer, consumer) pairs."""
        return tuple(
            (src, dst)
            for src, dsts in self._successors.items()
            for dst in dsts
        )

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, key: object) -> bool:
        return key in self._tasks

    def __getitem__(self, key: str) -> Task:
        try:
            return self._tasks[key]
        except KeyError:
            raise WorkflowGraphError(f"unknown task {key!r}") from None

    def successors(self, key: str) -> tuple[str, ...]:
        """Direct consumers of *key*."""
        self[key]
        return tuple(self._successors[key])

    def predecessors(self, key: str) -> tuple[str, ...]:
        """Direct producers feeding *key*."""
        self[key]
        return tuple(self._predecessors[key])

    def sources(self) -> tuple[str, ...]:
        """Tasks with no predecessors."""
        return tuple(k for k in self._tasks if not self._predecessors[k])

    def sinks(self) -> tuple[str, ...]:
        """Tasks with no successors."""
        return tuple(k for k in self._tasks if not self._successors[k])

    def topological_order(self) -> tuple[str, ...]:
        """A topological order of the task keys (cached)."""
        return self._topo

    # -- analysis ---------------------------------------------------------------

    def total_work(self) -> float:
        """Sum of task work."""
        return float(sum(task.work for task in self))

    def critical_path(self) -> tuple[tuple[str, ...], float]:
        """Longest work-weighted path (ignoring communication).

        Returns ``(path, length)`` where length sums the work of the path's
        tasks.  Computed by one pass over the topological order.
        """
        longest: dict[str, float] = {}
        best_pred: dict[str, str | None] = {}
        for key in self._topo:
            preds = self._predecessors[key]
            if preds:
                pred = max(preds, key=lambda p: longest[p])
                longest[key] = longest[pred] + self._tasks[key].work
                best_pred[key] = pred
            else:
                longest[key] = self._tasks[key].work
                best_pred[key] = None
        end = max(longest, key=longest.get)
        path: list[str] = []
        cursor: str | None = end
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred[cursor]
        path.reverse()
        return tuple(path), float(longest[end])

    def width_profile(self) -> dict[int, int]:
        """Number of tasks per dependency level (level = longest hop count)."""
        level: dict[str, int] = {}
        for key in self._topo:
            preds = self._predecessors[key]
            level[key] = 1 + max((level[p] for p in preds), default=-1)
        profile: dict[int, int] = {}
        for depth in level.values():
            profile[depth] = profile.get(depth, 0) + 1
        return dict(sorted(profile.items()))


def random_workflow(
    n_tasks: int,
    *,
    edge_probability: float = 0.15,
    seed: int = 0,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (0.0, 10.0),
    name: str | None = None,
) -> Workflow:
    """Generate a random DAG (edges only forward in a random order).

    Acyclicity holds by construction: tasks are laid out in a fixed order
    and edges only go from earlier to later positions.
    """
    if n_tasks < 1:
        raise ValidationError("n_tasks must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValidationError("edge_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    works = rng.uniform(*work_range, size=n_tasks)
    outputs = rng.uniform(*output_range, size=n_tasks)
    tasks = [
        Task(f"t{i:04d}", float(works[i]), float(outputs[i]))
        for i in range(n_tasks)
    ]
    # Vectorized edge sampling over the strict upper triangle.
    upper_i, upper_j = np.triu_indices(n_tasks, k=1)
    chosen = rng.random(upper_i.size) < edge_probability
    edges = [
        (f"t{i:04d}", f"t{j:04d}")
        for i, j in zip(upper_i[chosen], upper_j[chosen])
    ]
    return Workflow(name or f"random-{n_tasks}", tasks, edges)


def layered_workflow(
    n_layers: int,
    width: int,
    *,
    work: float = 10.0,
    output_size: float = 1.0,
    name: str | None = None,
) -> Workflow:
    """A fork-join pipeline: *n_layers* layers of *width* parallel tasks.

    Every task in layer L feeds every task in layer L+1 — the classic
    map-reduce-style stage pipeline used by scheduling benchmarks.
    """
    if n_layers < 1 or width < 1:
        raise ValidationError("n_layers and width must be >= 1")
    tasks = [
        Task(f"l{layer:03d}n{i:03d}", work, output_size)
        for layer in range(n_layers)
        for i in range(width)
    ]
    edges = [
        (f"l{layer:03d}n{i:03d}", f"l{layer + 1:03d}n{j:03d}")
        for layer in range(n_layers - 1)
        for i in range(width)
        for j in range(width)
    ]
    return Workflow(name or f"layered-{n_layers}x{width}", tasks, edges)
