"""Computing-Continuum resource model.

Models the paper's execution landscape — HPC centres, cloud regions, and
edge devices — as a set of :class:`Resource` nodes joined by a latency/
bandwidth matrix (:class:`Continuum`).  Resource parameters follow the
qualitative contrasts the paper draws: HPC nodes are fast and power-hungry,
edge nodes are slow, low-power, and close to data sources.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ContinuumError, ValidationError

__all__ = ["ResourceKind", "Resource", "Continuum", "default_continuum"]


class ResourceKind(Enum):
    """Tier of the Computing Continuum a resource belongs to."""

    HPC = "hpc"
    CLOUD = "cloud"
    EDGE = "edge"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Resource:
    """One execution location.

    Parameters
    ----------
    key:
        Unique identifier within the continuum.
    kind:
        Continuum tier.
    speed:
        Operations per second (same unit as task ``work``); execution time
        of a task is ``work / speed``.
    idle_power:
        Power draw when idle, in watts.
    busy_power:
        Power draw under load, in watts (``>= idle_power``).
    capabilities:
        Non-functional tags the node offers (``{"gpu", "burst-buffer"}``);
        a task only runs where its requirements are a subset.
    carbon_intensity:
        gCO₂ per watt-second scale factor of the local energy mix (relative
        units; 1.0 = reference grid).
    """

    key: str
    kind: ResourceKind
    speed: float
    idle_power: float = 50.0
    busy_power: float = 200.0
    capabilities: frozenset[str] = frozenset()
    carbon_intensity: float = 1.0

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("resource key must be non-empty")
        if self.speed <= 0:
            raise ValidationError(f"resource {self.key!r}: speed must be > 0")
        if self.idle_power < 0 or self.busy_power < self.idle_power:
            raise ValidationError(
                f"resource {self.key!r}: need 0 <= idle_power <= busy_power"
            )
        if self.carbon_intensity <= 0:
            raise ValidationError(
                f"resource {self.key!r}: carbon_intensity must be > 0"
            )
        object.__setattr__(self, "capabilities", frozenset(self.capabilities))

    def execution_time(self, work: float) -> float:
        """Seconds to execute *work* operations."""
        if work < 0:
            raise ValidationError("work must be >= 0")
        return work / self.speed

    def busy_energy(self, seconds: float) -> float:
        """Joules consumed running for *seconds* (busy power)."""
        if seconds < 0:
            raise ValidationError("seconds must be >= 0")
        return self.busy_power * seconds

    def supports(self, requirements: frozenset[str]) -> bool:
        """Whether the node offers every tag in *requirements*."""
        return requirements <= self.capabilities


class Continuum:
    """A set of resources plus pairwise bandwidth and latency.

    Bandwidth is in data units per second (same unit as task
    ``output_size``); latency in seconds.  Intra-node transfers are free.
    """

    def __init__(
        self,
        resources: Iterable[Resource],
        *,
        bandwidth: Sequence[Sequence[float]] | np.ndarray | None = None,
        latency: Sequence[Sequence[float]] | np.ndarray | None = None,
        default_bandwidth: float = 1.0,
        default_latency: float = 0.01,
    ) -> None:
        self._resources: dict[str, Resource] = {}
        for resource in resources:
            if resource.key in self._resources:
                raise ContinuumError(f"duplicate resource {resource.key!r}")
            self._resources[resource.key] = resource
        if not self._resources:
            raise ContinuumError("continuum needs at least one resource")
        n = len(self._resources)
        self._index = {key: i for i, key in enumerate(self._resources)}

        if bandwidth is None:
            if default_bandwidth <= 0:
                raise ContinuumError("default_bandwidth must be > 0")
            bw = np.full((n, n), float(default_bandwidth))
        else:
            bw = np.asarray(bandwidth, dtype=np.float64)
        if latency is None:
            if default_latency < 0:
                raise ContinuumError("default_latency must be >= 0")
            lat = np.full((n, n), float(default_latency))
        else:
            lat = np.asarray(latency, dtype=np.float64)
        for matrix, name in ((bw, "bandwidth"), (lat, "latency")):
            if matrix.shape != (n, n):
                raise ContinuumError(f"{name} matrix must be {n}x{n}")
        if (bw <= 0).any():
            raise ContinuumError("bandwidth must be strictly positive")
        if (lat < 0).any():
            raise ContinuumError("latency must be non-negative")
        np.fill_diagonal(bw, np.inf)  # local transfers are free
        np.fill_diagonal(lat, 0.0)
        self._bandwidth = bw
        self._latency = lat
        self._bandwidth.setflags(write=False)
        self._latency.setflags(write=False)

    # -- container -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resources)

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources.values())

    def __contains__(self, key: object) -> bool:
        return key in self._resources

    def __getitem__(self, key: str) -> Resource:
        try:
            return self._resources[key]
        except KeyError:
            raise ContinuumError(f"unknown resource {key!r}") from None

    @property
    def keys(self) -> tuple[str, ...]:
        """Resource keys in insertion order."""
        return tuple(self._resources)

    def index(self, key: str) -> int:
        """Matrix index of a resource key."""
        try:
            return self._index[key]
        except KeyError:
            raise ContinuumError(f"unknown resource {key!r}") from None

    # -- vectorized views -------------------------------------------------------

    @property
    def speeds(self) -> np.ndarray:
        """Speed vector aligned with :attr:`keys`."""
        return np.asarray([r.speed for r in self], dtype=np.float64)

    @property
    def busy_powers(self) -> np.ndarray:
        """Busy-power vector aligned with :attr:`keys`."""
        return np.asarray([r.busy_power for r in self], dtype=np.float64)

    @property
    def idle_powers(self) -> np.ndarray:
        """Idle-power vector aligned with :attr:`keys`."""
        return np.asarray([r.idle_power for r in self], dtype=np.float64)

    @property
    def carbon_intensities(self) -> np.ndarray:
        """Carbon-intensity vector aligned with :attr:`keys`."""
        return np.asarray([r.carbon_intensity for r in self], dtype=np.float64)

    @property
    def bandwidth(self) -> np.ndarray:
        """Pairwise bandwidth matrix (inf on the diagonal)."""
        return self._bandwidth

    @property
    def latency(self) -> np.ndarray:
        """Pairwise latency matrix (0 on the diagonal)."""
        return self._latency

    def transfer_time(self, size: float, src: str, dst: str) -> float:
        """Seconds to move *size* data units from *src* to *dst*."""
        if size < 0:
            raise ContinuumError("size must be >= 0")
        i, j = self.index(src), self.index(dst)
        if i == j or size == 0:
            return 0.0 if i == j else float(self._latency[i, j])
        return float(self._latency[i, j] + size / self._bandwidth[i, j])

    def by_kind(self, kind: ResourceKind) -> tuple[Resource, ...]:
        """Resources of one continuum tier."""
        return tuple(r for r in self if r.kind == kind)


def default_continuum(
    *,
    n_hpc: int = 2,
    n_cloud: int = 4,
    n_edge: int = 8,
    seed: int = 0,
) -> Continuum:
    """A representative HPC+Cloud+Edge topology with seeded jitter.

    Qualitative shape per the paper's Sec. 2.3: HPC nodes ~100× faster than
    edge but ~40× the power; cloud in between; inter-tier links slower than
    intra-tier ones; edge grids have lower carbon intensity (local
    renewables) in some nodes.
    """
    if n_hpc < 0 or n_cloud < 0 or n_edge < 0 or n_hpc + n_cloud + n_edge == 0:
        raise ContinuumError("need at least one resource")
    rng = np.random.default_rng(seed)

    def jitter(base: float) -> float:
        return float(base * rng.uniform(0.85, 1.15))

    resources: list[Resource] = []
    for i in range(n_hpc):
        resources.append(
            Resource(
                f"hpc-{i:02d}", ResourceKind.HPC, jitter(1000.0),
                idle_power=jitter(300.0), busy_power=jitter(1200.0),
                capabilities=frozenset({"gpu", "burst-buffer", "mpi"}),
                carbon_intensity=jitter(1.0),
            )
        )
    for i in range(n_cloud):
        resources.append(
            Resource(
                f"cloud-{i:02d}", ResourceKind.CLOUD, jitter(200.0),
                idle_power=jitter(100.0), busy_power=jitter(400.0),
                capabilities=frozenset({"kubernetes", "faas"}),
                carbon_intensity=jitter(0.9),
            )
        )
    for i in range(n_edge):
        resources.append(
            Resource(
                f"edge-{i:02d}", ResourceKind.EDGE, jitter(10.0),
                idle_power=jitter(2.0), busy_power=jitter(30.0),
                capabilities=frozenset({"sensor"}),
                carbon_intensity=jitter(0.5),
            )
        )

    n = len(resources)
    tiers = np.asarray(
        [{"hpc": 0, "cloud": 1, "edge": 2}[r.kind.value] for r in resources]
    )
    same_tier = tiers[:, None] == tiers[None, :]
    # Intra-tier links: fast; inter-tier: an order of magnitude slower.
    bandwidth = np.where(same_tier, 10.0, 1.0) * rng.uniform(0.8, 1.2, (n, n))
    latency = np.where(same_tier, 0.001, 0.05) * rng.uniform(0.8, 1.2, (n, n))
    # Symmetrize so A→B == B→A.
    bandwidth = (bandwidth + bandwidth.T) / 2.0
    latency = (latency + latency.T) / 2.0
    return Continuum(resources, bandwidth=bandwidth, latency=latency)
