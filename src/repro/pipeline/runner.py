"""The stage-DAG pipeline runner: caching, parallelism, resume.

A :class:`Pipeline` is a directed acyclic graph of named :class:`Stage`\\ s.
Each stage is a pure function of its dependencies' outputs and its own
parameters, which buys three properties for free:

* **content-addressed caching** — every stage gets a deterministic key
  (:meth:`Pipeline.stage_keys`) hashing its code-version tag, parameters,
  and — transitively, through its dependencies' keys — everything upstream.
  A key hit in the :class:`~repro.pipeline.cache.ArtifactCache` skips the
  stage with no loss of fidelity;
* **parallel execution** — independent stages run concurrently on a
  thread pool (``parallel=True``), with a deterministic serial fallback
  that executes stages in stable topological order;
* **crash-safe resume** — a :class:`~repro.pipeline.manifest.RunManifest`
  records each completion as it happens, so a re-run after an interruption
  restarts from the last finished stage.

Passing ``telemetry=`` (a :class:`repro.telemetry.Telemetry`) records a
span per stage — wall time, per-thread CPU time, executed-vs-cached
outcome — under one run-level span, plus the pipeline metrics (stage
duration histogram, cache counters, achieved parallelism) and
span-correlated structured log events (``pipeline.plan``,
``stage.start``/``finish``/``error``, ``cache.rot``,
``pipeline.finish``) on ``telemetry.log``.  The default is a shared
no-op whose cost is a few attribute lookups per stage.

Example
-------
>>> double = Stage("double", lambda inputs, x: x * 2, params={"x": 21})
>>> shout = Stage("shout", lambda inputs: f"{inputs['double']}!", deps=("double",))
>>> result = Pipeline([double, shout]).run()
>>> result["shout"]
'42!'
>>> result.executed
('double', 'shout')
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import (
    CacheError,
    PipelineDefinitionError,
    StageExecutionError,
)
from repro.pipeline.cache import ArtifactCache, stable_digest
from repro.pipeline.manifest import RunManifest
from repro.telemetry.hooks import Telemetry, ensure as _ensure_telemetry

__all__ = ["Stage", "Pipeline", "PipelineResult"]

_MISSING = object()


@dataclass(frozen=True)
class Stage:
    """One named node of a pipeline DAG.

    Attributes
    ----------
    name:
        Unique stage name within the pipeline.
    fn:
        ``fn(inputs, **params)`` where *inputs* maps each dependency name
        to that stage's output.  Must be deterministic in its arguments.
    deps:
        Names of the stages whose outputs this stage consumes.
    params:
        Keyword parameters for *fn*; part of the cache key, so they must
        be JSON-canonicalizable (see
        :func:`~repro.pipeline.cache.stable_digest`).
    version:
        Code-version tag; bump when *fn*'s behaviour changes so stale
        cached artifacts are not reused.
    validate:
        Optional predicate over a cached value; if it returns False the
        stage re-executes (e.g. a render stage whose output files were
        deleted out from under the cache).
    """

    name: str
    fn: Callable[..., Any]
    deps: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    version: str = "1"
    validate: Callable[[Any], bool] | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise PipelineDefinitionError("stage name must be a non-empty string")
        object.__setattr__(self, "deps", tuple(self.deps))
        object.__setattr__(self, "params", dict(self.params))


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one :meth:`Pipeline.run`.

    Attributes
    ----------
    outputs:
        Target stage name → output value.
    executed:
        Names of stages actually computed this run, in completion order.
    cached:
        Names of stages satisfied from the cache (skipped).
    keys:
        Stage name → content-addressed cache key, for every needed stage.
    """

    outputs: dict[str, Any]
    executed: tuple[str, ...]
    cached: tuple[str, ...]
    keys: dict[str, str]

    def __getitem__(self, name: str) -> Any:
        return self.outputs[name]


class Pipeline:
    """A DAG of :class:`Stage`\\ s executable with caching and parallelism.

    Parameters
    ----------
    stages:
        The stages; dependency names must refer to other stages in the
        same pipeline and the graph must be acyclic.
    name, version:
        Identify the pipeline (and its code generation) inside cache keys
        and the run key, so two different pipelines never collide in a
        shared cache.
    """

    def __init__(
        self,
        stages: Iterable[Stage],
        *,
        name: str = "pipeline",
        version: str = "1",
    ) -> None:
        self.name = name
        self.version = version
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise PipelineDefinitionError(
                    f"duplicate stage name {stage.name!r}"
                )
            self.stages[stage.name] = stage
        for stage in self.stages.values():
            for dep in stage.deps:
                if dep not in self.stages:
                    raise PipelineDefinitionError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
        self._order = self._topological_order()

    # -- structure ---------------------------------------------------------------

    def _topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm, stable in declaration order (deterministic)."""
        declared = list(self.stages)
        remaining_deps = {
            name: set(stage.deps) for name, stage in self.stages.items()
        }
        dependents: dict[str, list[str]] = {name: [] for name in declared}
        for name, stage in self.stages.items():
            for dep in stage.deps:
                dependents[dep].append(name)
        order: list[str] = []
        ready = [name for name in declared if not remaining_deps[name]]
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dependent in dependents[name]:
                remaining_deps[dependent].discard(name)
                if not remaining_deps[dependent]:
                    ready.append(dependent)
            ready.sort(key=declared.index)
        if len(order) != len(declared):
            cyclic = sorted(set(declared) - set(order))
            raise PipelineDefinitionError(
                f"pipeline has a dependency cycle through {cyclic}"
            )
        return tuple(order)

    @property
    def order(self) -> tuple[str, ...]:
        """Deterministic topological execution order of all stages."""
        return self._order

    def stage_keys(self) -> dict[str, str]:
        """Content-addressed cache key for every stage.

        A stage's key hashes the pipeline identity, the stage's name,
        version tag, and parameters, and its dependencies' keys — so any
        upstream change (code tag, parameter, added dependency) changes
        every downstream key and invalidates exactly the affected suffix
        of the DAG.
        """
        keys: dict[str, str] = {}
        for name in self._order:
            stage = self.stages[name]
            keys[name] = stable_digest(
                {
                    "pipeline": self.name,
                    "pipeline_version": self.version,
                    "stage": stage.name,
                    "stage_version": stage.version,
                    "params": stage.params,
                    "inputs": {dep: keys[dep] for dep in stage.deps},
                }
            )
        return keys

    def run_key(self) -> str:
        """Digest of the whole pipeline configuration (for manifests)."""
        keys = self.stage_keys()
        return stable_digest({"pipeline": self.name, "stages": keys})

    def _closure(self, targets: Sequence[str]) -> set[str]:
        needed: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            if name not in self.stages:
                raise PipelineDefinitionError(f"unknown target stage {name!r}")
            needed.add(name)
            frontier.extend(self.stages[name].deps)
        return needed

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        targets: Sequence[str] | None = None,
        *,
        cache: ArtifactCache | None = None,
        manifest: RunManifest | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> PipelineResult:
        """Execute the pipeline and return a :class:`PipelineResult`.

        Parameters
        ----------
        targets:
            Stages whose outputs are wanted (default: all stages).  Only
            the dependency closure of the targets is considered.
        cache:
            Artifact cache consulted before executing any stage.  When
            omitted, an ephemeral in-memory cache still deduplicates
            within the run.
        manifest:
            Optional run ledger for crash-safe resume; bound to this
            pipeline's :meth:`run_key` (a manifest of a different
            configuration is discarded).
        parallel:
            Execute independent stages concurrently on a thread pool.
            ``False`` is the deterministic serial fallback.
        max_workers:
            Thread-pool width (default: CPU count, capped at 8).
        telemetry:
            Optional :class:`~repro.telemetry.Telemetry`: records a span
            per stage (plus the run and cache-hit events) and the
            pipeline metrics.  The default ``None`` is a shared no-op
            whose overhead is a few attribute lookups per stage (guarded
            by ``benchmarks/test_bench_telemetry.py``).  While the run
            is traced, an unbound *cache*/*manifest* is temporarily
            bound to the same telemetry so ``cache.*`` and
            ``manifest.*`` metrics land in one registry.
        """
        tel = _ensure_telemetry(telemetry)
        if targets is None:
            targets = list(self.stages)
        cache = cache if cache is not None else ArtifactCache()

        # Bind collaborators to this run's telemetry (restored on exit).
        rebind = []
        if tel.enabled:
            for collaborator in (cache, manifest):
                if (
                    collaborator is not None
                    and getattr(collaborator, "telemetry", None) is None
                ):
                    collaborator.telemetry = tel
                    rebind.append(collaborator)
        try:
            with tel.tracer.span(
                "pipeline.run",
                pipeline=self.name,
                version=self.version,
                targets=tuple(targets),
                parallel=parallel,
            ) as run_span:
                return self._run_traced(
                    targets, cache, manifest, parallel, max_workers,
                    tel, run_span,
                )
        finally:
            for collaborator in rebind:
                collaborator.telemetry = None

    def _run_traced(
        self,
        targets: Sequence[str],
        cache: ArtifactCache,
        manifest: RunManifest | None,
        parallel: bool,
        max_workers: int | None,
        tel: Telemetry,
        run_span,
    ) -> PipelineResult:
        """The :meth:`run` body, executing under the run-level span."""
        keys = self.stage_keys()
        if manifest is not None:
            manifest.begin(self.run_key())

        needed = self._closure(targets)
        order = [name for name in self._order if name in needed]
        log = tel.log

        results: dict[str, Any] = {}
        executed: list[str] = []
        cached: list[str] = []

        metrics = tel.metrics
        stage_seconds = metrics.histogram("pipeline.stage_seconds")
        executed_count = metrics.counter("pipeline.stages_executed")
        cached_count = metrics.counter("pipeline.stages_cached")
        inflight = metrics.gauge("pipeline.parallelism")

        # Planning pass: decide, in topological order, which stages must
        # actually run.  A cached stage is skipped lazily — its value is
        # only loaded if a running dependent (or a target) needs it.
        must_run: list[str] = []
        for name in order:
            stage = self.stages[name]
            hit = keys[name] in cache
            if hit and stage.validate is not None:
                value = cache.get(keys[name], _MISSING)
                if value is not _MISSING and stage.validate(value):
                    results[name] = value
                else:
                    hit = False
            if hit:
                cached.append(name)
                if tel.enabled:
                    cached_count.inc()
                    with tel.tracer.span(
                        f"stage:{name}", parent=run_span,
                        stage=name, outcome="cached",
                    ):
                        pass
            else:
                must_run.append(name)
        if tel.enabled:
            log.info(
                "pipeline.plan",
                pipeline=self.name,
                targets=list(targets),
                must_run=must_run,
                cached=list(cached),
                parallel=parallel,
            )

        def materialize(name: str) -> None:
            """Load a planned-cached stage's value, recomputing on rot.

            A corrupt or vanished on-disk artifact (the key was present
            at planning time but the value is unreadable now) must not
            kill the run: the stage is recomputed from its inputs — the
            cache is an accelerator, never a point of failure.
            """
            if name in results:
                return
            try:
                results[name] = cache.load(keys[name])
                return
            except CacheError as exc:
                if tel.enabled:
                    log.warning(
                        "cache.rot", stage=name,
                        key=keys[name][:12], reason=str(exc),
                    )
                cache.evict(keys[name])
            for dep in self.stages[name].deps:
                materialize(dep)
            record(name, execute(name))
            if name in cached:
                cached.remove(name)

        def execute(name: str) -> Any:
            stage = self.stages[name]
            inputs = {dep: results[dep] for dep in stage.deps}
            inflight.add(1)
            try:
                with tel.tracer.span(
                    f"stage:{name}", parent=run_span,
                    stage=name, outcome="executed",
                ) as span:
                    if tel.enabled:
                        log.debug("stage.start", stage=name)
                    try:
                        value = stage.fn(inputs, **stage.params)
                    except Exception as exc:
                        if tel.enabled:
                            log.error(
                                "stage.error", stage=name,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        raise StageExecutionError(
                            f"stage {name!r} failed: {exc}"
                        ) from exc
                stage_seconds.observe(span.duration or 0.0)
                executed_count.inc()
                if tel.enabled:
                    log.debug(
                        "stage.finish", stage=name,
                        wall_s=span.duration, cpu_s=span.cpu_time,
                    )
                return value
            finally:
                inflight.add(-1)

        def record(name: str, value: Any) -> None:
            cache.store(keys[name], value)
            results[name] = value
            executed.append(name)
            if manifest is not None:
                manifest.mark_complete(name, keys[name])

        # Materialize cached inputs of stages that will run.
        running = set(must_run)
        for name in must_run:
            for dep in self.stages[name].deps:
                if dep not in running:
                    materialize(dep)

        if not parallel or len(must_run) <= 1:
            for name in must_run:
                record(name, execute(name))
        else:
            self._run_parallel(must_run, execute, record, max_workers)

        for name in targets:
            materialize(name)
        if tel.enabled:
            log.info(
                "pipeline.finish",
                pipeline=self.name,
                executed=list(executed),
                cached=list(cached),
            )
        return PipelineResult(
            outputs={name: results[name] for name in targets},
            executed=tuple(executed),
            cached=tuple(cached),
            keys={name: keys[name] for name in order},
        )

    def _run_parallel(
        self,
        must_run: list[str],
        execute: Callable[[str], Any],
        record: Callable[[str, Any], None],
        max_workers: int | None,
    ) -> None:
        """Schedule *must_run* stages on a thread pool as deps complete."""
        running = set(must_run)
        waiting_on = {
            name: {dep for dep in self.stages[name].deps if dep in running}
            for name in must_run
        }
        dependents: dict[str, list[str]] = {name: [] for name in must_run}
        for name in must_run:
            for dep in waiting_on[name]:
                dependents[dep].append(name)
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        ready = [name for name in must_run if not waiting_on[name]]
        failure: StageExecutionError | None = None
        with concurrent.futures.ThreadPoolExecutor(max_workers) as pool:
            futures = {pool.submit(execute, name): name for name in ready}
            while futures:
                done, _ = concurrent.futures.wait(
                    futures, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    name = futures.pop(future)
                    try:
                        value = future.result()
                    except StageExecutionError as exc:
                        failure = failure or exc
                        continue
                    if failure is not None:
                        continue  # drain in-flight work, submit nothing new
                    record(name, value)
                    for dependent in dependents[name]:
                        waiting_on[dependent].discard(name)
                        if not waiting_on[dependent]:
                            futures[pool.submit(execute, dependent)] = dependent
        if failure is not None:
            raise failure
