"""The ICSC mapping study as a cached, parallel, resumable pipeline.

Wires the paper's stages — ``collect → {classify, survey} → analyze``,
plus an optional ``render`` fan-out — onto the
:class:`~repro.pipeline.runner.Pipeline` runner.  ``classify`` and
``survey`` both depend only on ``collect``, so they run concurrently
under ``parallel=True``; every stage output is content-addressed in an
:class:`~repro.pipeline.cache.ArtifactCache`, so repeated runs with
identical parameters (the common case: benchmarks, figure regeneration,
CLI invocations) recompute nothing.

Cache keys include :func:`repro.data.icsc.dataset_version` (a hash of the
encoded dataset module) and a pipeline code tag, so editing the dataset
or bumping :data:`CODE_VERSION` invalidates exactly the stale artifacts.

The module keeps a process-wide cache and per-stage execution counters
(:func:`stage_execution_counts`), which is how tests and benchmarks
assert the warm path truly skips recomputation.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from pathlib import Path
from typing import Any

from repro.pipeline.cache import ArtifactCache
from repro.pipeline.manifest import RunManifest
from repro.pipeline.runner import Pipeline, PipelineResult, Stage

__all__ = [
    "CODE_VERSION",
    "build_icsc_pipeline",
    "run_icsc_pipeline",
    "render_icsc_artifacts",
    "process_cache",
    "reset_process_cache",
    "stage_execution_counts",
]

#: Bump when any stage function below changes behaviour.
CODE_VERSION = "1"

#: Process-wide count of stage executions (stage name → times computed).
_EXECUTIONS: Counter[str] = Counter()

_CACHE_LOCK = threading.Lock()
_PROCESS_CACHE: ArtifactCache | None = None


def process_cache() -> ArtifactCache:
    """The process-wide artifact cache used by default.

    In-memory by default; set the ``REPRO_CACHE_DIR`` environment
    variable to persist artifacts across processes.
    """
    global _PROCESS_CACHE
    with _CACHE_LOCK:
        if _PROCESS_CACHE is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or None
            _PROCESS_CACHE = ArtifactCache(directory)
        return _PROCESS_CACHE


def reset_process_cache() -> None:
    """Drop the process-wide cache and execution counters (for tests)."""
    global _PROCESS_CACHE
    with _CACHE_LOCK:
        _PROCESS_CACHE = None
        _EXECUTIONS.clear()


def stage_execution_counts() -> dict[str, int]:
    """How many times each study stage has actually executed (a copy)."""
    return dict(_EXECUTIONS)


# -- stage functions --------------------------------------------------------------


def _stage_collect(inputs: dict[str, Any]) -> dict[str, Any]:
    """Load and validate the encoded ICSC ecosystem (protocol included)."""
    from repro.core.catalog import validate_ecosystem
    from repro.core.protocol import icsc_protocol
    from repro.data.icsc import (
        icsc_applications,
        icsc_institutions,
        icsc_tools,
    )

    _EXECUTIONS["collect"] += 1
    protocol = icsc_protocol()
    institutions = icsc_institutions()
    tools = icsc_tools()
    applications = icsc_applications()
    validate_ecosystem(institutions, tools, applications, protocol.scheme)
    return {
        "protocol": protocol,
        "institutions": institutions,
        "tools": tools,
        "applications": applications,
    }


def _stage_classify(
    inputs: dict[str, Any], *, check_with_classifier: bool = True
) -> Any:
    """Cross-check the manual labels with the keyword classifier."""
    from repro.core.study import classify_tools

    _EXECUTIONS["classify"] += 1
    if not check_with_classifier:
        return None
    collected = inputs["collect"]
    return classify_tools(collected["tools"], collected["protocol"].scheme)


def _stage_survey(inputs: dict[str, Any]) -> Any:
    """Run the tool-selection survey; returns (responses, selection)."""
    from repro.core.study import survey_selection

    _EXECUTIONS["survey"] += 1
    collected = inputs["collect"]
    return survey_selection(
        collected["tools"],
        collected["applications"],
        collected["protocol"].scheme,
    )


def _stage_analyze(inputs: dict[str, Any], *, seed: int = 2023) -> Any:
    """Answer the research questions; returns :class:`StudyResults`."""
    from repro.core.study import analyze_study

    _EXECUTIONS["analyze"] += 1
    collected = inputs["collect"]
    _, selection = inputs["survey"]
    return analyze_study(
        collected["tools"],
        collected["applications"],
        selection,
        collected["protocol"].scheme,
        seed=seed,
        classifier_evaluation=inputs["classify"],
    )


def _stage_render(
    inputs: dict[str, Any], *, output_dir: str, spoke1: bool = True
) -> dict[str, str]:
    """Write the full figure/table artifact set; returns name → path."""
    from repro.data.icsc import spoke1_structure
    from repro.reporting.figures import render_all_artifacts

    _EXECUTIONS["render"] += 1
    collected = inputs["collect"]
    artifacts = render_all_artifacts(
        collected["tools"],
        collected["applications"],
        collected["protocol"].scheme,
        output_dir,
        spoke1=spoke1_structure() if spoke1 else None,
    )
    return {name: str(path) for name, path in artifacts.items()}


def _artifacts_exist(artifacts: dict[str, str]) -> bool:
    """Cached render output is only valid while every file still exists."""
    return all(Path(path).is_file() for path in artifacts.values())


# -- pipeline construction --------------------------------------------------------


def _version_tag() -> str:
    from repro import __version__
    from repro.data.icsc import dataset_version

    return f"{__version__}+code{CODE_VERSION}+data{dataset_version()}"


def build_icsc_pipeline(
    *,
    seed: int = 2023,
    check_with_classifier: bool = True,
    output_dir: str | os.PathLike | None = None,
) -> Pipeline:
    """Build the study DAG: collect → {classify, survey} → analyze [→ render].

    The ``render`` stage is only present when *output_dir* is given; its
    cached value is revalidated against the filesystem, so deleting the
    rendered files forces a re-render even on a warm cache.
    """
    stages = [
        Stage("collect", _stage_collect),
        Stage(
            "classify",
            _stage_classify,
            deps=("collect",),
            params={"check_with_classifier": check_with_classifier},
        ),
        Stage("survey", _stage_survey, deps=("collect",)),
        Stage(
            "analyze",
            _stage_analyze,
            deps=("collect", "classify", "survey"),
            params={"seed": seed},
        ),
    ]
    if output_dir is not None:
        stages.append(
            Stage(
                "render",
                _stage_render,
                deps=("collect",),
                params={"output_dir": str(output_dir)},
                validate=_artifacts_exist,
            )
        )
    return Pipeline(stages, name="icsc-study", version=_version_tag())


def run_icsc_pipeline(
    *,
    seed: int = 2023,
    check_with_classifier: bool = True,
    cache: ArtifactCache | None = None,
    manifest: RunManifest | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    telemetry=None,
    registry=None,
) -> tuple[Any, PipelineResult]:
    """Run the ICSC study DAG; returns ``(StudyResults, PipelineResult)``.

    With the default *cache* (the process-wide one), a second invocation
    with identical parameters executes zero stages — inspect
    ``PipelineResult.executed``/``.cached`` or
    :func:`stage_execution_counts` to observe it.  Pass a
    :class:`repro.telemetry.Telemetry` as *telemetry* to record spans
    and pipeline metrics (see ``repro replicate --profile``).

    Pass a :class:`repro.obs.RunRegistry` as *registry* to append a
    :class:`~repro.obs.RunRecord` of this run (stage timings from
    *telemetry*, SHA-256 digests of every result artifact) to the run
    ledger — the input ``repro runs compare`` gates on.
    """
    pipeline = build_icsc_pipeline(
        seed=seed, check_with_classifier=check_with_classifier
    )
    run = pipeline.run(
        ["analyze"],
        cache=cache if cache is not None else process_cache(),
        manifest=manifest,
        parallel=parallel,
        max_workers=max_workers,
        telemetry=telemetry,
    )
    results = run["analyze"]
    if registry is not None:
        from repro.obs import build_study_record

        registry.record(
            build_study_record(
                results,
                run,
                telemetry=telemetry,
                meta={"seed": seed, "parallel": parallel},
            )
        )
    return results, run


def render_icsc_artifacts(
    output_dir: str | os.PathLike,
    *,
    spoke1: bool = True,
    cache: ArtifactCache | None = None,
    manifest: RunManifest | None = None,
    parallel: bool = False,
    telemetry=None,
) -> dict[str, Path]:
    """Render the full artifact set through the cached pipeline.

    Returns the same name → path mapping as
    :func:`repro.reporting.figures.render_all_artifacts`, but dataset
    loading and rendering ride the study DAG: a warm cache skips straight
    to revalidating that the files still exist.
    """
    pipeline = build_icsc_pipeline(output_dir=output_dir)
    run = pipeline.run(
        ["render"],
        cache=cache if cache is not None else process_cache(),
        manifest=manifest,
        parallel=parallel,
        telemetry=telemetry,
    )
    return {name: Path(path) for name, path in run["render"].items()}
