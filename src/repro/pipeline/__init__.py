"""Cached, parallel, resumable pipeline execution for mapping studies.

The substrate the rest of the library runs on:

* :mod:`repro.pipeline.runner` — :class:`Stage`/:class:`Pipeline`, a DAG
  runner with content-addressed skipping, thread-pool parallelism, and a
  deterministic serial fallback;
* :mod:`repro.pipeline.cache` — :class:`ArtifactCache`, a two-layer
  (memory + optional disk) content-addressed artifact store, and
  :func:`stable_digest`, the canonical hashing primitive;
* :mod:`repro.pipeline.manifest` — :class:`RunManifest`, the crash-safe
  ledger behind resume;
* :mod:`repro.pipeline.study` — the ICSC study DAG
  (``collect → {classify, survey} → analyze [→ render]``) that
  :func:`repro.run_icsc_study`, the CLI, and the reporting layer share.

Every entry point accepts ``telemetry=`` (a
:class:`repro.telemetry.Telemetry`) to record per-stage spans and
pipeline metrics; see :mod:`repro.telemetry` and ``repro replicate
--profile``.

Quickstart
----------
>>> from repro.pipeline import ArtifactCache, run_icsc_pipeline
>>> cache = ArtifactCache()                    # or ArtifactCache("/some/dir")
>>> results, first = run_icsc_pipeline(cache=cache)
>>> results.q3.top_direction
'orchestration'
>>> _, second = run_icsc_pipeline(cache=cache)  # warm: nothing recomputes
>>> second.executed
()
"""

from repro.pipeline.cache import ArtifactCache, stable_digest
from repro.pipeline.manifest import RunManifest
from repro.pipeline.runner import Pipeline, PipelineResult, Stage
from repro.pipeline.study import (
    build_icsc_pipeline,
    render_icsc_artifacts,
    run_icsc_pipeline,
    stage_execution_counts,
)

__all__ = [
    "ArtifactCache",
    "Pipeline",
    "PipelineResult",
    "RunManifest",
    "Stage",
    "build_icsc_pipeline",
    "render_icsc_artifacts",
    "run_icsc_pipeline",
    "stable_digest",
    "stage_execution_counts",
]
