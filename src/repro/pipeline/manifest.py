"""Crash-safe run manifest: which stages of a run have completed.

A :class:`RunManifest` is a small JSON ledger written after every stage
completion.  On resume, the runner replays the manifest: stages recorded
complete *with the same cache key* are skipped (their artifacts come from
the :class:`~repro.pipeline.cache.ArtifactCache`), so an interrupted run
restarts from the last finished stage instead of from scratch.

The manifest is keyed by a *run key* — the digest of the whole pipeline
configuration.  If a manifest on disk belongs to a different run key
(the code, parameters, or DAG changed), it is discarded wholesale: stale
completion records can never mask a configuration change.

Writes are atomic (temp file + ``os.replace``), so a crash between two
stages leaves either the previous consistent ledger or the new one,
never a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.errors import PipelineError

__all__ = ["RunManifest"]

_FORMAT = 1


class RunManifest:
    """JSON ledger of completed stages for one pipeline run.

    Parameters
    ----------
    path:
        File the ledger lives at.  Parent directories are created on the
        first write.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when bound, every
        ledger write is counted (``manifest.writes``) and timed
        (``manifest.write_seconds``), making resume-ledger overhead
        visible in the profile.  ``Pipeline.run`` binds an unbound
        manifest to its own telemetry for the duration of a traced run.

    Examples
    --------
    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     manifest = RunManifest(pathlib.Path(tmp) / "run.json")
    ...     manifest.begin("run-key-1")
    ...     manifest.mark_complete("collect", "abc123")
    ...     reloaded = RunManifest(pathlib.Path(tmp) / "run.json")
    ...     reloaded.begin("run-key-1")       # same run: records survive
    ...     reloaded.is_complete("collect", "abc123")
    True
    """

    def __init__(
        self, path: str | os.PathLike, *, telemetry=None
    ) -> None:
        self.path = Path(path)
        self.telemetry = telemetry
        self.run_key: str | None = None
        self._completed: dict[str, str] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise PipelineError(
                f"run manifest {self.path} is unreadable: {exc}"
            ) from exc
        if payload.get("format") != _FORMAT:
            return  # incompatible ledger: treat as absent
        self.run_key = payload.get("run_key")
        completed = payload.get("completed", {})
        if isinstance(completed, dict):
            self._completed = {str(k): str(v) for k, v in completed.items()}

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, run_key: str) -> "RunManifest":
        """Bind the ledger to *run_key*, discarding records of other runs."""
        if self.run_key != run_key:
            self.run_key = run_key
            self._completed = {}
            self._write()
        return self

    def mark_complete(self, stage: str, key: str) -> None:
        """Record that *stage* finished, producing the artifact at *key*."""
        if self.run_key is None:
            raise PipelineError("manifest has no run key; call begin() first")
        self._completed[stage] = key
        self._write()

    # -- queries -----------------------------------------------------------------

    @property
    def completed(self) -> dict[str, str]:
        """Mapping of completed stage name → artifact cache key (a copy)."""
        return dict(self._completed)

    def is_complete(self, stage: str, key: str) -> bool:
        """True if *stage* completed in this run with exactly this *key*."""
        return self._completed.get(stage) == key

    # -- persistence -------------------------------------------------------------

    def _write(self) -> None:
        started = time.perf_counter()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _FORMAT,
            "run_key": self.run_key,
            "completed": self._completed,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("manifest.writes").inc()
            metrics.histogram("manifest.write_seconds").observe(
                time.perf_counter() - started
            )
            self.telemetry.log.debug(
                "manifest.write",
                path=str(self.path),
                completed=len(self._completed),
            )
