"""Content-addressed artifact cache for pipeline stage outputs.

Stage outputs are stored under a deterministic hexadecimal *key* computed
by :func:`stable_digest` from the stage's code-version tag, its parameters,
and the keys of its inputs (see :meth:`~repro.pipeline.runner.Pipeline`).
Because the key transitively covers everything that can change a stage's
output, a key hit is a correctness-preserving skip: the cached value *is*
the value the stage would recompute.

The cache is layered:

* an in-memory dict, always on, so repeated lookups within one process
  never touch the disk (and the cache works with no directory at all);
* an optional on-disk layer (``directory=...``) persisting pickled
  artifacts across processes, written atomically (``tmp`` + ``os.replace``)
  so a crash mid-write can never leave a truncated artifact behind.

Hit/miss/store/eviction counters make cache behaviour assertable in
tests and benchmarks; :meth:`ArtifactCache.stats` snapshots them (plus
the on-disk footprint) for the profile report, and binding a
:class:`repro.telemetry.Telemetry` via ``telemetry=`` (or letting
``Pipeline.run`` bind one for the duration of a traced run) mirrors the
counters into its ``cache.*`` metrics.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import CacheError

__all__ = ["stable_digest", "ArtifactCache"]

#: Bump when the on-disk pickle layout changes incompatibly.
CACHE_FORMAT = "1"

_MISSING = object()


def _canonical(value: Any) -> Any:
    """Reduce *value* to a JSON-serializable canonical form.

    Mappings are key-sorted, sets are sorted, tuples become lists, paths
    become POSIX strings, and enums collapse to their value.  Anything
    else must already be a JSON scalar; otherwise the value cannot take
    part in a deterministic cache key and :class:`CacheError` is raised.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Path):
        return value.as_posix()
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, Mapping):
        return {
            str(key): _canonical(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, enum.Enum):
        return _canonical(value.value)
    raise CacheError(
        f"value of type {type(value).__name__!r} cannot take part in a "
        "deterministic cache key; use JSON-compatible parameters"
    )


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest of *parts* under canonical JSON serialization.

    Deterministic across processes and platforms: mappings are key-sorted,
    containers normalized, and the JSON encoder emits no whitespace.

    >>> stable_digest({"b": 1, "a": 2}) == stable_digest({"a": 2, "b": 1})
    True
    >>> stable_digest("x") != stable_digest("y")
    True
    """
    payload = json.dumps(
        [_canonical(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A content-addressed artifact store with an optional disk layer.

    Parameters
    ----------
    directory:
        Directory for the persistent layer.  ``None`` (the default) keeps
        the cache purely in memory — still useful for intra-process reuse
        and for the deterministic fallback path.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when bound, every
        hit/miss/store/eviction (and the bytes written to disk) is also
        counted into its ``cache.*`` metrics.  ``Pipeline.run`` binds an
        unbound cache to its own telemetry for the duration of a traced
        run.

    Examples
    --------
    >>> cache = ArtifactCache()
    >>> key = stable_digest("stage", {"seed": 1})
    >>> cache.store(key, [1, 2, 3])
    >>> cache.load(key)
    [1, 2, 3]
    >>> cache.hits, cache.misses, cache.stores
    (1, 0, 1)
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        telemetry=None,
    ) -> None:
        self._memory: dict[str, Any] = {}
        self._directory: Path | None = None
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _count(self, metric: str, amount: int = 1) -> None:
        """Mirror an internal counter into the bound telemetry, if any."""
        if self.telemetry is not None:
            self.telemetry.metrics.counter(f"cache.{metric}").inc(amount)

    # -- layout -----------------------------------------------------------------

    @property
    def directory(self) -> Path | None:
        """The persistent layer's directory (``None`` if memory-only)."""
        return self._directory

    def _path(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{key}.v{CACHE_FORMAT}.pkl"

    # -- queries ----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self._directory is not None and self._path(key).exists()

    def __len__(self) -> int:
        return len(set(self.keys()))

    def keys(self) -> Iterator[str]:
        """Every key present in either layer (may yield duplicates' union)."""
        seen = set(self._memory)
        yield from seen
        if self._directory is not None:
            for path in self._directory.glob(f"*.v{CACHE_FORMAT}.pkl"):
                key = path.name.split(".", 1)[0]
                if key not in seen:
                    yield key

    # -- access -----------------------------------------------------------------

    def load(self, key: str) -> Any:
        """Return the artifact stored under *key* (counts a hit or miss).

        Raises :class:`~repro.errors.CacheError` on a miss or if the
        on-disk artifact cannot be unpickled (corruption is reported, not
        silently treated as a miss, so callers can decide to purge).
        """
        if key in self._memory:
            self.hits += 1
            self._count("hits")
            return self._memory[key]
        if self._directory is not None:
            path = self._path(key)
            if path.exists():
                try:
                    with path.open("rb") as handle:
                        value = pickle.load(handle)
                except Exception as exc:
                    # Unpickling corrupt bytes can raise nearly anything
                    # (ValueError, AttributeError, ImportError, ...).
                    if self.telemetry is not None:
                        self.telemetry.log.warning(
                            "cache.corrupt", key=key[:12],
                            path=path.name, reason=str(exc),
                        )
                    raise CacheError(
                        f"cache artifact {path.name} is unreadable: {exc}"
                    ) from exc
                self._memory[key] = value
                self.hits += 1
                self._count("hits")
                return value
        self.misses += 1
        self._count("misses")
        raise CacheError(f"cache miss for key {key[:12]}…")

    def get(self, key: str, default: Any = None) -> Any:
        """Like :meth:`load` but returning *default* on a miss."""
        try:
            return self.load(key)
        except CacheError:
            return default

    def store(self, key: str, value: Any) -> None:
        """Persist *value* under *key* in every layer, atomically on disk."""
        self._memory[key] = value
        self.stores += 1
        self._count("stores")
        if self._directory is None:
            return
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self._directory, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            written = os.path.getsize(tmp_name)
            os.replace(tmp_name, path)
            self._count("bytes_written", written)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def evict(self, key: str) -> None:
        """Drop *key* from every layer (a no-op if absent).

        Counts an eviction when something was actually dropped — e.g.
        the runner purging a corrupt on-disk artifact before recomputing
        the stage — so :meth:`stats` exposes how often cache rot (or
        explicit invalidation) occurred.
        """
        dropped = self._memory.pop(key, _MISSING) is not _MISSING
        if self._directory is not None:
            try:
                self._path(key).unlink()
                dropped = True
            except FileNotFoundError:
                pass
        if dropped:
            self.evictions += 1
            self._count("evictions")
            if self.telemetry is not None:
                self.telemetry.log.warning("cache.evict", key=key[:12])

    def clear(self) -> None:
        """Drop every artifact and reset the counters."""
        for key in list(self.keys()):
            self.evict(key)
        self._memory.clear()
        self.hits = self.misses = self.stores = self.evictions = 0

    # -- introspection -----------------------------------------------------------

    def disk_bytes(self) -> int:
        """Total size of the on-disk artifacts, in bytes (0 if memory-only)."""
        if self._directory is None:
            return 0
        return sum(
            path.stat().st_size
            for path in self._directory.glob(f"*.v{CACHE_FORMAT}.pkl")
        )

    def stats(self) -> dict[str, Any]:
        """A snapshot of cache behaviour for reports and tests.

        Keys: ``hits``, ``misses``, ``stores``, ``evictions`` (lifetime
        counters), ``entries`` (distinct keys currently present),
        ``disk_bytes`` (on-disk footprint), and ``directory`` (the
        persistent layer's path, or ``None``).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "entries": len(self),
            "disk_bytes": self.disk_bytes(),
            "directory": (
                str(self._directory) if self._directory is not None else None
            ),
        }
