"""The paper's reference list, encoded as a BibTeX corpus.

A systematic mapping study normally starts from a harvested corpus; this
paper instead collected tools through the ICSC consortium.  To exercise the
full corpus substrate on real data, the paper's own bibliography (40 of the
77 numbered references — every reference cited for a collected tool, plus
the methodology and context references) is embedded here as BibTeX and
loadable as a :class:`~repro.corpus.corpus.Corpus`.
"""

from __future__ import annotations

from repro.corpus.corpus import Corpus

__all__ = ["bibliography_bibtex", "paper_bibliography"]

_BIBTEX = r"""
@article{akidau2015dataflow,
  author = {Akidau, Tyler and Bradshaw, Robert and Chambers, Craig},
  title = {The Dataflow Model: A Practical Approach to Balancing Correctness, Latency, and Cost in Massive-Scale, Unbounded, Out-of-Order Data Processing},
  journal = {Proceedings of the VLDB Endowment},
  year = {2015},
  doi = {10.14778/2824032.2824076},
  keywords = {dataflow, stream processing, big data}
}
@inproceedings{alsaadi2021exaworks,
  author = {Al-Saadi, Aymen and Ahn, Dong H. and Babuji, Yadu N. and Chard, Kyle},
  title = {ExaWorks: Workflows for Exascale},
  booktitle = {IEEE Workshop on Workflows in Support of Large-Scale Science (WORKS)},
  year = {2021},
  doi = {10.1109/WORKS54523.2021.00012},
  keywords = {workflows, exascale, SDK}
}
@inproceedings{aldinucci2021italian,
  author = {Aldinucci, Marco and Agosta, Giovanni and Andreini, Antonio},
  title = {The Italian research on HPC key technologies across EuroHPC},
  booktitle = {ACM Computing Frontiers},
  year = {2021},
  doi = {10.1145/3457388.3458508},
  keywords = {HPC, EuroHPC, national research}
}
@incollection{aldinucci2017fastflow,
  author = {Aldinucci, Marco and Danelutto, Marco and Kilpatrick, Peter and Torquati, Massimo},
  title = {FastFlow: high-level and efficient streaming on multi-core},
  howpublished = {John Wiley and Sons},
  year = {2017},
  doi = {10.1002/9781119332015.ch13},
  keywords = {structured parallel programming, streaming, multi-core}
}
@inproceedings{aldinucci2018hpc4ai,
  author = {Aldinucci, Marco and Rabellino, Sergio and Pironti, Marco},
  title = {HPC4AI: an AI-on-demand federated platform endeavour},
  booktitle = {ACM International Conference on Computing Frontiers},
  year = {2018},
  doi = {10.1145/3203217.3205340},
  keywords = {cloud, HPC, AI, federated platform}
}
@article{amaral2020programming,
  author = {Amaral, Vasco and Norberto, Beatriz and Goulao, Miguel and Aldinucci, Marco},
  title = {Programming languages for data-Intensive HPC applications: A systematic mapping study},
  journal = {Parallel Computing},
  year = {2020},
  doi = {10.1016/j.parco.2019.102584},
  keywords = {systematic mapping study, HPC, programming languages}
}
@article{arjona2021triggerflow,
  author = {Arjona, Aitor and Garcia Lopez, Pedro and Sampe, Josep},
  title = {Triggerflow: Trigger-based orchestration of serverless workflows},
  journal = {Future Generation Computer Systems},
  year = {2021},
  doi = {10.1016/j.future.2021.06.004},
  keywords = {serverless, orchestration, workflows}
}
@article{balouekthomert2019towards,
  author = {Balouek-Thomert, Daniel and Gibert Renart, Eduard and Zamani, Ali Reza},
  title = {Towards a computing continuum: Enabling edge-to-cloud integration for data-driven workflows},
  journal = {International Journal of High Performance Computing Applications},
  year = {2019},
  doi = {10.1177/1094342019877383},
  keywords = {computing continuum, edge, cloud, workflows}
}
@article{belcastro2019parsoda,
  author = {Belcastro, Loris and Marozzo, Fabrizio and Talia, Domenico and Trunfio, Paolo},
  title = {ParSoDA: high-level parallel programming for social data mining},
  journal = {Social Network Analysis and Mining},
  year = {2019},
  doi = {10.1007/s13278-018-0547-5},
  keywords = {parallel data mining, big data, social data}
}
@inproceedings{bennun2020workflows,
  author = {Ben-Nun, Tal and Gamblin, Todd and Hollman, Daisy S.},
  title = {Workflows are the New Applications: Challenges in Performance, Portability, and Productivity},
  booktitle = {IEEE/ACM International Workshop on Performance, Portability and Productivity in HPC (P3HPC)},
  year = {2020},
  doi = {10.1109/P3HPC51967.2020.00011},
  keywords = {workflows, performance portability, productivity}
}
@article{bonelli2022nethuns,
  author = {Bonelli, Nicola and Del Vigna, Fabio and Fais, Alessandra and Lettieri, Giuseppe and Procissi, Gregorio},
  title = {Programming socket-independent network functions with nethuns},
  journal = {SIGCOMM Computer Communication Review},
  year = {2022},
  doi = {10.1145/3544912.3544917},
  keywords = {network functions, sockets, portability}
}
@inproceedings{bousselmi2016energy,
  author = {Bousselmi, Khadija and Brahmi, Zaki and Gammoudi, Mohamed Mohsen},
  title = {Energy Efficient Partitioning and Scheduling Approach for Scientific Workflows in the Cloud},
  booktitle = {IEEE International Conference on Services Computing (SCC)},
  year = {2016},
  doi = {10.1109/SCC.2016.26},
  keywords = {energy efficiency, scheduling, scientific workflows}
}
@article{cantini2022blest,
  author = {Cantini, Riccardo and Marozzo, Fabrizio and Orsino, Alessio and Talia, Domenico and Trunfio, Paolo},
  title = {Block size estimation for data partitioning in HPC applications using machine learning techniques},
  journal = {CoRR},
  year = {2022},
  doi = {10.48550/arXiv.2211.10819},
  keywords = {data partitioning, machine learning, HPC}
}
@inproceedings{cao2014energy,
  author = {Cao, Fei and Zhu, Michelle M. and Wu, Chase Q.},
  title = {Energy-Efficient Resource Management for Scientific Workflows in Clouds},
  booktitle = {IEEE World Congress on Services (SERVICES)},
  year = {2014},
  doi = {10.1109/SERVICES.2014.76},
  keywords = {energy efficiency, resource management, cloud}
}
@article{catena2017pesos,
  author = {Catena, Matteo and Tonellotto, Nicola},
  title = {Energy-Efficient Query Processing in Web Search Engines},
  journal = {IEEE Transactions on Knowledge and Data Engineering},
  year = {2017},
  doi = {10.1109/TKDE.2017.2681279},
  keywords = {energy efficiency, query processing, search engines}
}
@article{cerroni2022bdmaas,
  author = {Cerroni, Walter and Foschini, Luca and Grabarnik, Genady Ya and Poltronieri, Filippo and Shwartz, Larisa and Stefanelli, Cesare and Tortonesi, Mauro},
  title = {BDMaaS+: Business-Driven and Simulation-Based Optimization of IT Services in the Hybrid Cloud},
  journal = {IEEE Transactions on Network and Service Management},
  year = {2022},
  doi = {10.1109/TNSM.2021.3110139},
  keywords = {hybrid cloud, optimization, IT services}
}
@article{cesario2022chd,
  author = {Cesario, Eugenio and Uchubilo, Paschal I. and Vinci, Andrea and Zhu, Xiaotian},
  title = {Multi-density urban hotspots detection in smart cities: A data-driven approach and experiments},
  journal = {Pervasive and Mobile Computing},
  year = {2022},
  doi = {10.1016/j.pmcj.2022.101687},
  keywords = {clustering, smart cities, hotspots}
}
@article{colonnelli2022jupyter,
  author = {Colonnelli, Iacopo and Aldinucci, Marco and Cantalupo, Barbara and Padovani, Luca},
  title = {Distributed workflows with Jupyter},
  journal = {Future Generation Computer Systems},
  year = {2022},
  doi = {10.1016/j.future.2021.10.007},
  keywords = {Jupyter, workflows, distributed computing}
}
@article{colonnelli2021streamflow,
  author = {Colonnelli, Iacopo and Cantalupo, Barbara and Merelli, Ivan and Aldinucci, Marco},
  title = {StreamFlow: cross-breeding cloud with HPC},
  journal = {IEEE Transactions on Emerging Topics in Computing},
  year = {2021},
  doi = {10.1109/TETC.2020.3019202},
  keywords = {workflow management, cloud, HPC}
}
@article{costantini2022iotwins,
  author = {Costantini, Alessandro and Di Modica, Giuseppe and Ahouangonou, Jean Christian},
  title = {IoTwins: Toward Implementation of Distributed Digital Twins in Industry 4.0 Settings},
  journal = {Computers},
  year = {2022},
  doi = {10.3390/computers11050067},
  keywords = {digital twins, orchestration, industry 4.0}
}
@article{dasilva2023workflows,
  author = {Ferreira da Silva, Rafael and Badia, Rosa M. and Bala, Venkat},
  title = {Workflows Community Summit 2022: A Roadmap Revolution},
  journal = {CoRR},
  year = {2023},
  doi = {10.48550/arXiv.2304.00019},
  keywords = {workflows, community, roadmap}
}
@article{dube2021future,
  author = {Dube, Nicolas and Roweth, Duncan and Faraboschi, Paolo and Milojicic, Dejan S.},
  title = {Future of HPC: The Internet of Workflows},
  journal = {IEEE Internet Computing},
  year = {2021},
  doi = {10.1109/MIC.2021.3103236},
  keywords = {HPC, workflows, internet of workflows}
}
@article{edwards2014kokkos,
  author = {Edwards, H. Carter and Trott, Christian R. and Sunderland, Daniel},
  title = {Kokkos: Enabling manycore performance portability through polymorphic memory access patterns},
  journal = {Journal of Parallel and Distributed Computing},
  year = {2014},
  doi = {10.1016/j.jpdc.2014.07.003},
  keywords = {performance portability, manycore, memory access}
}
@article{feng2007green500,
  author = {Feng, Wu-chun and Cameron, Kirk W.},
  title = {The Green500 List: Encouraging Sustainable Supercomputing},
  journal = {Computer},
  year = {2007},
  doi = {10.1109/MC.2007.445},
  keywords = {energy efficiency, supercomputing, green computing}
}
@inproceedings{ferragina2010compressing,
  author = {Ferragina, Paolo and Manzini, Giovanni},
  title = {On compressing the textual web},
  booktitle = {International Conference on Web Search and Web Data Mining (WSDM)},
  year = {2010},
  doi = {10.1145/1718487.1718536},
  keywords = {compression, web data}
}
@article{fryxell2000flash,
  author = {Fryxell, Bruce and Olson, Kevin and Ricker, Paul M.},
  title = {FLASH: An Adaptive Mesh Hydrodynamics Code for Modeling Astrophysical Thermonuclear Flashes},
  journal = {The Astrophysical Journal Supplement Series},
  year = {2000},
  doi = {10.1086/317361},
  keywords = {adaptive mesh refinement, hydrodynamics, astrophysics}
}
@inproceedings{galimberti2023oscar,
  author = {Galimberti, Enrico and Guindani, Bruno and Filippini, Federica and Sedghani, Hamta and Ardagna, Danilo},
  title = {OSCAR-P and aMLLibrary: Performance Profiling and Prediction of Computing Continua Applications},
  booktitle = {Companion of the ACM/SPEC International Conference on Performance Engineering (ICPE)},
  year = {2023},
  doi = {10.1145/3578245.3584941},
  keywords = {autoML, performance prediction, computing continuum}
}
@article{iorio2022liqo,
  author = {Iorio, Marco and Risso, Fulvio and Palesandro, Alex and Camiciotti, Leonardo and Manzalini, Antonio},
  title = {Computing Without Borders: The Way Towards Liquid Computing},
  journal = {IEEE Transactions on Cloud Computing},
  year = {2022},
  doi = {10.1109/TCC.2022.3229163},
  keywords = {Kubernetes, federation, liquid computing}
}
@inproceedings{kluyver2016jupyter,
  author = {Kluyver, Thomas and Ragan-Kelley, Benjamin and Perez, Fernando and Granger, Brian E.},
  title = {Jupyter Notebooks - a publishing format for reproducible computational workflows},
  booktitle = {Positioning and Power in Academic Publishing},
  year = {2016},
  doi = {10.3233/978-1-61499-649-1-87},
  keywords = {Jupyter, notebooks, reproducibility}
}
@article{lannelongue2021green,
  author = {Lannelongue, Loic and Grealey, Jason and Inouye, Michael},
  title = {Green Algorithms: Quantifying the Carbon Footprint of Computation},
  journal = {Advanced Science},
  year = {2021},
  doi = {10.1002/advs.202100707},
  keywords = {carbon footprint, green computing}
}
@article{lapegna2021clustering,
  author = {Lapegna, Marco and Balzano, Walter and Meyer, Norbert and Romano, Diego},
  title = {Clustering Algorithms on Low-Power and High-Performance Devices for Edge Computing Environments},
  journal = {Sensors},
  year = {2021},
  doi = {10.3390/s21165395},
  keywords = {clustering, low-power devices, edge computing}
}
@inproceedings{lattner2004llvm,
  author = {Lattner, Chris and Adve, Vikram S.},
  title = {LLVM: A Compilation Framework for Lifelong Program Analysis and Transformation},
  booktitle = {IEEE/ACM International Symposium on Code Generation and Optimization (CGO)},
  year = {2004},
  doi = {10.1109/CGO.2004.1281665},
  keywords = {compilers, LLVM, program analysis}
}
@inproceedings{lattner2021mlir,
  author = {Lattner, Chris and Amini, Mehdi and Bondhugula, Uday and Cohen, Albert},
  title = {MLIR: Scaling Compiler Infrastructure for Domain Specific Computation},
  booktitle = {IEEE/ACM International Symposium on Code Generation and Optimization (CGO)},
  year = {2021},
  doi = {10.1109/CGO51591.2021.9370308},
  keywords = {compilers, intermediate representation, MLIR}
}
@inproceedings{delucia2023gpu,
  author = {De Lucia, Gianluca and Lapegna, Marco and Romano, Diego},
  title = {A GPU Accelerated Hyperspectral 3D Convolutional Neural Network Classification at the Edge with Principal Component Analysis Preprocessing},
  booktitle = {Parallel Processing and Applied Mathematics},
  year = {2023},
  keywords = {hyperspectral imaging, CNN, edge computing, GPU}
}
@inproceedings{martinelli2023capio,
  author = {Martinelli, Alberto Riccardo and Torquati, Massimo and Colonnelli, Iacopo and Cantalupo, Barbara and Aldinucci, Marco},
  title = {CAPIO: a Middleware for Transparent I/O Streaming in Data-Intensive Workflows},
  booktitle = {IEEE International Conference on High Performance Computing, Data, and Analytics (HiPC)},
  year = {2023},
  keywords = {I/O streaming, middleware, workflows}
}
@article{mencagli2021windflow,
  author = {Mencagli, Gabriele and Torquati, Massimo and Cardaci, Andrea and Fais, Alessandra and Rinaldi, Luca and Danelutto, Marco},
  title = {WindFlow: High-Speed Continuous Stream Processing With Parallel Building Blocks},
  journal = {IEEE Transactions on Parallel and Distributed Systems},
  year = {2021},
  doi = {10.1109/TPDS.2021.3073970},
  keywords = {stream processing, multi-core, GPU}
}
@article{mingotti2021pmu,
  author = {Mingotti, Alessandro and Costa, Federica and Cavaliere, Diego and Peretto, Lorenzo and Tinarelli, Roberto},
  title = {On the Importance of Characterizing Virtual PMUs for Hardware-in-the-Loop and Digital Twin Applications},
  journal = {Sensors},
  year = {2021},
  doi = {10.3390/s21186133},
  keywords = {phasor measurement unit, hardware-in-the-loop, digital twin}
}
@article{misale2017comparison,
  author = {Misale, Claudia and Drocco, Maurizio and Aldinucci, Marco and Tremblay, Guy},
  title = {A Comparison of Big Data Frameworks on a Layered Dataflow Model},
  journal = {Parallel Processing Letters},
  year = {2017},
  doi = {10.1142/S0129626417400035},
  keywords = {big data, dataflow, frameworks}
}
@inproceedings{pastor2021looking,
  author = {Pastor, Eliana and de Alfaro, Luca and Baralis, Elena},
  title = {Looking for Trouble: Analyzing Classifier Behavior via Pattern Divergence},
  booktitle = {SIGMOD International Conference on Management of Data},
  year = {2021},
  doi = {10.1145/3448016.3457284},
  keywords = {pattern divergence, classifier analysis, subgroups}
}
@inproceedings{petersen2008systematic,
  author = {Petersen, Kai and Feldt, Robert and Mujtaba, Shahid and Mattsson, Michael},
  title = {Systematic Mapping Studies in Software Engineering},
  booktitle = {International Conference on Evaluation and Assessment in Software Engineering (EASE)},
  year = {2008},
  keywords = {systematic mapping study, methodology, software engineering}
}
@article{puliafito2022movequic,
  author = {Puliafito, Carlo and Conforti, Luca and Virdis, Antonio and Mingozzi, Enzo},
  title = {Server-side QUIC connection migration to support microservice deployment at the edge},
  journal = {Pervasive and Mobile Computing},
  year = {2022},
  doi = {10.1016/j.pmcj.2022.101580},
  keywords = {QUIC, migration, microservices, edge}
}
@article{reed2015exascale,
  author = {Reed, Daniel A. and Dongarra, Jack J.},
  title = {Exascale computing and Big Data},
  journal = {Communications of the ACM},
  year = {2015},
  doi = {10.1145/2699414},
  keywords = {exascale, big data, HPC}
}
@inproceedings{rosa2022insane,
  author = {Rosa, Lorenzo and Garbugli, Andrea},
  title = {INSANE - A Uniform Middleware API for Differentiated Quality using Heterogeneous Acceleration Techniques at the Network Edge},
  booktitle = {IEEE International Conference on Distributed Computing Systems (ICDCS)},
  year = {2022},
  doi = {10.1109/ICDCS54860.2022.00134},
  keywords = {middleware, network acceleration, edge}
}
@inproceedings{roy2022mashup,
  author = {Roy, Rohan Basu and Patel, Tirthak and Gadepally, Vijay and Tiwari, Devesh},
  title = {Mashup: making serverless computing useful for HPC workflows via hybrid execution},
  booktitle = {ACM SIGPLAN Symposium on Principles and Practice of Parallel Programming (PPoPP)},
  year = {2022},
  doi = {10.1145/3503221.3508407},
  keywords = {serverless, HPC, workflows, hybrid execution}
}
@inproceedings{russorusso2023serverledge,
  author = {Russo Russo, Gabriele and Mannucci, Tiziana and Cardellini, Valeria and Lo Presti, Francesco},
  title = {Serverledge: Decentralized Function-as-a-Service for the Edge-Cloud Continuum},
  booktitle = {IEEE International Conference on Pervasive Computing and Communications (PerCom)},
  year = {2023},
  doi = {10.1109/PERCOM56429.2023.10099372},
  keywords = {FaaS, edge-cloud continuum, serverless}
}
@article{tomarchio2021torch,
  author = {Tomarchio, Orazio and Calcaterra, Domenico and Di Modica, Giuseppe and Mazzaglia, Pietro},
  title = {TORCH: a TOSCA-Based Orchestrator of Multi-Cloud Containerised Applications},
  journal = {Journal of Grid Computing},
  year = {2021},
  doi = {10.1007/s10723-021-09549-z},
  keywords = {TOSCA, orchestration, multi-cloud}
}
@inproceedings{yoo2003slurm,
  author = {Yoo, Andy B. and Jette, Morris A. and Grondona, Mark},
  title = {SLURM: Simple Linux Utility for Resource Management},
  booktitle = {Job Scheduling Strategies for Parallel Processing (JSSPP)},
  year = {2003},
  doi = {10.1007/10968987_3},
  keywords = {SLURM, resource management, batch scheduling}
}
@inproceedings{zaharia2012rdd,
  author = {Zaharia, Matei and Chowdhury, Mosharaf and Das, Tathagata and Dave, Ankur},
  title = {Resilient Distributed Datasets: A Fault-Tolerant Abstraction for In-Memory Cluster Computing},
  booktitle = {USENIX Symposium on Networked Systems Design and Implementation (NSDI)},
  year = {2012},
  keywords = {RDD, in-memory computing, fault tolerance}
}
@article{zaruba2021snitch,
  author = {Zaruba, Florian and Schuiki, Fabian and Hoefler, Torsten and Benini, Luca},
  title = {Snitch: A Tiny Pseudo Dual-Issue Processor for Area and Energy Efficient Execution of Floating-Point Intensive Workloads},
  journal = {IEEE Transactions on Computers},
  year = {2021},
  doi = {10.1109/TC.2020.3027900},
  keywords = {RISC-V, processor, energy efficiency}
}
"""


def bibliography_bibtex() -> str:
    """The embedded BibTeX source of the paper's reference sample."""
    return _BIBTEX


def paper_bibliography() -> Corpus:
    """Load the reference sample as a deduplicated :class:`Corpus`."""
    return Corpus.from_bibtex(_BIBTEX)
