"""Datasets: the encoded ICSC ground truth, expected values, synthetic generators."""

from repro.data.icsc import (
    icsc_applications,
    icsc_ecosystem,
    icsc_institutions,
    icsc_spokes,
    icsc_tools,
    spoke1_structure,
)
from repro.data.synthetic import (
    synthetic_corpus,
    synthetic_ecosystem,
    synthetic_ratings,
    synthetic_workflows,
)

__all__ = [
    "icsc_applications",
    "icsc_ecosystem",
    "icsc_institutions",
    "icsc_spokes",
    "icsc_tools",
    "spoke1_structure",
    "synthetic_corpus",
    "synthetic_ecosystem",
    "synthetic_ratings",
    "synthetic_workflows",
]
