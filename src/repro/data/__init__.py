"""Datasets: the encoded ICSC ground truth, expected values, synthetic generators."""

from repro.data.icsc import (
    icsc_applications,
    icsc_ecosystem,
    icsc_institutions,
    icsc_spokes,
    icsc_tools,
    spoke1_structure,
)

__all__ = [
    "icsc_applications",
    "icsc_ecosystem",
    "icsc_institutions",
    "icsc_spokes",
    "icsc_tools",
    "spoke1_structure",
]
