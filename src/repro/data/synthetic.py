"""Seeded synthetic dataset generators.

Scale benchmarks and property tests need ecosystems and corpora far larger
than the 25-tool ICSC sample.  Generators here are deterministic under a
seed (``numpy.random.default_rng``) and produce entities that pass the same
validation as the real dataset:

* :func:`synthetic_ecosystem` — N institutions, M tools, K applications
  whose descriptions are built from per-direction phrase templates, so
  automatic classifiers have real signal to find;
* :func:`synthetic_corpus` — bibliographic records with optional injected
  near-duplicates, for dedup and query benchmarks;
* :func:`synthetic_ratings` — multi-rater label matrices with a controlled
  agreement level, for kappa benchmarks;
* :func:`synthetic_workflows` — a fleet of workflow DAGs mixing random
  graphs and fork-join pipelines, the substrate for Monte-Carlo sweeps
  (:mod:`repro.continuum.montecarlo`).
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import (
    ApplicationCatalog,
    InstitutionRegistry,
    ToolCatalog,
)
from repro.core.entities import Application, Institution, InstitutionKind, Tool
from repro.core.taxonomy import ClassificationScheme, workflow_directions
from repro.corpus.corpus import Corpus
from repro.corpus.publication import Publication
from repro.errors import ValidationError

__all__ = [
    "synthetic_ecosystem",
    "synthetic_corpus",
    "synthetic_ratings",
    "synthetic_workflows",
    "DIRECTION_PHRASES",
]

#: Per-direction phrase banks used to assemble synthetic tool descriptions.
DIRECTION_PHRASES: dict[str, tuple[str, ...]] = {
    "interactive-computing": (
        "interactive access to HPC resources through Jupyter notebooks",
        "on-demand reservation of batch nodes from a web dashboard",
        "a notebook kernel that executes cells on remote clusters",
        "near-instantaneous interactive sessions over SLURM",
    ),
    "orchestration": (
        "TOSCA-based deployment of containerised applications",
        "orchestration of hybrid workflows across cloud and HPC",
        "dynamic federation of Kubernetes clusters",
        "placement and live migration of micro-services at the edge",
        "serverless function scheduling in the computing continuum",
    ),
    "energy-efficiency": (
        "energy-aware placement of virtual machines under QoS constraints",
        "reducing the power consumption of edge sensor devices",
        "carbon footprint accounting for computational workloads",
        "low-power implementations of clustering algorithms",
    ),
    "performance-portability": (
        "a portable dataflow programming model for heterogeneous systems",
        "abstraction of the network layer behind uniform primitives",
        "transparent interception of POSIX I/O for storage portability",
        "compiler-level optimization through multi-level IR",
        "machine-learning-driven block size tuning for data partitioning",
    ),
    "big-data-management": (
        "parallel data mining over large social datasets",
        "continuous stream processing on multi-core and GPU architectures",
        "autoML training of performance models over profiling data",
        "distributed analytics over large graph data",
        "real-time simulation data sources for digital twins",
    ),
}

_GENERIC_PHRASES = (
    "designed for large-scale scientific applications",
    "targeting the computing continuum",
    "developed within a national research collaboration",
    "validated on production scientific workloads",
)


def _pick(rng: np.random.Generator, items: tuple[str, ...]) -> str:
    return items[int(rng.integers(len(items)))]


def synthetic_ecosystem(
    *,
    n_institutions: int = 9,
    n_tools: int = 25,
    n_applications: int = 10,
    scheme: ClassificationScheme | None = None,
    seed: int = 0,
    selection_rate: float = 0.12,
) -> tuple[InstitutionRegistry, ToolCatalog, ApplicationCatalog, ClassificationScheme]:
    """Generate a validated synthetic ecosystem.

    Tools get directions sampled uniformly and descriptions assembled from
    the matching phrase bank; applications select each tool independently
    with probability *selection_rate* (then at least one tool is forced so
    no application is empty).
    """
    if n_institutions < 1 or n_tools < 1 or n_applications < 1:
        raise ValidationError("all entity counts must be >= 1")
    if not 0.0 <= selection_rate <= 1.0:
        raise ValidationError("selection_rate must be in [0, 1]")
    scheme = scheme or workflow_directions()
    for key in scheme.keys:
        if key not in DIRECTION_PHRASES:
            raise ValidationError(
                f"no phrase bank for category {key!r}; supply a 5-direction scheme"
            )
    rng = np.random.default_rng(seed)

    institutions = InstitutionRegistry(
        Institution(
            f"inst-{i:03d}",
            f"Synthetic Institution {i}",
            f"SI{i:03d}",
            InstitutionKind.UNIVERSITY,
        )
        for i in range(n_institutions)
    )

    tools = ToolCatalog()
    direction_keys = scheme.keys
    for i in range(n_tools):
        direction = direction_keys[int(rng.integers(len(direction_keys)))]
        phrases = [
            _pick(rng, DIRECTION_PHRASES[direction]),
            _pick(rng, DIRECTION_PHRASES[direction]),
            _pick(rng, _GENERIC_PHRASES),
        ]
        tools.add(
            Tool(
                f"tool-{i:04d}",
                f"Tool{i:04d}",
                f"inst-{int(rng.integers(n_institutions)):03d}",
                direction,
                description=(
                    f"A research tool providing {phrases[0]}, "
                    f"also supporting {phrases[1]}, {phrases[2]}."
                ),
            )
        )

    applications = ApplicationCatalog()
    tool_keys = np.asarray(tools.keys)
    for j in range(n_applications):
        mask = rng.random(n_tools) < selection_rate
        if not mask.any():
            mask[int(rng.integers(n_tools))] = True
        selected = tuple(tool_keys[mask])
        domain_dir = direction_keys[int(rng.integers(len(direction_keys)))]
        applications.add(
            Application(
                f"app-{j:03d}",
                f"Synthetic Application {j}",
                f"3.{j + 1}",
                providers=(f"inst-{int(rng.integers(n_institutions)):03d}",),
                domain="synthetic",
                description=(
                    f"A scientific application needing {_pick(rng, DIRECTION_PHRASES[domain_dir])} "
                    f"and {_pick(rng, _GENERIC_PHRASES)}."
                ),
                selected_tools=selected,
            )
        )
    return institutions, tools, applications, scheme


def synthetic_workflows(
    n_workflows: int = 6,
    *,
    size_range: tuple[int, int] = (20, 80),
    edge_probability: float = 0.15,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (0.0, 2.0),
    pipeline_fraction: float = 0.33,
    seed: int = 0,
) -> tuple:
    """Generate a fleet of workflow DAGs for Monte-Carlo sweeps.

    The fleet mixes the two canonical scheduling-benchmark shapes:
    ``round(n * pipeline_fraction)`` fork-join pipelines
    (:func:`~repro.continuum.workflow.layered_workflow`) and random DAGs
    (:func:`~repro.continuum.workflow.random_workflow`) for the rest.
    Each workflow gets its own sub-seed derived from *seed*, a unique
    name (``wf-000-random`` / ``wf-001-pipeline`` ...), and a task count
    drawn uniformly from ``size_range``; determinism under *seed* makes
    fleets safe to use in content-addressed sweep cache keys.

    Returns a tuple of :class:`~repro.continuum.workflow.Workflow` — the
    shape :class:`~repro.continuum.montecarlo.SweepSpec` expects.
    """
    from repro.continuum.workflow import layered_workflow, random_workflow

    if n_workflows < 1:
        raise ValidationError("n_workflows must be >= 1")
    if not 1 <= size_range[0] <= size_range[1]:
        raise ValidationError("size_range must satisfy 1 <= lo <= hi")
    if not 0.0 <= pipeline_fraction <= 1.0:
        raise ValidationError("pipeline_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_pipelines = int(round(n_workflows * pipeline_fraction))

    workflows = []
    for i in range(n_workflows):
        n_tasks = int(rng.integers(size_range[0], size_range[1] + 1))
        sub_seed = int(rng.integers(2**31))
        if i < n_pipelines:
            # Factor the size into layers × width near the golden split
            # (more layers than width: pipelines are long, not wide).
            width = max(1, int(round(np.sqrt(n_tasks / 2.0))))
            n_layers = max(2, n_tasks // width)
            workflows.append(
                layered_workflow(
                    n_layers,
                    width,
                    work=float(np.mean(work_range)),
                    output_size=float(np.mean(output_range)),
                    name=f"wf-{i:03d}-pipeline",
                )
            )
        else:
            workflows.append(
                random_workflow(
                    n_tasks,
                    edge_probability=edge_probability,
                    seed=sub_seed,
                    work_range=work_range,
                    output_range=output_range,
                    name=f"wf-{i:03d}-random",
                )
            )
    return tuple(workflows)


_TITLE_NOUNS = (
    "workflows", "orchestration", "scheduling", "provenance", "pipelines",
    "streaming", "portability", "federation", "placement", "migration",
    "checkpointing", "analytics", "inference", "compression", "simulation",
)
_TITLE_ADJS = (
    "scalable", "energy-aware", "distributed", "serverless", "elastic",
    "hybrid", "portable", "interactive", "hierarchical", "adaptive",
)
_TITLE_CONTEXTS = (
    "HPC systems", "the computing continuum", "edge clouds",
    "exascale platforms", "scientific applications", "Kubernetes clusters",
    "heterogeneous architectures", "data centres",
)
_VENUES = (
    "IEEE Transactions on Parallel and Distributed Systems",
    "Future Generation Computer Systems",
    "ACM Computing Frontiers",
    "IEEE International Conference on Distributed Computing Systems (ICDCS)",
    "Journal of Grid Computing",
    "Workshops of SC (SC-W)",
    "Parallel Computing",
    "CoRR",
)
_SURNAMES = (
    "Rossi", "Bianchi", "Ferrari", "Russo", "Esposito", "Romano", "Colombo",
    "Ricci", "Marino", "Greco", "Conti", "Gallo", "Costa", "Fontana",
)


def synthetic_corpus(
    n_publications: int = 200,
    *,
    seed: int = 0,
    duplicate_fraction: float = 0.0,
    year_range: tuple[int, int] = (2005, 2023),
) -> Corpus:
    """Generate a synthetic bibliographic corpus.

    With ``duplicate_fraction > 0``, that fraction of records are near-
    duplicates of earlier ones (case changes, subtitle truncation, ±1 year)
    so dedup benchmarks have known ground truth: the returned corpus has
    ``n_publications`` records of which ``round(n * fraction)`` duplicate an
    original.
    """
    if n_publications < 1:
        raise ValidationError("n_publications must be >= 1")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValidationError("duplicate_fraction must be in [0, 1)")
    if year_range[0] > year_range[1]:
        raise ValidationError("empty year range")
    rng = np.random.default_rng(seed)
    n_duplicates = int(round(n_publications * duplicate_fraction))
    n_originals = n_publications - n_duplicates

    originals: list[Publication] = []
    for i in range(n_originals):
        adj = _pick(rng, _TITLE_ADJS)
        noun = _pick(rng, _TITLE_NOUNS)
        ctx = _pick(rng, _TITLE_CONTEXTS)
        title = f"{adj.capitalize()} {noun} for {ctx}: a case study {i}"
        year = int(rng.integers(year_range[0], year_range[1] + 1))
        authors = tuple(
            f"{_pick(rng, _SURNAMES)}, {chr(65 + int(rng.integers(26)))}."
            for _ in range(int(rng.integers(1, 5)))
        )
        originals.append(
            Publication(
                key=f"syn-{i:05d}",
                title=title,
                authors=authors,
                year=year,
                venue=_pick(rng, _VENUES),
                abstract=(
                    f"We present an approach to {adj} {noun} targeting {ctx}. "
                    f"Experiments show improvements over state-of-the-art baselines."
                ),
                kind="article",
            )
        )

    records = list(originals)
    for j in range(n_duplicates):
        source = originals[int(rng.integers(len(originals)))]
        mutation = int(rng.integers(3))
        title = source.title
        year = source.year
        if mutation == 0:
            title = title.upper()
        elif mutation == 1:
            title = title.split(":")[0]  # subtitle truncation
        else:
            year = (year or 2020) + 1
        # The duplicate's key records its source, giving dedup benchmarks an
        # exact ground truth to score recall against.
        records.append(
            Publication(
                key=f"dup-{j:05d}-of-{source.key}",
                title=title,
                authors=source.authors,
                year=year,
                venue=source.venue,
                kind="article",
            )
        )
    return Corpus(records)


def synthetic_ratings(
    n_items: int = 100,
    n_raters: int = 3,
    n_categories: int = 5,
    *,
    agreement: float = 0.8,
    seed: int = 0,
) -> list[list[int]]:
    """Multi-rater nominal labels with a controlled agreement level.

    Each item has a true category; each rater reports it with probability
    *agreement*, otherwise a uniformly random other category.  Returns one
    label list per rater (aligned on items).
    """
    if not 0.0 <= agreement <= 1.0:
        raise ValidationError("agreement must be in [0, 1]")
    if n_items < 1 or n_raters < 2 or n_categories < 2:
        raise ValidationError("need >= 1 item, >= 2 raters, >= 2 categories")
    rng = np.random.default_rng(seed)
    truth = rng.integers(n_categories, size=n_items)
    ratings: list[list[int]] = []
    for _ in range(n_raters):
        agree = rng.random(n_items) < agreement
        noise = rng.integers(1, n_categories, size=n_items)
        labels = np.where(agree, truth, (truth + noise) % n_categories)
        ratings.append(labels.astype(int).tolist())
    return ratings
