"""The ICSC ecosystem dataset encoded from the paper.

This module is the ground truth of the reproduction: the 25 tools (Table 1),
the 10 applications with their tool selections (Table 2), the participating
institutions, and the Spoke 1 organizational structure (Fig. 1).

Tool descriptions are condensed from the paper's Sec. 2 prose and application
descriptions from Sec. 3; they are the *inputs* of the automatic classifier
and requirement matcher that simulate the paper's manual steps.

Provenance notes
----------------
The tool→institution mapping is not tabulated in the paper; it is
reconstructed from the author affiliations of each tool's citation (see
DESIGN.md §3).  Assignments that the paper text does not make explicit carry
``institution_inferred=True``.  The reconstruction satisfies every textual
constraint: exactly 9 tool-providing institutions, more than half covering a
single research direction, and none covering all five.
"""

from __future__ import annotations

from functools import lru_cache as _lru_cache

from repro.core.catalog import (
    ApplicationCatalog,
    InstitutionRegistry,
    ToolCatalog,
    validate_ecosystem,
)
from repro.core.entities import (
    Application,
    Institution,
    InstitutionKind,
    Reference,
    Tool,
)
from repro.core.taxonomy import (
    BIG_DATA_MANAGEMENT as BD,
    ENERGY_EFFICIENCY as EE,
    INTERACTIVE_COMPUTING as IC,
    ORCHESTRATION as OR,
    PERFORMANCE_PORTABILITY as PP,
    ClassificationScheme,
    workflow_directions,
)

__all__ = [
    "icsc_institutions",
    "icsc_tools",
    "icsc_applications",
    "icsc_ecosystem",
    "spoke1_structure",
    "icsc_spokes",
    "dataset_version",
]


@_lru_cache(maxsize=1)
def dataset_version() -> str:
    """A content-address of the encoded dataset: SHA-256 of this module.

    Used by :mod:`repro.pipeline` as the data-version component of stage
    cache keys, so editing the encoded dataset automatically invalidates
    every cached artifact derived from it.
    """
    import hashlib
    from pathlib import Path

    source = Path(__file__).read_bytes()
    return hashlib.sha256(source).hexdigest()[:16]

_UNIVERSITY = InstitutionKind.UNIVERSITY
_CENTRE = InstitutionKind.RESEARCH_CENTRE
_COMPUTING = InstitutionKind.COMPUTING_CENTRE


def icsc_institutions() -> InstitutionRegistry:
    """All ICSC partners appearing in the study (tool and application providers)."""
    return InstitutionRegistry(
        [
            Institution("unito", "University of Turin", "UNITO", _UNIVERSITY, "Turin"),
            Institution("unipi", "University of Pisa", "UNIPI", _UNIVERSITY, "Pisa"),
            Institution("unibo", "University of Bologna", "UNIBO", _UNIVERSITY, "Bologna"),
            Institution("polito", "Polytechnic University of Turin", "POLITO", _UNIVERSITY, "Turin"),
            Institution("polimi", "Polytechnic University of Milan", "POLIMI", _UNIVERSITY, "Milan"),
            Institution("unical", "University of Calabria", "UNICAL", _UNIVERSITY, "Rende"),
            Institution("unina", "University of Naples Federico II", "UNINA", _UNIVERSITY, "Naples"),
            Institution("unife", "University of Ferrara", "UNIFE", _UNIVERSITY, "Ferrara"),
            Institution("cineca", "CINECA", "CINECA", _COMPUTING, "Bologna"),
            # Application-only providers.
            Institution("inaf", "INAF", "INAF", _CENTRE, "Catania"),
            Institution("iit", "Fondazione IIT", "IIT", _CENTRE, "Genoa"),
            Institution("unipd", "University of Padua", "UNIPD", _UNIVERSITY, "Padua"),
            Institution("unirtv", "University of Rome Tor Vergata", "UNIRTV", _UNIVERSITY, "Rome"),
            Institution("enea", "ENEA HPC laboratory", "ENEA", _CENTRE, "Rome"),
        ]
    )


def icsc_tools() -> ToolCatalog:
    """The 25 collected tools with their published Table 1 classification."""
    return ToolCatalog(
        [
            # ---------------- Interactive computing (3) ----------------
            Tool(
                "bookedslurm",
                "BookedSlurm",
                "cineca",
                IC,
                description=(
                    "A SLURM plugin introducing a methodology to easily create "
                    "resource reservations through a web calendar and account "
                    "for them under a pay-per-use mode using a digital "
                    "currency, enabling on-demand interactive access to batch "
                    "HPC resources."
                ),
                institution_inferred=True,
            ),
            Tool(
                "ics",
                "ICS",
                "cineca",
                IC,
                description=(
                    "The Interactive Computing Service integrates the Jupyter "
                    "stack with the SLURM controller to interactively provide "
                    "near-instantaneous access to HPC resources, bridging the "
                    "publicly exposed front-end web server and air-gapped "
                    "worker nodes."
                ),
                reference=Reference("CINECA, Interactive Computing Service (IAC)", 2023),
            ),
            Tool(
                "jupyter-workflow",
                "Jupyter Workflow",
                "unito",
                IC,
                secondary_directions=(OR,),
                description=(
                    "A Jupyter Notebook kernel enabling notebooks to describe "
                    "and orchestrate complex distributed workflows, where "
                    "each cell is a step and inter-cell dependencies are "
                    "extracted semi-automatically by inspecting the abstract "
                    "syntax tree of each code cell."
                ),
                reference=Reference(
                    "Colonnelli et al., Distributed workflows with Jupyter, FGCS", 2022,
                    doi="10.1016/j.future.2021.10.007",
                ),
            ),
            # ---------------- Orchestration (7) ----------------
            Tool(
                "torch",
                "TORCH",
                "unibo",
                OR,
                description=(
                    "A TOSCA-based framework for the deployment and "
                    "orchestration of multi-cloud containerised applications, "
                    "driving application provisioning across heterogeneous "
                    "cloud providers."
                ),
                reference=Reference(
                    "Tomarchio et al., TORCH: a TOSCA-Based Orchestrator of "
                    "Multi-Cloud Containerised Applications, J. Grid Comput.",
                    2021,
                    doi="10.1007/s10723-021-09549-z",
                ),
                institution_inferred=True,
            ),
            Tool(
                "indigo",
                "INDIGO",
                "unibo",
                OR,
                description=(
                    "A TOSCA-based orchestrator for deploying and "
                    "orchestrating applications targeting multi-cloud "
                    "environments, producing deployment plans from "
                    "standardized application blueprints."
                ),
                reference=Reference(
                    "Costantini et al., IoTwins: Toward Implementation of "
                    "Distributed Digital Twins in Industry 4.0 Settings, Computers",
                    2022,
                    doi="10.3390/computers11050067",
                ),
                institution_inferred=True,
            ),
            Tool(
                "liqo",
                "Liqo",
                "polito",
                OR,
                description=(
                    "Enables dynamic and seamless Kubernetes multi-cluster "
                    "topologies, creating federations of networked computing "
                    "resources for liquid computing across cluster borders."
                ),
                reference=Reference(
                    "Iorio et al., Computing Without Borders: The Way Towards "
                    "Liquid Computing, IEEE TCC",
                    2022,
                    doi="10.1109/TCC.2022.3229163",
                ),
            ),
            Tool(
                "streamflow",
                "StreamFlow",
                "unito",
                OR,
                secondary_directions=(PP,),
                description=(
                    "A workflow management system that orchestrates hybrid "
                    "workflows on top of heterogeneous cloud and HPC "
                    "execution environments, cross-breeding cloud with HPC "
                    "through a portable deployment model."
                ),
                reference=Reference(
                    "Colonnelli et al., StreamFlow: cross-breeding cloud with "
                    "HPC, IEEE TETC",
                    2021,
                    doi="10.1109/TETC.2020.3019202",
                ),
            ),
            Tool(
                "spf",
                "SPF",
                "unife",
                OR,
                description=(
                    "Sieve, Process and Forward: a Fog-as-a-Service platform "
                    "targeting Smart City environments, provisioning fog "
                    "services close to data sources."
                ),
                reference=Reference(
                    "Distributed System Group, University of Ferrara, SPF", 2015,
                    url="https://github.com/DSG-UniFE/spf",
                ),
            ),
            Tool(
                "bdmaas-plus",
                "BDMaaS+",
                "unife",
                OR,
                description=(
                    "A business-driven, simulation-based decision support "
                    "tool for service providers who want to distribute an IT "
                    "service on a global scale relying on private and public "
                    "cloud platforms, optimizing service placement against "
                    "provider-defined policies."
                ),
                reference=Reference(
                    "Cerroni et al., BDMaaS+: Business-Driven and "
                    "Simulation-Based Optimization of IT Services in the "
                    "Hybrid Cloud, IEEE TNSM",
                    2022,
                    doi="10.1109/TNSM.2021.3110139",
                ),
            ),
            Tool(
                "movequic",
                "MoveQUIC",
                "unipi",
                OR,
                description=(
                    "A toolbox for the live migration of micro-services at "
                    "the edge, supporting server-side QUIC connection "
                    "migration so compute bundles keep ongoing communications "
                    "with client endpoints while being redeployed."
                ),
                reference=Reference(
                    "Puliafito et al., Server-side QUIC connection migration "
                    "to support microservice deployment at the edge, PMC",
                    2022,
                    doi="10.1016/j.pmcj.2022.101580",
                ),
            ),
            # ---------------- Energy efficiency (3) ----------------
            Tool(
                "pesos",
                "PESOS",
                "unipi",
                EE,
                description=(
                    "An energy-efficient resource management algorithm for "
                    "the placement of virtual machines in a cloud "
                    "environment, minimizing the energy footprint of the "
                    "overall platform while honouring per-VM QoS "
                    "requirements."
                ),
                reference=Reference(
                    "Catena and Tonellotto, Energy-Efficient Query Processing "
                    "in Web Search Engines, IEEE TKDE",
                    2017,
                    doi="10.1109/TKDE.2017.2681279",
                ),
            ),
            Tool(
                "lapegna-et-al",
                "Lapegna et al.",
                "unina",
                EE,
                description=(
                    "Investigates how to implement clustering algorithms on "
                    "parallel and low-energy devices for edge computing "
                    "environments, trading power consumption against "
                    "performance on resource-constrained sensors."
                ),
                reference=Reference(
                    "Lapegna et al., Clustering Algorithms on Low-Power and "
                    "High-Performance Devices for Edge Computing "
                    "Environments, Sensors",
                    2021,
                    doi="10.3390/s21165395",
                ),
            ),
            Tool(
                "de-lucia-et-al",
                "De Lucia et al.",
                "unina",
                EE,
                description=(
                    "A technique to make hyperspectral image classification "
                    "through convolutional neural networks affordable on "
                    "low-power and high-performance sensor devices, cutting "
                    "the energy cost of on-sensor inference."
                ),
                reference=Reference(
                    "De Lucia et al., A GPU Accelerated Hyperspectral 3D "
                    "Convolutional Neural Network Classification at the Edge "
                    "with Principal Component Analysis Preprocessing, PPAM",
                    2023,
                ),
            ),
            # ---------------- Performance portability (6) ----------------
            Tool(
                "fastflow",
                "FastFlow",
                "unipi",
                PP,
                description=(
                    "Leverages the structured parallel programming "
                    "methodology to define a single streaming dataflow "
                    "programming model portable across shared-memory and "
                    "distributed-memory systems."
                ),
                reference=Reference(
                    "Aldinucci et al., FastFlow: high-level and efficient "
                    "streaming on multi-core",
                    2017,
                    doi="10.1002/9781119332015.ch13",
                ),
                institution_inferred=True,
            ),
            Tool(
                "nethuns",
                "Nethuns",
                "unipi",
                PP,
                description=(
                    "Abstracts the network layer exposing a minimal set of "
                    "socket-independent communication primitives, so network "
                    "functions can be programmed once and retargeted across "
                    "I/O frameworks."
                ),
                reference=Reference(
                    "Bonelli et al., Programming socket-independent network "
                    "functions with nethuns, CCR",
                    2022,
                    doi="10.1145/3544912.3544917",
                ),
            ),
            Tool(
                "insane",
                "INSANE",
                "unibo",
                PP,
                description=(
                    "A uniform middleware API for differentiated quality "
                    "using heterogeneous acceleration techniques at the "
                    "network edge, abstracting low-level network acceleration "
                    "behind portable communication primitives."
                ),
                reference=Reference(
                    "Rosa and Garbugli, INSANE - A Uniform Middleware API for "
                    "Differentiated Quality using Heterogeneous Acceleration "
                    "Techniques at the Network Edge, ICDCS",
                    2022,
                    doi="10.1109/ICDCS54860.2022.00134",
                ),
            ),
            Tool(
                "capio",
                "CAPIO",
                "unipi",
                PP,
                description=(
                    "A programmable file system in user space that intercepts "
                    "the POSIX I/O system calls of an application, allowing "
                    "users to target different storage devices and inject "
                    "data streaming capabilities without modifying the "
                    "existing codebase."
                ),
                reference=Reference(
                    "Martinelli et al., CAPIO: a Middleware for Transparent "
                    "I/O Streaming in Data-Intensive Workflows, HiPC",
                    2023,
                ),
                institution_inferred=True,
            ),
            Tool(
                "blest-ml",
                "BLEST-ML",
                "unical",
                PP,
                description=(
                    "Leverages a machine learning algorithm to estimate a "
                    "suitable block size for data partitioning in large-scale "
                    "HPC infrastructures, optimizing data-parallel "
                    "applications without per-platform hand tuning."
                ),
                reference=Reference(
                    "Cantini et al., Block size estimation for data "
                    "partitioning in HPC applications using machine learning "
                    "techniques, CoRR",
                    2022,
                    doi="10.48550/arXiv.2211.10819",
                ),
            ),
            Tool(
                "mlir",
                "MLIR",
                "unipi",
                PP,
                description=(
                    "Extends the LLVM compiler toolchain with domain-specific "
                    "middle-end intermediate representations, making "
                    "compiler-level code optimizations more flexible and "
                    "letting different abstraction levels co-exist in a "
                    "uniform IR grammar."
                ),
                reference=Reference(
                    "Lattner et al., MLIR: Scaling Compiler Infrastructure "
                    "for Domain Specific Computation, CGO",
                    2021,
                    doi="10.1109/CGO51591.2021.9370308",
                ),
                institution_inferred=True,
            ),
            # ---------------- Big Data management (6) ----------------
            Tool(
                "parsoda",
                "ParSoDA",
                "unical",
                BD,
                description=(
                    "A Java programming library supporting parallel data "
                    "mining applications executed on HPC systems, with a set "
                    "of ready-to-use functions for processing and analyzing "
                    "social data."
                ),
                reference=Reference(
                    "Belcastro et al., ParSoDA: high-level parallel "
                    "programming for social data mining, SNAM",
                    2019,
                    doi="10.1007/s13278-018-0547-5",
                ),
            ),
            Tool(
                "malaga",
                "MALAGA",
                "unibo",
                BD,
                description=(
                    "A Hadoop-compliant Java-based framework for "
                    "multi-dimensional Big Data analytics over graph data, "
                    "running distributed analytical queries over large "
                    "property graphs."
                ),
                institution_inferred=True,
            ),
            Tool(
                "amllibrary",
                "aMLLibrary",
                "polimi",
                BD,
                description=(
                    "A high-level Python package that trains and optimizes "
                    "multiple performance models using autoML, supporting "
                    "feature selection and hyperparameter tuning for "
                    "regression over profiling data."
                ),
                reference=Reference(
                    "Galimberti et al., OSCAR-P and aMLLibrary: Performance "
                    "Profiling and Prediction of Computing Continua "
                    "Applications, ICPE Companion",
                    2023,
                    doi="10.1145/3578245.3584941",
                ),
            ),
            Tool(
                "windflow",
                "WindFlow",
                "unipi",
                BD,
                secondary_directions=(PP,),
                description=(
                    "A high-level library for continuous data stream "
                    "processing on multi-core and hybrid CPU+GPU "
                    "architectures, built from parallel building blocks with "
                    "complex streaming semantics."
                ),
                reference=Reference(
                    "Mencagli et al., WindFlow: High-Speed Continuous Stream "
                    "Processing With Parallel Building Blocks, IEEE TPDS",
                    2021,
                    doi="10.1109/TPDS.2021.3073970",
                ),
            ),
            Tool(
                "chd",
                "CHD",
                "unical",
                BD,
                description=(
                    "Implements a parallel multi-density clustering approach "
                    "to discover urban hotspots in a city, mining mobility "
                    "data for smart-city analytics."
                ),
                reference=Reference(
                    "Cesario et al., Multi-density urban hotspots detection "
                    "in smart cities: A data-driven approach and experiments, PMC",
                    2022,
                    doi="10.1016/j.pmcj.2022.101687",
                ),
            ),
            Tool(
                "mingotti-et-al",
                "Mingotti et al.",
                "unibo",
                BD,
                description=(
                    "A real-time simulator of a phasor measurement unit "
                    "supporting hardware-in-the-loop simulation techniques, "
                    "acting as a high-rate measurement data source for "
                    "digital twin applications."
                ),
                reference=Reference(
                    "Mingotti et al., On the Importance of Characterizing "
                    "Virtual PMUs for Hardware-in-the-Loop and Digital Twin "
                    "Applications, Sensors",
                    2021,
                    doi="10.3390/s21186133",
                ),
            ),
        ]
    )


def icsc_applications() -> ApplicationCatalog:
    """The 10 surveyed applications with their published Table 2 selections."""
    return ApplicationCatalog(
        [
            Application(
                "software-heritage-compression",
                "Compression of petascale collections of textual and source-code files",
                "3.1",
                providers=("unipi",),
                domain="data compression",
                description=(
                    "Compressing the steadily growing Software Heritage "
                    "archive (over 800 TB) with the Permuting + Partition + "
                    "Compress paradigm: parallel sorting of files by "
                    "similarity, serialization and grouping into blocks, and "
                    "parallel compression of blocks, scaling a "
                    "single-threaded Python prototype to a parallel and "
                    "distributed batch pipeline with stream parallelism "
                    "between phases and hardware accelerators."
                ),
                selected_tools=("fastflow", "parsoda", "windflow"),
            ),
            Application(
                "visivo",
                "Astrophysics data analysis and visualization",
                "3.2",
                providers=("inaf",),
                domain="astrophysics",
                description=(
                    "VisIVO performs 3D and multi-dimensional data analysis "
                    "and knowledge discovery on multivariate astrophysical "
                    "datasets through importing, filtering, and viewing "
                    "stages.  The evolution targets portable modular "
                    "applications, reproducibility, flexible exploitation of "
                    "heterogeneous HPC and cloud facilities, and minimized "
                    "data-movement and I/O overheads without modifying the "
                    "original codebase."
                ),
                selected_tools=(
                    "ics", "jupyter-workflow", "streamflow", "nethuns", "capio",
                ),
            ),
            Application(
                "variant-calling",
                "Genomic variant calling pipeline",
                "3.3",
                providers=("iit",),
                domain="genomics",
                description=(
                    "Adapting a genomic variant calling pipeline to remote "
                    "execution on HPC systems through a workflow management "
                    "system, gaining agile provisioning and the flexibility "
                    "to test heterogeneous execution environments, GPUs, and "
                    "different storage and file systems."
                ),
                selected_tools=("streamflow",),
            ),
            Application(
                "continuum-federation",
                "Edge-Cloud Continuum federation infrastructure",
                "3.4",
                providers=("unipd",),
                domain="distributed systems",
                description=(
                    "A decentralized, federated continuum platform where "
                    "workflows are specified in terms of required services "
                    "and dynamically matched to provided services under "
                    "latency, privacy, and energy preferences.  Needs "
                    "server-side connection migration for mobile compute "
                    "bundles, federation of cluster zones, and a flexible "
                    "dynamic orchestration control plane."
                ),
                selected_tools=("indigo", "liqo", "movequic"),
            ),
            Application(
                "serverledge",
                "Serverledge: QoS-Aware FaaS in the Edge-Cloud Continuum",
                "3.5",
                providers=("unirtv",),
                domain="serverless computing",
                description=(
                    "A decentralized Function-as-a-Service framework for "
                    "low-latency execution in the Edge-Cloud continuum, "
                    "evolving toward live migration of long-running function "
                    "instances and holistic energy-efficient orchestration "
                    "that consolidates load to power off cloud nodes."
                ),
                selected_tools=("movequic", "pesos"),
            ),
            Application(
                "galaxy-formation",
                "Improving I/O phases in computational modelling of Galaxy Formation",
                "3.6",
                providers=("enea", "unina"),
                domain="astrophysics",
                description=(
                    "A workflow gluing the FLASH adaptive-mesh-refinement "
                    "hydrodynamics code with the SYGMA stellar-yield package, "
                    "running concurrently and asynchronously with periodic "
                    "output synchronization.  The bottleneck is parallel I/O "
                    "of checkpoints, data files, and inter-code data "
                    "exchange, to be improved without modifying the original "
                    "codes."
                ),
                selected_tools=("nethuns", "capio"),
            ),
            Application(
                "worlddynamics",
                "WorldDynamics.jl",
                "3.7",
                providers=("unipi",),
                domain="integrated assessment modelling",
                description=(
                    "A Julia framework to investigate integrated assessment "
                    "models of sustainable development, recreating World1-3 "
                    "model figures, running sensitivity analyses and "
                    "alternative scenarios.  Seeks readable distributed model "
                    "execution, parallel simulation campaigns, regression via "
                    "autoML over simulation data, and real-time simulator "
                    "data sources for finer-grained model discovery."
                ),
                selected_tools=(
                    "jupyter-workflow", "bdmaas-plus", "amllibrary", "mingotti-et-al",
                ),
            ),
            Application(
                "cloud-native-deployment",
                "Optimized deployment of Cloud-native applications in the Cloud Continuum",
                "3.8",
                providers=("unibo", "unife"),
                domain="cloud computing",
                description=(
                    "Optimized deployment of complex cloud-native HPC "
                    "applications over multi-cloud scenarios: the application "
                    "is described in TOSCA, a simulation-based optimizer "
                    "selects computing resources under pricing and latency "
                    "policies, the orchestrator produces Kubernetes intents, "
                    "and a federation layer instantiates the distributed "
                    "components across clusters."
                ),
                selected_tools=("indigo", "liqo", "bdmaas-plus"),
            ),
            Application(
                "divexplorer",
                "Anomalous subgroup characterization with DivExplorer",
                "3.9",
                providers=("polito",),
                domain="machine learning analysis",
                description=(
                    "Automatic exploration of datasets to find interpretable "
                    "subgroups where a model behaves anomalously, via "
                    "frequent pattern mining and divergence measures.  Seeks "
                    "parallel data mining on HPC systems, subgroup-aware "
                    "regression model selection, and interactive HPC access "
                    "from a Jupyter launcher."
                ),
                selected_tools=("ics", "parsoda", "amllibrary"),
            ),
            Application(
                "mlir-riscv",
                "Compilation flow and deployment strategy targeting HPC RISC-V accelerators",
                "3.10",
                providers=("polimi",),
                domain="compilers",
                description=(
                    "Demonstrating the MLIR compilation flow in an HPC "
                    "environment for experimental RISC-V accelerators: "
                    "implementing the low-level representations and "
                    "transformations down to LLVM IR, with a workflow "
                    "management tool orchestrating the optimization flow."
                ),
                selected_tools=("streamflow", "mlir"),
            ),
        ]
    )


def icsc_ecosystem() -> tuple[
    InstitutionRegistry, ToolCatalog, ApplicationCatalog, ClassificationScheme
]:
    """Load and cross-validate the full ICSC dataset.

    Returns ``(institutions, tools, applications, scheme)``, already passed
    through :func:`repro.core.catalog.validate_ecosystem`.
    """
    institutions = icsc_institutions()
    tools = icsc_tools()
    applications = icsc_applications()
    scheme = workflow_directions()
    validate_ecosystem(institutions, tools, applications, scheme)
    return institutions, tools, applications, scheme


def spoke1_structure() -> dict:
    """The Spoke 1 organizational structure of Fig. 1, as plain data.

    Returned as a nested dict so the visualization layer can render it
    without importing entity classes.
    """
    return {
        "name": "Spoke 1 - FutureHPC & Big Data",
        "financial_envelope_meur": 21.5,
        "cascade_funding_meur": 3.2,
        "innovation_grants_meur": 1.8,
        "flagships": [
            {
                "key": "fl1",
                "title": "Non-functional properties: energy, power reliability, "
                         "performance portability",
                "coordinator": "polito",
            },
            {
                "key": "fl2",
                "title": "Heterogeneous acceleration - architecture, tools, software",
                "coordinator": "polimi",
            },
            {
                "key": "fl3",
                "title": "Workflows & I/O, cloud-HPC convergence, digital twins",
                "coordinator": "unipi",
            },
            {
                "key": "fl4",
                "title": "Confidential computing - Trusted Execution Env & "
                         "Federated Learning",
                "coordinator": "unina",
            },
            {
                "key": "fl5",
                "title": "Mini-applications & benchmarking",
                "coordinator": "unict",
            },
        ],
        "living_labs": [
            {"key": "hws", "title": "Hardware & Systems living lab", "leader": "unibo"},
            {"key": "swi", "title": "Software & Integration living lab", "leader": "unito"},
        ],
        "leaders": ["unibo", "unito"],
        "participants": [
            "polimi", "polito", "unipi", "unipd", "unirtv", "unina", "unict",
            "unical", "unife", "cineca", "enea", "iit", "inaf",
        ],
        "industries": [
            "Autostrade", "ENI", "Engineering", "Fincantieri",
            "Intesa SanPaolo", "Leonardo C.", "Sogei", "ThalesAlenia",
            "UnipolSai", "iFAB",
        ],
    }


def icsc_spokes() -> list[dict]:
    """The 11 ICSC spokes (Sec. 1.1), as plain data."""
    return [
        {"number": 0, "title": "Supercomputing Cloud infrastructure"},
        {"number": 1, "title": "FutureHPC & Big Data"},
        {"number": 2, "title": "Fundamental research & space economy"},
        {"number": 3, "title": "Astrophysics & cosmos observation"},
        {"number": 4, "title": "Earth & climate"},
        {"number": 5, "title": "Environment & natural disasters"},
        {"number": 6, "title": "Multiscale modelling & engineering applications"},
        {"number": 7, "title": "Material & molecular sciences"},
        {"number": 8, "title": "In-silico medicine & omics data"},
        {"number": 9, "title": "Digital society & smart cities"},
        {"number": 10, "title": "Quantum Computing"},
    ]
