"""Published values of every table and figure, for verification.

These constants transcribe the paper's evaluation artifacts; tests and
benchmarks assert that the pipeline regenerates them from the raw dataset.
EXPERIMENTS.md records paper-vs-measured for each entry.
"""

from __future__ import annotations

from repro.core.taxonomy import DIRECTION_KEYS

__all__ = [
    "N_TOOLS",
    "N_APPLICATIONS",
    "N_TOOL_INSTITUTIONS",
    "N_APPLICATION_PROVIDERS",
    "FIG2_COUNTS",
    "FIG3_HISTOGRAM",
    "FIG4_VOTES",
    "TABLE2_TOTAL_SELECTIONS",
    "TABLE1_COLUMNS",
    "Q2_SHARES",
    "Q3_SHARES",
]

#: Paper abstract / Sec. 2: number of collected tools.
N_TOOLS = 25

#: Paper abstract / Sec. 3: number of collected applications.
N_APPLICATIONS = 10

#: Sec. 2: "25 different tools from 9 Italian research institutions".
N_TOOL_INSTITUTIONS = 9

#: Sec. 3: "10 scientific applications from 11 ICSC partners".
N_APPLICATION_PROVIDERS = 11

#: Fig. 2 — tools per research direction, in scheme (paper) order.
FIG2_COUNTS: dict[str, int] = dict(zip(DIRECTION_KEYS, (3, 7, 3, 6, 6)))

#: Fig. 3 — institutions covering exactly k directions, k = 1..5.
#: The exact bars are reconstructed (see DESIGN.md §3) under the paper's
#: constraints: 9 institutions, more than half at k=1, none at k=5.
FIG3_HISTOGRAM: dict[int, int] = {1: 5, 2: 2, 3: 1, 4: 1, 5: 0}

#: Fig. 4 — tool-selection votes per research direction (Table 2 column sums
#: grouped by direction), in scheme order.  28 votes total.
FIG4_VOTES: dict[str, int] = dict(zip(DIRECTION_KEYS, (4, 11, 1, 6, 6)))

#: Table 2 — total number of checkmarks.
TABLE2_TOTAL_SELECTIONS = 28

#: Table 1 — column heads (the five research directions, paper order).
TABLE1_COLUMNS = (
    "Interactive computing",
    "Orchestration",
    "Energy efficiency",
    "Performance portability",
    "Big Data management",
)

#: Sec. 4 Q2 — quoted shares of Fig. 2: 3/25 = 12%, 7/25 = 28%.
Q2_SHARES = {"interactive-computing": 0.12, "orchestration": 0.28}

#: Sec. 4 Q3 — quoted bounds on Fig. 4 shares: energy "below 3.6%" (1/28),
#: orchestration "above 39%" (11/28).
Q3_SHARES = {"energy-efficiency-max": 0.036, "orchestration-min": 0.39}

#: Table 1 — full published classification: direction key -> tool names in
#: paper row order.
TABLE1_CONTENT: dict[str, tuple[str, ...]] = {
    "interactive-computing": ("BookedSlurm", "ICS", "Jupyter Workflow"),
    "orchestration": (
        "TORCH", "INDIGO", "Liqo", "StreamFlow", "SPF", "BDMaaS+", "MoveQUIC",
    ),
    "energy-efficiency": ("PESOS", "Lapegna et al.", "De Lucia et al."),
    "performance-portability": (
        "FastFlow", "Nethuns", "INSANE", "CAPIO", "BLEST-ML", "MLIR",
    ),
    "big-data-management": (
        "ParSoDA", "MALAGA", "aMLLibrary", "WindFlow", "CHD", "Mingotti et al.",
    ),
}

#: Table 2 — published checkmarks: application section -> tool names.
TABLE2_CONTENT: dict[str, tuple[str, ...]] = {
    "3.1": ("FastFlow", "ParSoDA", "WindFlow"),
    "3.2": ("ICS", "Jupyter Workflow", "StreamFlow", "Nethuns", "CAPIO"),
    "3.3": ("StreamFlow",),
    "3.4": ("INDIGO", "Liqo", "MoveQUIC"),
    "3.5": ("MoveQUIC", "PESOS"),
    "3.6": ("Nethuns", "CAPIO"),
    "3.7": ("Jupyter Workflow", "BDMaaS+", "aMLLibrary", "Mingotti et al."),
    "3.8": ("INDIGO", "Liqo", "BDMaaS+"),
    "3.9": ("ICS", "ParSoDA", "aMLLibrary"),
    "3.10": ("StreamFlow", "MLIR"),
}
