"""The :class:`RunRecord` model and builders that digest real runs.

A run record is the unit the ledger (:mod:`repro.obs.registry`) stores:
one JSON-serializable snapshot of *what ran, how long it took, and what
it produced*.  Three ingredient groups:

* **identity** — run id, UTC timestamp, run kind, the
  :func:`repro.data.icsc.dataset_version` fingerprint, and the pipeline
  configuration digest (:meth:`~repro.pipeline.runner.Pipeline.run_key`),
  so a comparison never silently spans a code/data change;
* **performance** — per-stage wall/CPU durations, execution vs
  cache-hit counts, and hit ratios lifted from a
  :class:`repro.telemetry.Telemetry` span tree (via
  :func:`repro.telemetry.profile.stage_profiles`), plus selected
  counters from the metrics snapshot;
* **results** — SHA-256 digests of every produced artifact (Table 1/2
  rows, Fig. 2–4 series, report sections).  Each artifact carries two
  digests: ``sha256`` over the items in order, and ``content_sha256``
  over the items sorted — which is what lets the watchdog tell
  *benign ordering drift* from *value drift*.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "RECORD_FORMAT",
    "ArtifactDigest",
    "StageStats",
    "RunRecord",
    "digest_items",
    "study_artifacts",
    "stage_stats_from_telemetry",
    "metrics_of_interest",
    "build_study_record",
    "build_simulation_record",
    "build_sweep_record",
    "build_corpus_record",
]

#: Bump when the serialized record layout changes incompatibly.
RECORD_FORMAT = 1

#: Metric counters worth carrying into the ledger when present.
_LEDGER_METRICS = (
    "pipeline.stages_executed",
    "pipeline.stages_cached",
    "cache.hits",
    "cache.misses",
    "cache.stores",
    "cache.evictions",
    "manifest.writes",
    "sim.events",
    "sim.tasks",
    "sim.failures_injected",
    "sim.retries",
    "sim.migrations",
    "mc.replications",
    "mc.rounds",
    "mc.replications_saved",
    "mc.cells_computed",
    "mc.cells_cached",
    "stat.draws",
    "stat.rounds",
    "stat.draws_saved",
    "stat.tasks_computed",
    "stat.tasks_cached",
    "corpus.records_ingested",
    "corpus.records_rejected",
    "corpus.batches_committed",
    "corpus.query_candidates",
    "corpus.query_hits",
    "corpus.query_full_scans",
    "corpus.dedup_pairs_scored",
    "corpus.dedup_clusters",
    "corpus.dedup_dropped",
)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def digest_items(items: Iterable[Any]) -> "ArtifactDigest":
    """Digest a sequence of JSON-representable items, order-aware.

    Every item is canonicalized through ``json.dumps(sort_keys=True,
    default=str)`` first, so dict key order never fakes a drift.  The
    ordered digest hashes the lines as given; the content digest hashes
    them sorted — identical content in a different order keeps the same
    ``content_sha256``.
    """
    lines = [
        json.dumps(item, sort_keys=True, default=str) for item in items
    ]
    return ArtifactDigest(
        sha256=_digest("\n".join(lines)),
        content_sha256=_digest("\n".join(sorted(lines))),
        n_items=len(lines),
    )


@dataclass(frozen=True, slots=True)
class ArtifactDigest:
    """Order-aware + order-insensitive fingerprints of one artifact."""

    sha256: str
    content_sha256: str
    n_items: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "sha256": self.sha256,
            "content_sha256": self.content_sha256,
            "n_items": self.n_items,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArtifactDigest":
        return cls(
            sha256=str(payload.get("sha256", "")),
            content_sha256=str(payload.get("content_sha256", "")),
            n_items=int(payload.get("n_items", 0)),
        )


@dataclass(frozen=True, slots=True)
class StageStats:
    """One stage's performance in one run."""

    wall_s: float = 0.0
    cpu_s: float = 0.0
    executions: int = 0
    cache_hits: int = 0

    @property
    def hit_ratio(self) -> float | None:
        lookups = self.executions + self.cache_hits
        return self.cache_hits / lookups if lookups else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "hit_ratio": self.hit_ratio,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageStats":
        return cls(
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            executions=int(payload.get("executions", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
        )


@dataclass(frozen=True)
class RunRecord:
    """One ledger entry: identity, performance, and result fingerprints.

    Attributes
    ----------
    run_id:
        Unique id, ``<UTC compact timestamp>-<8 hex chars>``.
    kind:
        What ran: ``"icsc-study"``, ``"continuum-sim"``, ...
    created_utc:
        ISO-8601 UTC creation time.
    dataset_version:
        :func:`repro.data.icsc.dataset_version` fingerprint (or the
        simulator's input digest) — comparisons across different data
        versions classify digest changes as *expected*, not drift.
    config_digest:
        Digest of the full pipeline/simulation configuration.
    wall_s:
        Total wall seconds of the run.
    stages:
        Stage name → :class:`StageStats`.
    metrics:
        Selected counter values (cache hits, failures injected, ...).
    artifacts:
        Artifact name → :class:`ArtifactDigest`.
    meta:
        Free-form strings (seed, parallel flag, CLI argv, ...).
    """

    run_id: str
    kind: str
    created_utc: str
    dataset_version: str = ""
    config_digest: str = ""
    wall_s: float = 0.0
    stages: dict[str, StageStats] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    artifacts: dict[str, ArtifactDigest] = field(default_factory=dict)
    meta: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict (the ledger's NDJSON line payload)."""
        return {
            "format": RECORD_FORMAT,
            "run_id": self.run_id,
            "kind": self.kind,
            "created_utc": self.created_utc,
            "dataset_version": self.dataset_version,
            "config_digest": self.config_digest,
            "wall_s": self.wall_s,
            "stages": {
                name: stats.to_dict() for name, stats in self.stages.items()
            },
            "metrics": dict(self.metrics),
            "artifacts": {
                name: digest.to_dict()
                for name, digest in self.artifacts.items()
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from a parsed ledger line.

        Raises :class:`ValueError` on structurally unusable payloads
        (the registry catches it and skips the line with a warning).
        """
        if not isinstance(payload, Mapping):
            raise ValueError("ledger line is not a JSON object")
        run_id = payload.get("run_id")
        if not run_id or not isinstance(run_id, str):
            raise ValueError("ledger line has no run_id")
        stages_raw = payload.get("stages") or {}
        artifacts_raw = payload.get("artifacts") or {}
        if not isinstance(stages_raw, Mapping) or not isinstance(
            artifacts_raw, Mapping
        ):
            raise ValueError("ledger line has malformed stages/artifacts")
        return cls(
            run_id=run_id,
            kind=str(payload.get("kind", "unknown")),
            created_utc=str(payload.get("created_utc", "")),
            dataset_version=str(payload.get("dataset_version", "")),
            config_digest=str(payload.get("config_digest", "")),
            wall_s=float(payload.get("wall_s", 0.0)),
            stages={
                str(name): StageStats.from_dict(stats)
                for name, stats in stages_raw.items()
            },
            metrics={
                str(name): float(value)
                for name, value in (payload.get("metrics") or {}).items()
            },
            artifacts={
                str(name): ArtifactDigest.from_dict(digest)
                for name, digest in artifacts_raw.items()
            },
            meta={
                str(key): str(value)
                for key, value in (payload.get("meta") or {}).items()
            },
        )


def new_run_id(payload: Any = None) -> str:
    """A fresh run id: compact UTC timestamp + 8 content/entropy hex chars."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    entropy = hashlib.sha256(
        repr((payload, time.time_ns(), os.getpid(), os.urandom(8))).encode()
    ).hexdigest()[:8]
    return f"{stamp}-{entropy}"


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


# -- telemetry lifting -------------------------------------------------------------


def stage_stats_from_telemetry(telemetry: Any) -> dict[str, StageStats]:
    """Per-stage wall/CPU/hit stats from a recorded telemetry span tree."""
    if telemetry is None or not getattr(telemetry, "enabled", False):
        return {}
    from repro.telemetry.profile import stage_profiles

    return {
        profile.name: StageStats(
            wall_s=profile.wall,
            cpu_s=profile.cpu,
            executions=profile.executions,
            cache_hits=profile.cache_hits,
        )
        for profile in stage_profiles(telemetry.tracer.spans())
    }


def metrics_of_interest(telemetry: Any) -> dict[str, float]:
    """The ledger-worthy counter values from a telemetry metrics snapshot."""
    if telemetry is None or not getattr(telemetry, "enabled", False):
        return {}
    snapshot = telemetry.metrics.snapshot()
    values: dict[str, float] = {}
    for name in _LEDGER_METRICS:
        summary = snapshot.get(name)
        if summary and "value" in summary:
            values[name] = float(summary["value"])
    return values


def _run_wall_seconds(telemetry: Any) -> float:
    """Wall seconds of the run-level (root) span, 0.0 when untraced."""
    if telemetry is None or not getattr(telemetry, "enabled", False):
        return 0.0
    return max(
        (
            span.duration or 0.0
            for span in telemetry.tracer.spans()
            if span.parent_id is None
        ),
        default=0.0,
    )


# -- artifact digesting ------------------------------------------------------------


def study_artifacts(results: Any) -> dict[str, ArtifactDigest]:
    """Digest every reported artifact of a :class:`StudyResults`.

    Covers the paper's outputs end to end: Table 1/2 rows, the Fig. 2
    distribution, Fig. 3 coverage, Fig. 4 votes (and the supply/demand
    shares behind them), and the rendered report's sections.
    """
    from repro import workflow_directions
    from repro.reporting import study_report

    def table_rows(table: Any) -> list[Any]:
        return [list(table.header)] + [list(row) for row in table.rows]

    def frequency_series(table: Any) -> list[Any]:
        return [[str(label), int(count)] for label, count in table.items()]

    scheme = workflow_directions()
    report_sections = [
        section.strip()
        for section in study_report(results, scheme).split("\n## ")
    ]
    artifacts = {
        "table1": digest_items(table_rows(results.table1)),
        "table2": digest_items(table_rows(results.table2)),
        "fig2_distribution": digest_items(
            frequency_series(results.q2.distribution)
        ),
        "fig3_coverage": digest_items(frequency_series(results.q2.coverage)),
        "fig4_votes": digest_items(frequency_series(results.q3.votes)),
        "supply_shares": digest_items(
            sorted((str(k), round(v, 12)) for k, v in results.q2.shares.items())
        ),
        "demand_shares": digest_items(
            sorted((str(k), round(v, 12)) for k, v in results.q3.shares.items())
        ),
        "report_sections": digest_items(report_sections),
    }
    return artifacts


# -- record builders ---------------------------------------------------------------


def build_study_record(
    results: Any,
    run: Any = None,
    *,
    telemetry: Any = None,
    kind: str = "icsc-study",
    meta: Mapping[str, Any] | None = None,
) -> RunRecord:
    """A :class:`RunRecord` for one ICSC study run.

    Parameters
    ----------
    results:
        The :class:`~repro.core.study.StudyResults` the run produced.
    run:
        The :class:`~repro.pipeline.runner.PipelineResult`, when the run
        went through the pipeline (supplies the configuration digest).
    telemetry:
        The :class:`repro.telemetry.Telemetry` that observed the run;
        per-stage durations and cache ratios are lifted from it.  With
        disabled/absent telemetry the record still captures identity and
        artifact digests (stages empty).
    """
    from repro.data.icsc import dataset_version
    from repro.pipeline.cache import stable_digest

    artifacts = study_artifacts(results)
    config_digest = ""
    if run is not None and getattr(run, "keys", None):
        config_digest = stable_digest({"stages": dict(run.keys)})
    return RunRecord(
        run_id=new_run_id(config_digest),
        kind=kind,
        created_utc=_utc_now(),
        dataset_version=dataset_version(),
        config_digest=config_digest,
        wall_s=_run_wall_seconds(telemetry),
        stages=stage_stats_from_telemetry(telemetry),
        metrics=metrics_of_interest(telemetry),
        artifacts=artifacts,
        meta={str(k): str(v) for k, v in (meta or {}).items()},
    )


def build_simulation_record(
    trace: Any,
    *,
    telemetry: Any = None,
    kind: str = "continuum-sim",
    meta: Mapping[str, Any] | None = None,
) -> RunRecord:
    """A :class:`RunRecord` for one continuum simulation run.

    Works for both :class:`~repro.continuum.simulate.ExecutionTrace` and
    :class:`~repro.continuum.failures.FailureTrace`: the realized
    placements are the digested artifact, makespan/slowdown land in the
    metrics, and failure counters ride in from the telemetry snapshot
    (see the instrumented simulators).
    """
    placements = [
        [p.task, p.resource, round(p.start, 9), round(p.finish, 9)]
        for p in trace.placements
    ]
    metrics = metrics_of_interest(telemetry)
    metrics["sim.makespan"] = float(trace.makespan)
    metrics["sim.slowdown"] = float(trace.slowdown)
    for extra in ("n_failures", "n_migrations", "lost_work", "busy_energy"):
        value = getattr(trace, extra, None)
        if value is not None:
            metrics[f"sim.{extra}"] = float(value)
    return RunRecord(
        run_id=new_run_id(placements),
        kind=kind,
        created_utc=_utc_now(),
        dataset_version="",
        config_digest="",
        wall_s=_run_wall_seconds(telemetry),
        stages=stage_stats_from_telemetry(telemetry),
        metrics=metrics,
        artifacts={"placements": digest_items(placements)},
        meta={str(k): str(v) for k, v in (meta or {}).items()},
    )


def build_corpus_record(
    store: Any,
    *,
    telemetry: Any = None,
    operation: str = "ingest",
    summary: Mapping[str, Any] | None = None,
    kind: str = "corpus-store",
    meta: Mapping[str, Any] | None = None,
) -> RunRecord:
    """A :class:`RunRecord` for one corpus-store operation.

    The digested artifact is the store's ordered key sequence — cheap at
    any corpus size, yet it pins both membership and insertion order, so
    the watchdog can tell an ingest that produced different records (or
    a dedup that merged differently) from an identical re-run.  Counters
    (``corpus.records_ingested``, ``corpus.dedup_pairs_scored``, ...)
    ride in from telemetry; *summary* values (an
    :class:`~repro.corpus.store.IngestReport` or
    :class:`~repro.corpus.store.DedupSummary` ``to_dict()``) are folded
    into the metrics so a record is complete even for untraced stores.
    """
    keys = list(store.keys)
    metrics = metrics_of_interest(telemetry)
    metrics["corpus.records"] = float(len(keys))
    for name, value in (summary or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[f"corpus.{operation}.{name}"] = float(value)
    return RunRecord(
        run_id=new_run_id(keys),
        kind=kind,
        created_utc=_utc_now(),
        dataset_version="",
        config_digest="",
        wall_s=_run_wall_seconds(telemetry),
        stages=stage_stats_from_telemetry(telemetry),
        metrics=metrics,
        artifacts={"corpus_keys": digest_items(keys)},
        meta={"operation": operation}
        | {str(k): str(v) for k, v in (meta or {}).items()},
    )


def build_sweep_record(
    result: Any,
    *,
    telemetry: Any = None,
    config_digest: str = "",
    kind: str = "mc-sweep",
    meta: Mapping[str, Any] | None = None,
) -> RunRecord:
    """A :class:`RunRecord` for one Monte-Carlo sweep.

    The digested artifact is the full per-cell statistics table of a
    :class:`~repro.continuum.montecarlo.SweepResult` — deterministic for
    a given spec, so the watchdog can flag drift in the sweep's numbers
    like it does for study tables.  Counters (``mc.replications``,
    ``mc.cells_computed``, ``mc.cells_cached``) ride in from telemetry;
    the same counts are recorded directly from the result so a record is
    complete even for untraced sweeps.
    """
    cell_rows = [cell.to_dict() for cell in result.cells]
    metrics = metrics_of_interest(telemetry)
    metrics["mc.cells"] = float(len(result.cells))
    metrics["mc.cells_computed"] = float(len(result.computed))
    metrics["mc.cells_cached"] = float(len(result.cached))
    metrics["mc.replications"] = float(result.n_replications_run)
    # Adaptive engines carry a fixed-equivalent budget; record the
    # savings so the ledger shows what sequential stopping bought.
    budget = getattr(result, "n_replications_budget", 0)
    if budget:
        metrics["mc.replications_budget"] = float(budget)
        metrics["mc.replications_saved"] = float(
            budget - result.n_replications_run
        )
    return RunRecord(
        run_id=new_run_id(config_digest or cell_rows),
        kind=kind,
        created_utc=_utc_now(),
        dataset_version="",
        config_digest=config_digest,
        wall_s=_run_wall_seconds(telemetry),
        stages=stage_stats_from_telemetry(telemetry),
        metrics=metrics,
        artifacts={"cells": digest_items(cell_rows)},
        meta={str(k): str(v) for k, v in (meta or {}).items()},
    )
