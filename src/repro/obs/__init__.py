"""Cross-run observability: the run ledger and the regression watchdog.

Where :mod:`repro.telemetry` gives a *single* run eyes, :mod:`repro.obs`
gives the project memory:

* :mod:`repro.obs.record` — :class:`RunRecord`, a structured snapshot of
  one run (identity, per-stage timings lifted from telemetry, SHA-256
  digests of every produced artifact) plus the builders that digest real
  study/simulation runs;
* :mod:`repro.obs.registry` — :class:`RunRegistry`, the append-only
  NDJSON ledger under ``--runs-dir`` / ``$REPRO_RUNS_DIR`` /
  ``~/.cache/repro/runs`` with skip-and-warn corrupt-line recovery and
  an explicit :meth:`~RunRegistry.gc` retention policy;
* :mod:`repro.obs.compare` — :func:`compare_runs`, the watchdog that
  flags result drift (value vs benign-ordering, via dual digests) and
  perf regressions (significance-tested over baseline windows), with a
  machine-readable exit-code contract for CI gating.

Quickstart
----------
>>> import tempfile
>>> from repro.obs import RunRegistry, RunRecord, compare_runs
>>> with tempfile.TemporaryDirectory() as tmp:
...     registry = RunRegistry(tmp)
...     a = registry.record(RunRecord("a", "demo", "2026-01-01T00:00:00Z"))
...     b = registry.record(RunRecord("b", "demo", "2026-01-01T00:01:00Z"))
...     compare_runs(a, b).exit_code()
0

On the command line: ``repro replicate --record`` then
``repro runs list|show|compare|gc`` (see ``repro runs --help``), or
``scripts/check.sh --gate`` for the record→compare→gate loop in one step.
"""

from repro.obs.compare import (
    EXIT_DRIFT,
    EXIT_OK,
    EXIT_PERF,
    ArtifactDrift,
    PerfDelta,
    RunComparison,
    compare_bench_suites,
    compare_runs,
)
from repro.obs.record import (
    ArtifactDigest,
    RunRecord,
    StageStats,
    build_corpus_record,
    build_simulation_record,
    build_study_record,
    build_sweep_record,
    digest_items,
    study_artifacts,
)
from repro.obs.registry import LEDGER_NAME, RunRegistry, default_runs_dir

__all__ = [
    "EXIT_DRIFT",
    "EXIT_OK",
    "EXIT_PERF",
    "LEDGER_NAME",
    "ArtifactDigest",
    "ArtifactDrift",
    "PerfDelta",
    "RunComparison",
    "RunRecord",
    "RunRegistry",
    "StageStats",
    "build_corpus_record",
    "build_simulation_record",
    "build_study_record",
    "build_sweep_record",
    "compare_bench_suites",
    "compare_runs",
    "default_runs_dir",
    "digest_items",
    "study_artifacts",
]
