"""The cross-run regression watchdog: :func:`compare_runs`.

Compares a candidate :class:`~repro.obs.record.RunRecord` against a
baseline (one record, or a window of records whose per-stage durations
become significance samples) and classifies what changed:

* **result drift** — an artifact digest mismatch.  Ordered digest
  differs but the order-insensitive ``content_sha256`` matches →
  ``benign-ordering`` (reported, not fatal by default); both differ →
  ``value`` drift (fatal).  Artifacts appearing/disappearing are
  ``added``/``removed`` drift.  When the two runs' ``dataset_version``
  or ``config_digest`` differ, digest changes are *expected* — they are
  reported as ``expected-change`` and do not fail the gate;
* **perf regression** — a stage (or the whole run) slowed beyond
  ``max_slowdown``.  With a multi-record baseline window the slowdown
  must also be statistically significant under
  :func:`repro.stats.inference.permutation_mean_test`; a single-record
  baseline falls back to the threshold plus an absolute-seconds floor so
  scheduler noise on millisecond stages cannot flake a CI gate.

Exit-code contract (machine-readable, used by ``repro runs compare``
and ``scripts/check.sh --gate``):

====  =============================================================
code  meaning
====  =============================================================
0     no value drift, no confirmed slowdown (benign findings allowed)
3     result drift (an artifact's values changed)
4     confirmed perf regression (no value drift)
====  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import LedgerError
from repro.obs.record import RunRecord

__all__ = [
    "EXIT_OK",
    "EXIT_DRIFT",
    "EXIT_PERF",
    "PerfDelta",
    "ArtifactDrift",
    "RunComparison",
    "compare_runs",
    "compare_bench_suites",
]

#: Everything matched (benign-ordering findings allowed).
EXIT_OK = 0
#: An artifact's values changed between the runs.
EXIT_DRIFT = 3
#: A stage (or the run) slowed beyond the threshold, confirmed.
EXIT_PERF = 4

#: Ignore slowdowns whose absolute cost is below this (seconds) when no
#: significance test is possible — millisecond noise is not a regression.
MIN_ABS_SLOWDOWN_S = 0.05


@dataclass(frozen=True, slots=True)
class PerfDelta:
    """One stage's timing change between baseline and candidate."""

    stage: str
    baseline_s: float
    candidate_s: float
    p_value: float | None = None

    @property
    def ratio(self) -> float:
        """candidate / baseline (``inf`` for a 0-second baseline)."""
        if self.baseline_s <= 0.0:
            return float("inf") if self.candidate_s > 0.0 else 1.0
        return self.candidate_s / self.baseline_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "baseline_s": self.baseline_s,
            "candidate_s": self.candidate_s,
            "ratio": self.ratio,
            "p_value": self.p_value,
        }


@dataclass(frozen=True, slots=True)
class ArtifactDrift:
    """One artifact whose fingerprint changed between the runs.

    ``kind`` is one of ``"value"``, ``"benign-ordering"``, ``"added"``,
    ``"removed"``, ``"expected-change"``.
    """

    artifact: str
    kind: str

    def to_dict(self) -> dict[str, Any]:
        return {"artifact": self.artifact, "kind": self.kind}


@dataclass(frozen=True)
class RunComparison:
    """Outcome of one watchdog comparison."""

    baseline_id: str
    candidate_id: str
    drift: tuple[ArtifactDrift, ...] = ()
    regressions: tuple[PerfDelta, ...] = ()
    improvements: tuple[PerfDelta, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def value_drift(self) -> tuple[ArtifactDrift, ...]:
        """The drift findings that fail the gate."""
        return tuple(
            d for d in self.drift if d.kind in ("value", "added", "removed")
        )

    @property
    def ok(self) -> bool:
        """True when the gate passes (exit code 0)."""
        return not self.value_drift and not self.regressions

    def exit_code(self) -> int:
        """The machine-readable verdict (see the module docstring)."""
        if self.value_drift:
            return EXIT_DRIFT
        if self.regressions:
            return EXIT_PERF
        return EXIT_OK

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline_id": self.baseline_id,
            "candidate_id": self.candidate_id,
            "exit_code": self.exit_code(),
            "ok": self.ok,
            "drift": [d.to_dict() for d in self.drift],
            "regressions": [r.to_dict() for r in self.regressions],
            "improvements": [r.to_dict() for r in self.improvements],
            "notes": list(self.notes),
        }

    def report(self) -> str:
        """A human-readable verdict block."""
        lines = [
            f"compare {self.baseline_id} -> {self.candidate_id}: "
            + ("OK" if self.ok else "FAIL")
        ]
        for finding in self.drift:
            marker = "!" if finding.kind in ("value", "added", "removed") else "~"
            lines.append(f"  {marker} drift [{finding.kind}] {finding.artifact}")
        for delta in self.regressions:
            sig = (
                f", p={delta.p_value:.4f}" if delta.p_value is not None else ""
            )
            lines.append(
                f"  ! slower [{delta.stage}] {delta.baseline_s * 1e3:.2f} ms "
                f"-> {delta.candidate_s * 1e3:.2f} ms "
                f"(x{delta.ratio:.2f}{sig})"
            )
        for delta in self.improvements:
            lines.append(
                f"  + faster [{delta.stage}] {delta.baseline_s * 1e3:.2f} ms "
                f"-> {delta.candidate_s * 1e3:.2f} ms (x{delta.ratio:.2f})"
            )
        for note in self.notes:
            lines.append(f"  . {note}")
        if len(lines) == 1:
            lines.append("  . no drift, no slowdown")
        return "\n".join(lines)


def _classify_drift(
    baseline: RunRecord, candidate: RunRecord, expected: bool
) -> list[ArtifactDrift]:
    findings: list[ArtifactDrift] = []
    names = sorted(set(baseline.artifacts) | set(candidate.artifacts))
    for name in names:
        base = baseline.artifacts.get(name)
        cand = candidate.artifacts.get(name)
        if base is None:
            findings.append(ArtifactDrift(name, "added"))
        elif cand is None:
            findings.append(ArtifactDrift(name, "removed"))
        elif base.sha256 != cand.sha256:
            if expected:
                findings.append(ArtifactDrift(name, "expected-change"))
            elif base.content_sha256 == cand.content_sha256:
                findings.append(ArtifactDrift(name, "benign-ordering"))
            else:
                findings.append(ArtifactDrift(name, "value"))
    if expected:
        # Presence changes are also expected across a config/data change.
        findings = [
            ArtifactDrift(f.artifact, "expected-change")
            if f.kind in ("added", "removed")
            else f
            for f in findings
        ]
    return findings


def _stage_samples(
    window: Sequence[RunRecord], stage: str
) -> list[float]:
    """Wall-duration samples of *stage* across a baseline window."""
    return [
        record.stages[stage].wall_s
        for record in window
        if stage in record.stages and record.stages[stage].executions >= 0
    ]


def compare_runs(
    baseline: RunRecord | Sequence[RunRecord],
    candidate: RunRecord,
    *,
    max_slowdown: float = 0.5,
    min_abs_s: float = MIN_ABS_SLOWDOWN_S,
    alpha: float = 0.05,
    seed: int = 2023,
) -> RunComparison:
    """Flag perf deltas and result drift between *baseline* and *candidate*.

    Parameters
    ----------
    baseline:
        One :class:`RunRecord`, or a window of them (oldest first).  With
        a window of >= 2 records, a stage's slowdown must be significant
        under :func:`~repro.stats.inference.permutation_mean_test` at
        level *alpha* (the last window record is the headline baseline in
        the report).
    candidate:
        The run under test.
    max_slowdown:
        Fractional slowdown budget: 0.5 flags stages more than 50% slower
        than baseline.
    min_abs_s:
        Absolute floor (seconds): a "regression" cheaper than this is
        noise, not a finding — applied only when no significance test
        is possible (single-record baseline).
    """
    if isinstance(baseline, RunRecord):
        window: list[RunRecord] = [baseline]
    else:
        window = list(baseline)
    if not window:
        raise LedgerError("compare_runs needs at least one baseline record")
    if max_slowdown <= 0:
        raise LedgerError("max_slowdown must be > 0")
    head = window[-1]

    notes: list[str] = []
    expected = False
    if head.dataset_version != candidate.dataset_version:
        expected = True
        notes.append(
            "dataset_version changed "
            f"({head.dataset_version[:12]}… -> "
            f"{candidate.dataset_version[:12]}…): digest changes expected"
        )
    if head.config_digest != candidate.config_digest:
        expected = True
        notes.append(
            "config_digest changed: digest changes expected"
        )
    if head.kind != candidate.kind:
        notes.append(
            f"comparing different run kinds ({head.kind} vs {candidate.kind})"
        )

    drift = _classify_drift(head, candidate, expected)

    regressions: list[PerfDelta] = []
    improvements: list[PerfDelta] = []
    stages = sorted(set(head.stages) & set(candidate.stages))
    use_significance = len(window) >= 2
    for stage in stages:
        base_stat = head.stages[stage]
        cand_stat = candidate.stages[stage]
        # Only executed-vs-executed comparisons are meaningful: a stage
        # served from cache measures the cache, not the stage.
        if base_stat.executions != cand_stat.executions:
            notes.append(
                f"stage {stage!r}: execution counts differ "
                f"({base_stat.executions} vs {cand_stat.executions}); "
                "timing not compared"
            )
            continue
        delta = PerfDelta(stage, base_stat.wall_s, cand_stat.wall_s)
        if delta.ratio > 1.0 + max_slowdown:
            if use_significance:
                samples = _stage_samples(window, stage)
                p_value = _significant_slowdown(
                    samples, cand_stat.wall_s, alpha=alpha, seed=seed
                )
                if p_value is not None:
                    regressions.append(
                        PerfDelta(
                            stage, base_stat.wall_s, cand_stat.wall_s,
                            p_value=p_value,
                        )
                    )
            elif cand_stat.wall_s - base_stat.wall_s >= min_abs_s:
                regressions.append(delta)
        elif delta.ratio < 1.0 / (1.0 + max_slowdown) and (
            base_stat.wall_s - cand_stat.wall_s >= min_abs_s
        ):
            improvements.append(delta)

    # Whole-run wall clock, same rules.
    if head.wall_s > 0.0 and candidate.wall_s > 0.0:
        run_delta = PerfDelta("<run>", head.wall_s, candidate.wall_s)
        if run_delta.ratio > 1.0 + max_slowdown:
            if use_significance:
                samples = [r.wall_s for r in window if r.wall_s > 0.0]
                p_value = _significant_slowdown(
                    samples, candidate.wall_s, alpha=alpha, seed=seed
                )
                if p_value is not None:
                    regressions.append(
                        PerfDelta(
                            "<run>", head.wall_s, candidate.wall_s,
                            p_value=p_value,
                        )
                    )
            elif candidate.wall_s - head.wall_s >= min_abs_s:
                regressions.append(run_delta)

    return RunComparison(
        baseline_id=head.run_id,
        candidate_id=candidate.run_id,
        drift=tuple(drift),
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        notes=tuple(notes),
    )


def _significant_slowdown(
    samples: Sequence[float], candidate_s: float, *, alpha: float, seed: int
) -> float | None:
    """p-value when *candidate_s* is a significant slowdown, else ``None``.

    With fewer than 2 positive baseline samples the permutation test is
    undefined, so nothing can be confirmed — return ``None`` (the
    threshold alone is not evidence).
    """
    values = [s for s in samples if s > 0.0]
    if len(values) < 2:
        return None
    from repro.stats.inference import permutation_mean_test

    # The candidate is a single observation; duplicate it so the test is
    # well-posed (conservative: within-candidate variance is zero, so
    # significance is driven entirely by the baseline spread).
    result = permutation_mean_test(
        values, [candidate_s, candidate_s], seed=seed
    )
    if result.statistic > 0.0 and result.p_value < alpha:
        return result.p_value
    return None


# -- benchmark-suite baselines -----------------------------------------------------


def compare_bench_suites(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    *,
    max_slowdown: float = 0.5,
    min_abs_s: float = 1e-4,
) -> RunComparison:
    """Compare two ``output/BENCH_<suite>.json`` payloads.

    The per-suite files written by ``scripts/check.sh --bench`` (see
    ``benchmarks/conftest.py``) carry a ``results`` mapping of
    benchmark name → timing stats; this adapts them to the same
    :class:`RunComparison` surface as ledger runs, so a bench file can
    serve as the baseline source for ``repro runs compare --bench``.
    """
    base_results = baseline.get("results")
    cand_results = candidate.get("results")
    if not isinstance(base_results, Mapping) or not isinstance(
        cand_results, Mapping
    ):
        raise LedgerError(
            "bench payloads need a 'results' mapping "
            "(regenerate with scripts/check.sh --bench)"
        )
    regressions: list[PerfDelta] = []
    improvements: list[PerfDelta] = []
    notes: list[str] = []
    for name in sorted(set(base_results) | set(cand_results)):
        base = base_results.get(name)
        cand = cand_results.get(name)
        if base is None or cand is None:
            notes.append(f"benchmark {name!r} present in only one suite")
            continue
        base_s = float(base.get("min_s", base.get("mean_s", 0.0)))
        cand_s = float(cand.get("min_s", cand.get("mean_s", 0.0)))
        delta = PerfDelta(name, base_s, cand_s)
        if delta.ratio > 1.0 + max_slowdown and cand_s - base_s >= min_abs_s:
            regressions.append(delta)
        elif (
            delta.ratio < 1.0 / (1.0 + max_slowdown)
            and base_s - cand_s >= min_abs_s
        ):
            improvements.append(delta)
    return RunComparison(
        baseline_id=str(baseline.get("suite", "bench-baseline")),
        candidate_id=str(candidate.get("suite", "bench-candidate")),
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        notes=tuple(notes),
    )
