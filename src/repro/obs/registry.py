"""The persistent run ledger: an append-only NDJSON :class:`RunRegistry`.

One :class:`~repro.obs.record.RunRecord` per line, appended atomically
(single ``write()`` of a complete line on a line-buffered append-mode
handle), so concurrent recorders from separate processes interleave at
line granularity and a crash mid-run leaves at most one torn *final*
line — which reads skip with a warning instead of failing, mirroring the
corrupt-artifact recovery of :class:`repro.pipeline.cache.ArtifactCache`.

Storage resolution, most specific wins:

1. an explicit ``directory=`` argument (the CLI's ``--runs-dir``);
2. the ``REPRO_RUNS_DIR`` environment variable;
3. ``$XDG_CACHE_HOME/repro/runs`` (``~/.cache/repro/runs``).

Retention is explicit: :meth:`RunRegistry.gc` rewrites the ledger
keeping the newest *keep* records (corrupt lines are dropped and
counted), via a temp file + ``os.replace`` so the rewrite is atomic too.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.errors import LedgerError
from repro.obs.record import RunRecord
from repro.telemetry.log import NULL_LOGGER

__all__ = ["RunRegistry", "default_runs_dir", "LEDGER_NAME"]

#: File name of the ledger inside a runs directory.
LEDGER_NAME = "ledger.ndjson"


def default_runs_dir() -> Path:
    """The runs directory when none is given (env var, then XDG cache)."""
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return Path(env)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "runs"


class RunRegistry:
    """Append-only NDJSON ledger of :class:`~repro.obs.record.RunRecord`\\ s.

    Parameters
    ----------
    directory:
        Where the ledger lives (see :func:`default_runs_dir` for the
        default resolution).  Created on first write.
    logger:
        A :class:`repro.telemetry.StructuredLogger` (or the null
        default) that receives ``ledger.*`` events — notably the
        skip-and-warn on corrupt lines.

    Examples
    --------
    >>> import tempfile
    >>> from repro.obs.record import RunRecord
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     registry = RunRegistry(tmp)
    ...     _ = registry.record(RunRecord("r1", "test", "2026-01-01T00:00:00Z"))
    ...     [r.run_id for r in registry.runs()]
    ['r1']
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        logger: Any = None,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_runs_dir()
        )
        self.log = logger if logger is not None else NULL_LOGGER

    @property
    def path(self) -> Path:
        """The ledger file."""
        return self.directory / LEDGER_NAME

    # -- writing -----------------------------------------------------------------

    def record(self, record: RunRecord) -> RunRecord:
        """Append *record* to the ledger; returns it for chaining.

        The line is written in one ``write()`` call on an append-mode
        handle, so concurrent recorders never interleave mid-line.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True, default=str)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self.log.info(
            "ledger.record",
            run_id=record.run_id,
            kind=record.kind,
            path=str(self.path),
        )
        return record

    # -- reading -----------------------------------------------------------------

    def _read_lines(self) -> Iterator[tuple[int, str]]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if line.strip():
                    yield number, line

    def runs(self) -> list[RunRecord]:
        """Every readable record, oldest first.

        A corrupt or truncated line (torn final write, manual edit, ...)
        is skipped with a ``ledger.corrupt_line`` warning — never an
        exception: the ledger is an accelerator for comparisons, not a
        point of failure.
        """
        records: list[RunRecord] = []
        for number, line in self._read_lines():
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                self.log.warning(
                    "ledger.corrupt_line",
                    path=str(self.path),
                    line=number,
                    reason=str(exc),
                )
        return records

    def last(self, n: int = 1) -> list[RunRecord]:
        """The newest *n* readable records, oldest of them first."""
        if n < 1:
            raise LedgerError(f"last() needs n >= 1, got {n}")
        return self.runs()[-n:]

    def get(self, run_id: str) -> RunRecord:
        """The record with *run_id* (:class:`LedgerError` when absent).

        A unique prefix works too, so ``repro runs show 20260806T`` does
        what a human means.
        """
        matches = [
            record
            for record in self.runs()
            if record.run_id == run_id or record.run_id.startswith(run_id)
        ]
        exact = [record for record in matches if record.run_id == run_id]
        if exact:
            return exact[-1]
        if not matches:
            raise LedgerError(
                f"no run {run_id!r} in ledger {self.path}"
            )
        if len({record.run_id for record in matches}) > 1:
            raise LedgerError(
                f"run id prefix {run_id!r} is ambiguous: "
                f"{sorted({r.run_id for r in matches})}"
            )
        return matches[-1]

    # -- retention ---------------------------------------------------------------

    def gc(self, keep: int) -> int:
        """Rewrite the ledger keeping the newest *keep* records.

        Returns how many lines were dropped (old records and corrupt
        lines both count; corrupt lines warn on the way out).  The
        rewrite goes through a temp file + ``os.replace``, so a crash
        leaves either the old or the new ledger, never a torn one.
        """
        if keep < 0:
            raise LedgerError(f"gc() needs keep >= 0, got {keep}")
        if not self.path.exists():
            return 0
        total_lines = sum(1 for _ in self._read_lines())
        kept = self.runs()[-keep:] if keep else []
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{LEDGER_NAME}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(
                        json.dumps(
                            record.to_dict(), sort_keys=True, default=str
                        )
                        + "\n"
                    )
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        dropped = total_lines - len(kept)
        self.log.info(
            "ledger.gc", path=str(self.path), kept=len(kept), dropped=dropped
        )
        return dropped
