"""Table 2 generator: applications × tools selection checkmarks.

Regenerates the paper's Table 2: rows are tools grouped by research
direction, columns are the applications (by paper subsection), cells carry
a checkmark where the application selected the tool.
"""

from __future__ import annotations

from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import ClassificationScheme
from repro.tables.render import TextTable

__all__ = ["build_table2"]


def build_table2(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
    *,
    selection: SelectionMatrix | None = None,
    check: str = "✓",
    caption: str = (
        "The list of collected scientific applications and the tools "
        "identified for integration."
    ),
) -> TextTable:
    """Regenerate the paper's Table 2 as a :class:`TextTable`.

    The first column is the research direction (shown only on its first
    row, as in the paper), the second the tool name, then one column per
    application section.
    """
    selection = selection or SelectionMatrix.from_catalogs(
        tools, applications, scheme
    )
    apps = applications.ordered()
    header = ["Direction", "Tool", *(app.section for app in apps)]
    table = TextTable(header, caption=caption)

    previous_direction: str | None = None
    direction_names = dict(zip(scheme.keys, scheme.names))
    for tool_key in selection.tool_keys:
        tool = tools[tool_key]
        direction = tool.primary_direction
        label = (
            direction_names[direction]
            if direction != previous_direction
            else ""
        )
        previous_direction = direction
        row = [label, tool.name]
        for app in apps:
            row.append(check if selection.is_selected(tool_key, app.key) else "")
        table.add_row(row)
    return table
