"""Table rendering: generic emitters plus the paper's Table 1 and Table 2."""

from repro.tables.render import TextTable
from repro.tables.table1 import build_table1, table1_columns
from repro.tables.table2 import build_table2

__all__ = ["TextTable", "build_table1", "build_table2", "table1_columns"]
