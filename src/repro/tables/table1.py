"""Table 1 generator: tools classified in five research directions.

The paper's Table 1 lists the tools column-wise under their research
direction.  :func:`build_table1` regenerates it from a tool catalogue and a
scheme; the column layout matches the paper (directions as columns, tools
stacked under each, short rows padded with blanks).
"""

from __future__ import annotations

from repro.core.catalog import ToolCatalog
from repro.core.taxonomy import ClassificationScheme
from repro.tables.render import TextTable

__all__ = ["build_table1", "table1_columns"]


def table1_columns(
    tools: ToolCatalog, scheme: ClassificationScheme
) -> dict[str, tuple[str, ...]]:
    """Direction key → tool display names, in catalogue order."""
    return {
        key: tuple(t.name for t in tools.by_direction(key))
        for key in scheme.keys
    }


def build_table1(
    tools: ToolCatalog,
    scheme: ClassificationScheme,
    *,
    caption: str = "Collected tools classified in five research directions.",
) -> TextTable:
    """Regenerate the paper's Table 1 as a :class:`TextTable`."""
    columns = table1_columns(tools, scheme)
    depth = max(len(v) for v in columns.values())
    table = TextTable(scheme.names, caption=caption)
    for i in range(depth):
        table.add_row(
            [
                columns[key][i] if i < len(columns[key]) else ""
                for key in scheme.keys
            ]
        )
    return table
