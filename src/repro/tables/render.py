"""Generic table rendering: plain text, Markdown, and LaTeX.

:class:`TextTable` holds a rectangular grid of strings with an optional
header row and renders it in three formats.  All table generators in this
package produce ``TextTable`` instances so output format is a caller
choice.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import RenderError

__all__ = ["TextTable"]


def _latex_escape(text: str) -> str:
    replacements = {
        "\\": r"\textbackslash{}",
        "&": r"\&", "%": r"\%", "$": r"\$", "#": r"\#",
        "_": r"\_", "{": r"\{", "}": r"\}",
        "~": r"\textasciitilde{}", "^": r"\textasciicircum{}",
    }
    return "".join(replacements.get(ch, ch) for ch in text)


class TextTable:
    """A rectangular table of strings.

    Parameters
    ----------
    header:
        Column titles (fixes the column count).
    rows:
        Data rows; each must match the header length.
    caption:
        Optional caption (rendered above text/markdown output, and as
        ``\\caption`` in LaTeX).
    """

    def __init__(
        self,
        header: Sequence[str],
        rows: Sequence[Sequence[str]] = (),
        *,
        caption: str = "",
    ) -> None:
        if not header:
            raise RenderError("table needs at least one column")
        self.header = tuple(str(h) for h in header)
        self.caption = caption
        self._rows: list[tuple[str, ...]] = []
        for row in rows:
            self.add_row(row)

    def add_row(self, row: Sequence[str]) -> None:
        """Append a row; length must match the header."""
        cells = tuple(str(c) for c in row)
        if len(cells) != len(self.header):
            raise RenderError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self._rows.append(cells)

    @property
    def rows(self) -> tuple[tuple[str, ...], ...]:
        return tuple(self._rows)

    @property
    def n_columns(self) -> int:
        return len(self.header)

    def column(self, index: int) -> tuple[str, ...]:
        """All values of one column (header excluded)."""
        if not 0 <= index < self.n_columns:
            raise RenderError(f"column {index} out of range")
        return tuple(row[index] for row in self._rows)

    # -- renderers -----------------------------------------------------------

    def to_text(self) -> str:
        """Fixed-width plain-text rendering."""
        widths = [
            max(len(self.header[i]), *(len(r[i]) for r in self._rows))
            if self._rows
            else len(self.header[i])
            for i in range(self.n_columns)
        ]
        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(
                f"{cell:<{widths[i]}}" for i, cell in enumerate(cells)
            ).rstrip()

        lines = []
        if self.caption:
            lines.append(self.caption)
        lines.append(fmt(self.header))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering."""
        def fmt(cells: Sequence[str]) -> str:
            escaped = [c.replace("|", "\\|") for c in cells]
            return "| " + " | ".join(escaped) + " |"

        lines = []
        if self.caption:
            lines.append(f"**{self.caption}**")
            lines.append("")
        lines.append(fmt(self.header))
        lines.append("|" + "|".join(" --- " for _ in self.header) + "|")
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def to_latex(self) -> str:
        """LaTeX ``tabular`` (inside ``table`` when a caption is set)."""
        spec = "l" * self.n_columns
        body_lines = [
            " & ".join(_latex_escape(c) for c in row) + r" \\"
            for row in self._rows
        ]
        tabular = "\n".join(
            [
                rf"\begin{{tabular}}{{{spec}}}",
                r"\toprule",
                " & ".join(_latex_escape(h) for h in self.header) + r" \\",
                r"\midrule",
                *body_lines,
                r"\bottomrule",
                r"\end{tabular}",
            ]
        )
        if not self.caption:
            return tabular
        return "\n".join(
            [
                r"\begin{table}",
                r"\centering",
                tabular,
                rf"\caption{{{_latex_escape(self.caption)}}}",
                r"\end{table}",
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextTable({self.n_columns} cols x {len(self._rows)} rows)"
