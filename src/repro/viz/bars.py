"""Bar charts and histograms (Fig. 3).

Renders a :class:`~repro.stats.frequency.FrequencyTable` as an SVG bar
chart with y-axis grid lines and integer ticks — the form of the paper's
Fig. 3 histogram (directions covered vs. number of institutions).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.errors import RenderError
from repro.stats.frequency import FrequencyTable
from repro.viz.svg import SvgDocument

__all__ = ["bar_chart", "grouped_bar_chart"]

_BAR_FILL = "#4477aa"


def _nice_tick(max_value: float, target_ticks: int = 5) -> int:
    """Integer tick step giving about *target_ticks* gridlines."""
    if max_value <= target_ticks:
        return 1
    raw = max_value / target_ticks
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiplier in (1, 2, 5, 10):
        step = multiplier * magnitude
        if step >= raw:
            return int(step)
    return int(10 * magnitude)  # pragma: no cover - loop always returns


def bar_chart(
    table: FrequencyTable,
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: float = 520.0,
    height: float = 340.0,
    fill: str = _BAR_FILL,
    show_values: bool = True,
) -> SvgDocument:
    """Render *table* as a vertical bar chart.

    Bars follow table order; the y-axis uses nice integer ticks with light
    gridlines.
    """
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    top = 16.0
    if title:
        doc.title(title)
        top = 40.0
    margin_left, margin_right, margin_bottom = 56.0, 16.0, 54.0
    plot_w = width - margin_left - margin_right
    plot_h = height - top - margin_bottom
    if plot_w <= 0 or plot_h <= 0:
        raise RenderError("figure too small for its margins")

    max_value = max(int(v) for v in table.values)
    step = _nice_tick(max(max_value, 1))
    y_max = max(step * math.ceil(max(max_value, 1) / step), step)

    # Gridlines and y ticks.
    for tick in range(0, y_max + 1, step):
        y = top + plot_h * (1 - tick / y_max)
        doc.line(margin_left, y, margin_left + plot_w, y,
                 stroke="#dddddd", stroke_width=0.8)
        doc.text(margin_left - 8, y + 4, str(tick), size=11, anchor="end")

    # Axes.
    doc.line(margin_left, top, margin_left, top + plot_h, stroke="#333")
    doc.line(margin_left, top + plot_h, margin_left + plot_w, top + plot_h,
             stroke="#333")

    n = len(table)
    slot = plot_w / n
    bar_w = slot * 0.6
    for i, (label, value) in enumerate(table.items()):
        x = margin_left + i * slot + (slot - bar_w) / 2
        bar_h = plot_h * value / y_max
        y = top + plot_h - bar_h
        if value > 0:
            doc.rect(x, y, bar_w, bar_h, fill=fill, stroke="#2b4f73",
                     stroke_width=0.8)
        if show_values and value > 0:
            doc.text(x + bar_w / 2, y - 5, str(value), size=11,
                     anchor="middle")
        doc.text(
            margin_left + i * slot + slot / 2, top + plot_h + 16,
            str(label), size=11, anchor="middle",
        )

    if x_label:
        doc.text(margin_left + plot_w / 2, height - 10, x_label,
                 size=12, anchor="middle")
    if y_label:
        doc.text(16, top + plot_h / 2, y_label, size=12, anchor="middle",
                 rotate=-90)
    return doc


def grouped_bar_chart(
    tables: Mapping[str, FrequencyTable],
    *,
    title: str = "",
    width: float = 640.0,
    height: float = 360.0,
    colors: Mapping[str, str] | None = None,
) -> SvgDocument:
    """Side-by-side bars for several tables over the same categories.

    Used by the supply-vs-demand comparison figure (Fig. 2 vs Fig. 4 on one
    canvas).  All tables must share the same label order.
    """
    if not tables:
        raise RenderError("need at least one table")
    series = list(tables.items())
    base_labels = series[0][1].labels
    for name, table in series:
        if table.labels != base_labels:
            raise RenderError(f"series {name!r} has different categories")
    from repro.viz.palette import CATEGORICAL

    palette = colors or {
        name: CATEGORICAL[i % len(CATEGORICAL)]
        for i, (name, _) in enumerate(series)
    }
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    top = 16.0
    if title:
        doc.title(title)
        top = 40.0
    margin_left, margin_right, margin_bottom = 56.0, 16.0, 70.0
    plot_w = width - margin_left - margin_right
    plot_h = height - top - margin_bottom

    max_value = max(int(v) for _, t in series for v in t.values)
    step = _nice_tick(max(max_value, 1))
    y_max = max(step * math.ceil(max(max_value, 1) / step), step)
    for tick in range(0, y_max + 1, step):
        y = top + plot_h * (1 - tick / y_max)
        doc.line(margin_left, y, margin_left + plot_w, y,
                 stroke="#dddddd", stroke_width=0.8)
        doc.text(margin_left - 8, y + 4, str(tick), size=11, anchor="end")
    doc.line(margin_left, top, margin_left, top + plot_h, stroke="#333")
    doc.line(margin_left, top + plot_h, margin_left + plot_w, top + plot_h,
             stroke="#333")

    n = len(base_labels)
    slot = plot_w / n
    group_w = slot * 0.7
    bar_w = group_w / len(series)
    for i, label in enumerate(base_labels):
        for s, (name, table) in enumerate(series):
            value = table[label]
            x = margin_left + i * slot + (slot - group_w) / 2 + s * bar_w
            bar_h = plot_h * value / y_max
            if value > 0:
                doc.rect(x, top + plot_h - bar_h, bar_w * 0.92, bar_h,
                         fill=palette[name])
        doc.text(
            margin_left + i * slot + slot / 2, top + plot_h + 16,
            str(label), size=10, anchor="middle",
        )
    # Legend under the x labels.
    legend_x = margin_left
    legend_y = height - 14
    for name, _ in series:
        doc.rect(legend_x, legend_y - 10, 12, 12, fill=palette[name])
        doc.text(legend_x + 17, legend_y, name, size=11)
        legend_x += 22 + 7 * len(name) + 20
    return doc
