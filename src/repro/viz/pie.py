"""Pie charts (Figs. 2 and 4).

Renders a :class:`~repro.stats.frequency.FrequencyTable` as an SVG pie with
per-slice count labels and a legend — the exact form of the paper's two
pies (counts inside slices, category legend on the right).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.errors import RenderError
from repro.stats.frequency import FrequencyTable
from repro.viz.palette import direction_colors, text_contrast
from repro.viz.svg import SvgDocument, arc_path, polar_point

__all__ = ["pie_chart"]


def pie_chart(
    table: FrequencyTable,
    *,
    title: str = "",
    label_names: Mapping[object, str] | None = None,
    colors: Mapping[object, str] | None = None,
    width: float = 560.0,
    height: float = 340.0,
    show_percentages: bool = False,
) -> SvgDocument:
    """Render *table* as a pie chart with slice counts and a legend.

    Parameters
    ----------
    table:
        Category counts; zero-count categories appear in the legend but get
        no slice.
    label_names:
        Optional display name per label (defaults to ``str(label)``).
    colors:
        Optional color per label (defaults to the qualitative palette in
        table order).
    show_percentages:
        Append the percentage to each slice's count label.
    """
    if table.total <= 0:
        raise RenderError("cannot draw a pie for an all-zero table")
    labels = table.labels
    names = {
        label: (label_names or {}).get(label, str(label)) for label in labels
    }
    palette = dict(direction_colors(tuple(str(l) for l in labels)))
    color_of = {
        label: (colors or {}).get(label, palette[str(label)])
        for label in labels
    }

    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    top = 10.0
    if title:
        doc.title(title)
        top = 34.0

    radius = min((height - top - 20) / 2, width * 0.28)
    cx = 20 + radius
    cy = top + radius

    angle = 0.0
    shares = table.shares()
    for i, label in enumerate(labels):
        count = table[label]
        if count == 0:
            continue
        span = 2 * math.pi * shares[i]
        doc.path(
            arc_path(cx, cy, radius, angle, angle + span),
            fill=color_of[label],
            stroke="#ffffff",
            stroke_width=1.5,
        )
        # Count label at 60% radius along the bisector.
        mid = angle + span / 2
        lx, ly = polar_point(cx, cy, radius * 0.62, mid)
        text = str(count)
        if show_percentages:
            text += f" ({shares[i] * 100:.0f}%)"
        doc.text(
            lx, ly + 4, text,
            size=13, anchor="middle", weight="bold",
            fill=text_contrast(color_of[label]),
        )
        angle += span

    # Legend.
    legend_x = cx + radius + 30
    legend_y = top + 8
    for label in labels:
        doc.rect(legend_x, legend_y - 9, 14, 14, fill=color_of[label])
        doc.text(legend_x + 20, legend_y + 3, names[label], size=12)
        legend_y += 22
    return doc
