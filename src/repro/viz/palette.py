"""Color palettes for the figure layer.

One qualitative palette (research directions keep stable hues across every
figure, so Fig. 2 and Fig. 4 are visually comparable, as in the paper) and
a sequential ramp for magnitude-encoded marks.
"""

from __future__ import annotations

from repro.errors import RenderError

__all__ = ["CATEGORICAL", "direction_colors", "sequential", "text_contrast"]

#: Qualitative palette (colorblind-safe ordering, dark-enough for white text).
CATEGORICAL: tuple[str, ...] = (
    "#4477aa",  # blue
    "#ee6677",  # red/rose
    "#228833",  # green
    "#ccbb44",  # yellow
    "#66ccee",  # cyan
    "#aa3377",  # purple
    "#bbbbbb",  # grey
)


def direction_colors(keys: tuple[str, ...] | list[str]) -> dict[str, str]:
    """Stable color per category key, cycling the qualitative palette."""
    if not keys:
        raise RenderError("need at least one key")
    return {
        key: CATEGORICAL[i % len(CATEGORICAL)] for i, key in enumerate(keys)
    }


def sequential(value: float) -> str:
    """Light-to-dark blue ramp for *value* in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise RenderError(f"value {value} outside [0, 1]")
    # Interpolate #deebf7 -> #08519c.
    start = (0xDE, 0xEB, 0xF7)
    end = (0x08, 0x51, 0x9C)
    rgb = tuple(
        round(s + (e - s) * value) for s, e in zip(start, end)
    )
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def text_contrast(hex_color: str) -> str:
    """Black or white, whichever reads better on *hex_color*."""
    color = hex_color.lstrip("#")
    if len(color) != 6:
        raise RenderError(f"expected #rrggbb, got {hex_color!r}")
    r, g, b = (int(color[i : i + 2], 16) for i in (0, 2, 4))
    # Rec. 601 luma.
    luma = 0.299 * r + 0.587 * g + 0.114 * b
    return "#000000" if luma > 140 else "#ffffff"
