"""Visualization substrate: SVG builder, pies, bars, matrices, ASCII renderers."""

from repro.viz.ascii import ascii_distribution, ascii_histogram, ascii_matrix
from repro.viz.bars import bar_chart, grouped_bar_chart
from repro.viz.gantt import gantt_chart
from repro.viz.lines import line_chart
from repro.viz.matrix import bubble_plot, selection_grid
from repro.viz.palette import CATEGORICAL, direction_colors, sequential, text_contrast
from repro.viz.pie import pie_chart
from repro.viz.svg import SvgDocument, arc_path, polar_point

__all__ = [
    "CATEGORICAL",
    "SvgDocument",
    "arc_path",
    "ascii_distribution",
    "ascii_histogram",
    "ascii_matrix",
    "bar_chart",
    "bubble_plot",
    "direction_colors",
    "gantt_chart",
    "grouped_bar_chart",
    "line_chart",
    "pie_chart",
    "polar_point",
    "selection_grid",
    "sequential",
    "text_contrast",
]
