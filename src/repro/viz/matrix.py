"""Matrix plots: the Table 2 checkmark grid and bubble plots.

:func:`selection_grid` renders a :class:`~repro.core.selection.SelectionMatrix`
as the paper's Table 2 (tools × applications, checkmarks on selections,
row blocks per research direction).  :func:`bubble_plot` draws the classic
SMS bubble chart (two categorical axes, bubble area ∝ count).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.selection import SelectionMatrix
from repro.errors import RenderError
from repro.viz.palette import direction_colors, sequential
from repro.viz.svg import SvgDocument

__all__ = ["selection_grid", "bubble_plot"]


def selection_grid(
    selection: SelectionMatrix,
    *,
    title: str = "",
    row_names: Mapping[str, str] | None = None,
    col_names: Mapping[str, str] | None = None,
    row_groups: Mapping[str, str] | None = None,
    cell: float = 22.0,
) -> SvgDocument:
    """Render a selection matrix as a checkmark grid.

    Parameters
    ----------
    selection:
        The matrix (rows = tools, columns = applications).
    row_names, col_names:
        Display names for row/column keys.
    row_groups:
        Optional row key → group label (research direction); adjacent rows
        of the same group get a colored band and a group separator line.
    cell:
        Cell size in pixels.
    """
    rows = selection.tool_keys
    cols = selection.application_keys
    r_names = {k: (row_names or {}).get(k, k) for k in rows}
    c_names = {k: (col_names or {}).get(k, k) for k in cols}

    label_w = 12 + 7 * max(len(name) for name in r_names.values())
    group_w = 0.0
    group_palette: dict[str, str] = {}
    if row_groups:
        groups_in_order = list(dict.fromkeys(row_groups.get(k, "") for k in rows))
        group_palette = direction_colors(tuple(groups_in_order))
        group_w = 18.0
    header_h = 14 + 7 * max(len(name) for name in c_names.values())
    top = 30.0 if title else 8.0

    width = group_w + label_w + cell * len(cols) + 16
    height = top + header_h + cell * len(rows) + 12
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    if title:
        doc.title(title, size=13)

    x0 = group_w + label_w
    y0 = top + header_h

    # Column headers, rotated.
    for j, col in enumerate(cols):
        doc.text(
            x0 + j * cell + cell / 2 + 4, y0 - 6, c_names[col],
            size=10, anchor="start", rotate=-60,
        )

    previous_group: str | None = None
    for i, row in enumerate(rows):
        y = y0 + i * cell
        if row_groups:
            group = row_groups.get(row, "")
            doc.rect(0, y, group_w - 4, cell, fill=group_palette[group],
                     opacity=0.85)
            if group != previous_group and previous_group is not None:
                doc.line(0, y, width, y, stroke="#555", stroke_width=1.2)
            previous_group = group
        if i % 2 == 0:
            doc.rect(group_w, y, width - group_w - 8, cell,
                     fill="#f4f6f8")
        doc.text(group_w + 6, y + cell * 0.68, r_names[row], size=11)
        for j, col in enumerate(cols):
            x = x0 + j * cell
            doc.rect(x, y, cell, cell, fill="none", stroke="#cccccc",
                     stroke_width=0.5)
            if selection.is_selected(row, col):
                doc.text(
                    x + cell / 2, y + cell * 0.72, "✓",
                    size=13, anchor="middle", fill="#1a7a2e", weight="bold",
                )
    return doc


def bubble_plot(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    *,
    title: str = "",
    cell: float = 56.0,
    max_radius_frac: float = 0.42,
) -> SvgDocument:
    """Classic SMS bubble chart: counts at category intersections.

    Bubble *area* is proportional to the count; each bubble carries its
    count as a label.  Zero cells stay empty.
    """
    counts = np.asarray(matrix, dtype=np.float64)
    if counts.ndim != 2:
        raise RenderError("matrix must be 2-D")
    if counts.shape != (len(row_labels), len(col_labels)):
        raise RenderError("labels must match matrix shape")
    if (counts < 0).any():
        raise RenderError("counts must be non-negative")
    peak = counts.max()
    if peak == 0:
        raise RenderError("all-zero matrix")

    label_w = 12 + 7 * max(len(str(l)) for l in row_labels)
    header_h = 14 + 7 * max(len(str(l)) for l in col_labels)
    top = 30.0 if title else 8.0
    width = label_w + cell * len(col_labels) + 16
    height = top + header_h + cell * len(row_labels) + 12
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    if title:
        doc.title(title, size=13)
    x0, y0 = label_w, top + header_h

    for j, col in enumerate(col_labels):
        doc.text(x0 + j * cell + cell / 2 + 4, y0 - 6, str(col),
                 size=10, anchor="start", rotate=-55)
    for i, row in enumerate(row_labels):
        doc.text(8, y0 + i * cell + cell * 0.58, str(row), size=11)
        for j in range(len(col_labels)):
            cx = x0 + j * cell + cell / 2
            cy = y0 + i * cell + cell / 2
            doc.rect(x0 + j * cell, y0 + i * cell, cell, cell,
                     fill="none", stroke="#e0e0e0", stroke_width=0.5)
            value = counts[i, j]
            if value <= 0:
                continue
            radius = cell * max_radius_frac * math.sqrt(value / peak)
            doc.circle(cx, cy, radius, fill=sequential(value / peak),
                       opacity=0.9)
            doc.text(cx, cy + 4, f"{int(value)}", size=11, anchor="middle")
    return doc
