"""Gantt charts for workflow schedules.

Renders a :class:`~repro.continuum.scheduling.Schedule` (or the realized
placements of an :class:`~repro.continuum.simulate.ExecutionTrace`) as an
SVG Gantt chart: one lane per resource, one bar per task, colored by
continuum tier, with a time axis.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.continuum.resources import Continuum
from repro.continuum.scheduling import Schedule, TaskPlacement
from repro.errors import RenderError
from repro.viz.svg import SvgDocument

__all__ = ["gantt_chart"]

_TIER_COLORS = {"hpc": "#4477aa", "cloud": "#228833", "edge": "#ccbb44"}


def _nice_time_step(makespan: float, target: int = 8) -> float:
    if makespan <= 0:
        raise RenderError("makespan must be positive")
    raw = makespan / target
    import math

    magnitude = 10.0 ** math.floor(math.log10(raw))
    for multiplier in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiplier * magnitude
        if step >= raw:
            return step
    return 10.0 * magnitude  # pragma: no cover - loop always returns


def gantt_chart(
    schedule: Schedule,
    *,
    placements: Sequence[TaskPlacement] | None = None,
    title: str = "",
    width: float = 860.0,
    lane_height: float = 22.0,
    show_task_labels: bool = True,
) -> SvgDocument:
    """Render a schedule as a Gantt chart.

    Parameters
    ----------
    schedule:
        Supplies the continuum (lanes) and, by default, the placements.
    placements:
        Override the bars (e.g. the realized timings of an execution
        trace); resources must belong to the schedule's continuum.
    show_task_labels:
        Print the task key inside bars wide enough to hold it.
    """
    continuum: Continuum = schedule.continuum
    bars = tuple(placements) if placements is not None else schedule.placements
    if not bars:
        raise RenderError("nothing to draw: no placements")
    for placement in bars:
        if placement.resource not in continuum:
            raise RenderError(
                f"placement on unknown resource {placement.resource!r}"
            )
    makespan = max(p.finish for p in bars)
    if makespan <= 0:
        raise RenderError("all placements have zero finish time")

    lanes = continuum.keys
    label_w = 14 + 7 * max(len(key) for key in lanes)
    top = 34.0 if title else 12.0
    axis_h = 30.0
    height = top + lane_height * len(lanes) + axis_h + 8
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    if title:
        doc.title(title, size=13)
    plot_w = width - label_w - 16

    def to_x(time: float) -> float:
        return label_w + plot_w * time / makespan

    # Lanes.
    lane_y = {}
    for i, key in enumerate(lanes):
        y = top + i * lane_height
        lane_y[key] = y
        if i % 2 == 0:
            doc.rect(label_w, y, plot_w, lane_height, fill="#f4f6f8")
        doc.text(6, y + lane_height * 0.68, key, size=10)

    # Time grid.
    step = _nice_time_step(makespan)
    tick = 0.0
    while tick <= makespan + 1e-9:
        x = to_x(min(tick, makespan))
        doc.line(x, top, x, top + lane_height * len(lanes),
                 stroke="#dddddd", stroke_width=0.7)
        doc.text(x, top + lane_height * len(lanes) + 14, f"{tick:g}",
                 size=9.5, anchor="middle")
        tick += step
    doc.text(
        label_w + plot_w / 2, height - 4, "time (s)", size=11, anchor="middle"
    )

    # Bars.
    for placement in bars:
        tier = placement.resource.split("-")[0]
        color = _TIER_COLORS.get(tier, "#aa3377")
        x0 = to_x(placement.start)
        bar_w = max(to_x(placement.finish) - x0, 0.8)
        y = lane_y[placement.resource] + 3
        doc.rect(x0, y, bar_w, lane_height - 6, fill=color, rx=2,
                 opacity=0.9)
        if show_task_labels and bar_w > 7 * len(placement.task) * 0.62:
            doc.text(
                x0 + bar_w / 2, y + (lane_height - 6) * 0.72,
                placement.task, size=8.5, anchor="middle", fill="#ffffff",
            )
    return doc
