"""Line charts for temporal series.

Renders one or more yearly series (publication trends, cumulative growth)
as SVG polylines with shared axes, markers, and a legend.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import RenderError
from repro.stats.frequency import FrequencyTable
from repro.viz.bars import _nice_tick
from repro.viz.palette import CATEGORICAL
from repro.viz.svg import SvgDocument

__all__ = ["line_chart"]


def line_chart(
    series: Mapping[str, FrequencyTable],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: float = 640.0,
    height: float = 360.0,
    markers: bool = True,
) -> SvgDocument:
    """Render one polyline per series over a shared numeric x axis.

    All series must share the same labels (numeric, e.g. years), in order.
    """
    if not series:
        raise RenderError("need at least one series")
    items = list(series.items())
    base_labels = items[0][1].labels
    for name, table in items:
        if table.labels != base_labels:
            raise RenderError(f"series {name!r} has different x labels")
    try:
        xs = [float(label) for label in base_labels]
    except (TypeError, ValueError):
        raise RenderError("line chart labels must be numeric") from None
    if len(xs) < 2:
        raise RenderError("need at least two points per series")

    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    top = 16.0
    if title:
        doc.title(title)
        top = 40.0
    margin_left, margin_right, margin_bottom = 56.0, 16.0, 64.0
    plot_w = width - margin_left - margin_right
    plot_h = height - top - margin_bottom

    y_peak = max(int(v) for _, t in items for v in t.values)
    step = _nice_tick(max(y_peak, 1))
    y_max = max(step * -(-max(y_peak, 1) // step), step)
    x_lo, x_hi = xs[0], xs[-1]

    def to_x(value: float) -> float:
        return margin_left + plot_w * (value - x_lo) / (x_hi - x_lo)

    def to_y(value: float) -> float:
        return top + plot_h * (1.0 - value / y_max)

    for tick in range(0, y_max + 1, step):
        y = to_y(tick)
        doc.line(margin_left, y, margin_left + plot_w, y,
                 stroke="#dddddd", stroke_width=0.8)
        doc.text(margin_left - 8, y + 4, str(tick), size=11, anchor="end")
    doc.line(margin_left, top, margin_left, top + plot_h, stroke="#333")
    doc.line(margin_left, top + plot_h, margin_left + plot_w, top + plot_h,
             stroke="#333")

    # X ticks: at most ~8, on integer label positions.
    stride = max(1, len(xs) // 8)
    for i in range(0, len(xs), stride):
        x = to_x(xs[i])
        doc.line(x, top + plot_h, x, top + plot_h + 4, stroke="#333")
        doc.text(x, top + plot_h + 18, str(base_labels[i]), size=10,
                 anchor="middle")

    for s, (name, table) in enumerate(items):
        color = CATEGORICAL[s % len(CATEGORICAL)]
        points = [
            (to_x(x), to_y(float(v)))
            for x, v in zip(xs, table.values)
        ]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            doc.line(x0, y0, x1, y1, stroke=color, stroke_width=2.0)
        if markers:
            for x, y in points:
                doc.circle(x, y, 2.4, fill=color)

    legend_x = margin_left
    legend_y = height - 12
    for s, (name, _) in enumerate(items):
        color = CATEGORICAL[s % len(CATEGORICAL)]
        doc.rect(legend_x, legend_y - 10, 12, 12, fill=color)
        doc.text(legend_x + 17, legend_y, name, size=11)
        legend_x += 22 + 7 * len(name) + 18

    if x_label:
        doc.text(margin_left + plot_w / 2, top + plot_h + 34, x_label,
                 size=12, anchor="middle")
    if y_label:
        doc.text(16, top + plot_h / 2, y_label, size=12, anchor="middle",
                 rotate=-90)
    return doc
