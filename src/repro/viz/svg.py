"""Minimal SVG document builder.

matplotlib is not available in the reproduction environment, so the figure
layer renders Scalable Vector Graphics directly.  :class:`SvgDocument`
offers exactly the primitives the paper's figures need — rectangles, lines,
circles, paths (for pie arcs), text, and groups — with XML escaping and
pretty indentation.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape, quoteattr

from repro.errors import RenderError

__all__ = ["SvgDocument", "polar_point", "arc_path"]


def _fmt(value: float | int | str) -> str:
    if isinstance(value, float):
        # Trim float noise; keeps files diffable.
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def polar_point(cx: float, cy: float, radius: float, angle: float) -> tuple[float, float]:
    """Cartesian point at *angle* radians on a circle (SVG y-axis points down).

    Angle 0 is 12 o'clock; positive angles go clockwise — the convention pie
    charts use.
    """
    return (
        cx + radius * math.sin(angle),
        cy - radius * math.cos(angle),
    )


def arc_path(
    cx: float,
    cy: float,
    radius: float,
    start_angle: float,
    end_angle: float,
) -> str:
    """SVG path for a filled pie slice from *start_angle* to *end_angle* (radians).

    Slices spanning the full circle are drawn as two half arcs (SVG cannot
    draw a 360° arc in one command).
    """
    if end_angle < start_angle:
        raise RenderError("end_angle must be >= start_angle")
    span = end_angle - start_angle
    if span >= 2 * math.pi - 1e-9:
        mid = start_angle + math.pi
        x0, y0 = polar_point(cx, cy, radius, start_angle)
        x1, y1 = polar_point(cx, cy, radius, mid)
        return (
            f"M {_fmt(x0)} {_fmt(y0)} "
            f"A {_fmt(radius)} {_fmt(radius)} 0 1 1 {_fmt(x1)} {_fmt(y1)} "
            f"A {_fmt(radius)} {_fmt(radius)} 0 1 1 {_fmt(x0)} {_fmt(y0)} Z"
        )
    x0, y0 = polar_point(cx, cy, radius, start_angle)
    x1, y1 = polar_point(cx, cy, radius, end_angle)
    large = 1 if span > math.pi else 0
    return (
        f"M {_fmt(cx)} {_fmt(cy)} L {_fmt(x0)} {_fmt(y0)} "
        f"A {_fmt(radius)} {_fmt(radius)} 0 {large} 1 {_fmt(x1)} {_fmt(y1)} Z"
    )


class SvgDocument:
    """An SVG document under construction.

    All drawing methods return ``self`` so calls chain::

        doc = SvgDocument(200, 100).rect(0, 0, 200, 100, fill="#fff")
        doc.text(100, 50, "hello", anchor="middle")
    """

    def __init__(self, width: float, height: float, *, font_family: str = "Helvetica, Arial, sans-serif") -> None:
        if width <= 0 or height <= 0:
            raise RenderError("document dimensions must be positive")
        self.width = width
        self.height = height
        self.font_family = font_family
        self._parts: list[str] = []
        self._depth = 1

    # -- internals -----------------------------------------------------------

    def _emit(self, tag: str, attrs: dict[str, object], text: str | None = None) -> "SvgDocument":
        rendered = " ".join(
            f"{name.replace('_', '-')}={quoteattr(_fmt(value))}"
            for name, value in attrs.items()
            if value is not None and value != ""
        )
        indent = "  " * self._depth
        if text is None:
            self._parts.append(f"{indent}<{tag} {rendered}/>")
        else:
            self._parts.append(
                f"{indent}<{tag} {rendered}>{escape(text)}</{tag}>"
            )
        return self

    # -- primitives -----------------------------------------------------------

    def rect(
        self, x: float, y: float, width: float, height: float,
        *, fill: str = "none", stroke: str = "none", stroke_width: float = 1.0,
        rx: float = 0.0, opacity: float | None = None,
    ) -> "SvgDocument":
        """Axis-aligned rectangle."""
        return self._emit("rect", {
            "x": x, "y": y, "width": width, "height": height,
            "fill": fill, "stroke": stroke,
            "stroke_width": stroke_width if stroke != "none" else None,
            "rx": rx or None, "opacity": opacity,
        })

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        *, stroke: str = "#333", stroke_width: float = 1.0, dash: str | None = None,
    ) -> "SvgDocument":
        """Straight line segment."""
        return self._emit("line", {
            "x1": x1, "y1": y1, "x2": x2, "y2": y2,
            "stroke": stroke, "stroke_width": stroke_width,
            "stroke_dasharray": dash,
        })

    def circle(
        self, cx: float, cy: float, r: float,
        *, fill: str = "none", stroke: str = "none", stroke_width: float = 1.0,
        opacity: float | None = None,
    ) -> "SvgDocument":
        """Circle."""
        return self._emit("circle", {
            "cx": cx, "cy": cy, "r": r, "fill": fill, "stroke": stroke,
            "stroke_width": stroke_width if stroke != "none" else None,
            "opacity": opacity,
        })

    def path(
        self, d: str, *, fill: str = "none", stroke: str = "none",
        stroke_width: float = 1.0, opacity: float | None = None,
    ) -> "SvgDocument":
        """Raw path (see :func:`arc_path`)."""
        return self._emit("path", {
            "d": d, "fill": fill, "stroke": stroke,
            "stroke_width": stroke_width if stroke != "none" else None,
            "opacity": opacity,
        })

    def text(
        self, x: float, y: float, content: str,
        *, size: float = 12.0, anchor: str = "start", fill: str = "#222",
        weight: str = "normal", rotate: float | None = None,
    ) -> "SvgDocument":
        """Text run anchored at (x, y); *anchor* in start/middle/end."""
        if anchor not in ("start", "middle", "end"):
            raise RenderError(f"invalid anchor {anchor!r}")
        attrs: dict[str, object] = {
            "x": x, "y": y, "font_size": size, "text_anchor": anchor,
            "fill": fill, "font_family": self.font_family,
            "font_weight": weight if weight != "normal" else None,
        }
        if rotate is not None:
            attrs["transform"] = f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"
        return self._emit("text", attrs, content)

    def title(self, content: str, *, size: float = 15.0) -> "SvgDocument":
        """Centred title near the top edge."""
        return self.text(
            self.width / 2, size + 6, content,
            size=size, anchor="middle", weight="bold",
        )

    # -- output ------------------------------------------------------------------

    def render(self) -> str:
        """The complete SVG document as a string."""
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        """Write the document to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
