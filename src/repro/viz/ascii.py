"""Terminal renderers: figures as plain text.

Every paper figure also renders in the terminal, so benchmark harnesses can
print the rows/series they regenerate without touching the filesystem.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.selection import SelectionMatrix
from repro.errors import RenderError
from repro.stats.frequency import FrequencyTable

__all__ = ["ascii_distribution", "ascii_histogram", "ascii_matrix"]

_FULL = "█"
_PARTIALS = " ▏▎▍▌▋▊▉"


def _bar(fraction: float, width: int) -> str:
    """A unicode bar filling *fraction* of *width* character cells."""
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _PARTIALS[int(remainder * 8)] if full < width else ""
    return _FULL * full + partial


def ascii_distribution(
    table: FrequencyTable,
    *,
    title: str = "",
    label_names: Mapping[object, str] | None = None,
    width: int = 40,
    show_percent: bool = True,
) -> str:
    """Horizontal proportional bars — the terminal form of a pie chart."""
    if width < 4:
        raise RenderError("width must be >= 4")
    if table.total <= 0:
        raise RenderError("cannot render an all-zero table")
    names = {
        label: (label_names or {}).get(label, str(label))
        for label in table.labels
    }
    label_width = max(len(n) for n in names.values())
    peak = max(int(v) for v in table.values)
    lines = [title] if title else []
    for label, count in table.items():
        share = table.share(label)
        bar = _bar(count / peak if peak else 0.0, width)
        suffix = f" {count:>3}"
        if show_percent:
            suffix += f" ({share * 100:4.1f}%)"
        lines.append(f"{names[label]:<{label_width}} {bar:<{width}}{suffix}")
    return "\n".join(lines)


def ascii_histogram(
    table: FrequencyTable,
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    height: int = 8,
) -> str:
    """Vertical bar histogram with integer y ticks (Fig. 3 in a terminal)."""
    if height < 2:
        raise RenderError("height must be >= 2")
    values = [int(v) for v in table.values]
    peak = max(values)
    if peak <= 0:
        raise RenderError("cannot render an all-zero table")
    labels = [str(l) for l in table.labels]
    column_width = max(3, max(len(l) for l in labels) + 1)

    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    for level in range(height, 0, -1):
        threshold = peak * level / height
        tick = str(round(threshold)) if level in (height, 1) else ""
        row = "".join(
            (" " * (column_width - 2) + "█ ")
            if value >= threshold - 1e-9
            else " " * column_width
            for value in values
        )
        lines.append(f"{tick:>4} |{row}")
    lines.append("     +" + "-" * (column_width * len(values)))
    lines.append(
        "      "
        + "".join(f"{label:^{column_width}}" for label in labels)
    )
    if x_label:
        lines.append(f"      {x_label}")
    return "\n".join(lines)


def ascii_matrix(
    selection: SelectionMatrix,
    *,
    row_names: Mapping[str, str] | None = None,
    col_names: Mapping[str, str] | None = None,
    check: str = "x",
) -> str:
    """Checkmark grid — Table 2 in a terminal."""
    rows = selection.tool_keys
    cols = selection.application_keys
    r_names = {k: (row_names or {}).get(k, k) for k in rows}
    c_names = {k: (col_names or {}).get(k, k) for k in cols}
    label_width = max(len(n) for n in r_names.values())
    col_width = max(max(len(n) for n in c_names.values()), 3) + 1

    header = " " * (label_width + 1) + "".join(
        f"{c_names[c]:^{col_width}}" for c in cols
    )
    lines = [header]
    for row in rows:
        cells = "".join(
            f"{check if selection.is_selected(row, col) else '.':^{col_width}}"
            for col in cols
        )
        lines.append(f"{r_names[row]:<{label_width}} {cells}")
    return "\n".join(lines)
