"""The :class:`Corpus` container: an indexed publication collection.

Ties the corpus substrate together: add/parse records, search with boolean
queries, deduplicate, group by venue and year, and produce the screening
inputs for the SMS pipeline.  For corpora too large to hold in memory, the
same API is served by the persistent :class:`repro.corpus.store.CorpusStore`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import replace

from repro.corpus.bibtex import RejectedEntry, publications_from_bibtex, to_bibtex
from repro.corpus.dedup import find_duplicates, merge_cluster
from repro.corpus.publication import Publication
from repro.corpus.query import Query
from repro.corpus.venues import VenueNormalizer
from repro.errors import CorpusError, DuplicateEntityError
from repro.stats.frequency import FrequencyTable

__all__ = ["Corpus", "COLLISION_POLICIES", "resolve_collision"]

#: Valid ``on_collision`` policies for :meth:`Corpus.add`/:meth:`Corpus.extend`
#: (and store ingestion): ``"error"`` raises, ``"suffix"`` disambiguates the
#: key with ``-2``, ``-3``, ..., ``"skip"`` drops the colliding record.
COLLISION_POLICIES = ("error", "suffix", "skip")


def resolve_collision(
    key: str,
    taken: "Iterable[str] | Corpus",
    policy: str,
) -> str | None:
    """Resolve a citation-key collision under a policy.

    Returns the key to store under (``key`` itself when free, a
    ``key-2``/``key-3``... variant under ``"suffix"``), or ``None`` when
    the record should be skipped.  ``"error"`` raises
    :class:`~repro.errors.DuplicateEntityError` — the historical
    behaviour, still the default.  Shared by :class:`Corpus` and
    :class:`repro.corpus.store.CorpusStore` so multi-database merges
    behave identically in memory and on disk.
    """
    if policy not in COLLISION_POLICIES:
        raise CorpusError(
            f"unknown collision policy {policy!r}; pick one of "
            f"{', '.join(COLLISION_POLICIES)}"
        )
    if key not in taken:
        return key
    if policy == "error":
        raise DuplicateEntityError(f"duplicate publication key {key!r}")
    if policy == "skip":
        return None
    n = 2
    while f"{key}-{n}" in taken:
        n += 1
    return f"{key}-{n}"


class Corpus:
    """An insertion-ordered, key-indexed publication collection."""

    def __init__(self, publications: Iterable[Publication] = ()) -> None:
        self._records: dict[str, Publication] = {}
        for pub in publications:
            self.add(pub)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_bibtex(
        cls,
        text: str,
        *,
        strict: bool = True,
        rejected: list[RejectedEntry] | None = None,
        on_collision: str = "error",
    ) -> "Corpus":
        """Parse BibTeX source into a corpus.

        ``strict``/``rejected`` follow
        :func:`~repro.corpus.bibtex.publications_from_bibtex`;
        ``on_collision`` follows :meth:`extend`.
        """
        corpus = cls()
        corpus.extend(
            publications_from_bibtex(text, strict=strict, rejected=rejected),
            on_collision=on_collision,
        )
        return corpus

    def add(
        self, publication: Publication, *, on_collision: str = "error"
    ) -> str | None:
        """Register one record; returns the key stored under.

        With the default ``on_collision="error"`` a duplicate key raises
        :class:`~repro.errors.DuplicateEntityError`; ``"suffix"`` stores
        the record under a disambiguated ``key-2``/``key-3``... variant
        (multi-database exports reuse citation keys); ``"skip"`` drops
        the record and returns ``None``.
        """
        key = resolve_collision(publication.key, self._records, on_collision)
        if key is None:
            return None
        if key != publication.key:
            publication = replace(publication, key=key)
        self._records[key] = publication
        return key

    def extend(
        self,
        publications: Iterable[Publication],
        *,
        on_collision: str = "error",
    ) -> list[str]:
        """Register many records; returns the keys actually stored."""
        stored: list[str] = []
        for pub in publications:
            key = self.add(pub, on_collision=on_collision)
            if key is not None:
                stored.append(key)
        return stored

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Publication]:
        return iter(self._records.values())

    def __contains__(self, key: object) -> bool:
        return key in self._records

    def __getitem__(self, key: str) -> Publication:
        try:
            return self._records[key]
        except KeyError:
            raise CorpusError(f"unknown publication {key!r}") from None

    @property
    def keys(self) -> tuple[str, ...]:
        """Record keys in insertion order."""
        return tuple(self._records)

    # -- queries ---------------------------------------------------------------------

    def search(self, query: str | Query) -> list[Publication]:
        """Records matching a boolean *query* (string or compiled)."""
        compiled = Query(query) if isinstance(query, str) else query
        return compiled.filter(self)

    def by_year(self) -> FrequencyTable:
        """Publication counts per year over the full corpus range.

        Zero-publication gap years are kept (a trend series with silently
        missing years distorts Fig-2-style plots); unknown years dropped.
        """
        first, last = self.year_range()
        counts = {year: 0 for year in range(first, last + 1)}
        for pub in self:
            if pub.year is not None:
                counts[pub.year] += 1
        return FrequencyTable(counts)

    def by_venue(
        self, normalizer: VenueNormalizer | None = None
    ) -> FrequencyTable:
        """Publication counts per (normalized) venue, most frequent first."""
        normalizer = normalizer or VenueNormalizer()
        counts: dict[str, int] = {}
        for pub in self:
            venue = normalizer.normalize(pub.venue) or "(unknown)"
            counts[venue] = counts.get(venue, 0) + 1
        ordered = dict(
            sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        return FrequencyTable(ordered)

    def year_range(self) -> tuple[int, int]:
        """(earliest, latest) publication year."""
        years = [pub.year for pub in self if pub.year is not None]
        if not years:
            raise CorpusError("no publication has a year")
        return min(years), max(years)

    # -- deduplication ----------------------------------------------------------------

    def deduplicate(self, *, threshold: float = 0.75) -> "Corpus":
        """Return a new corpus with near-duplicate clusters merged.

        Non-duplicates keep their insertion order; each cluster is replaced
        by its merged record at the position of its first member.
        """
        records = list(self)
        clusters = find_duplicates(records, threshold=threshold)
        replaced: dict[str, Publication] = {}
        dropped: set[str] = set()
        for cluster in clusters:
            merged = merge_cluster(cluster)
            replaced[cluster[0].key] = merged
            dropped.update(pub.key for pub in cluster[1:])
        out = Corpus()
        for pub in records:
            if pub.key in dropped:
                continue
            out.add(replaced.get(pub.key, pub))
        return out

    # -- serialization -------------------------------------------------------------------

    def to_bibtex(self) -> str:
        """Serialize the whole corpus to BibTeX."""
        return to_bibtex(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corpus({len(self)} publications)"
