"""The :class:`Corpus` container: an indexed publication collection.

Ties the corpus substrate together: add/parse records, search with boolean
queries, deduplicate, group by venue and year, and produce the screening
inputs for the SMS pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.corpus.bibtex import publications_from_bibtex, to_bibtex
from repro.corpus.dedup import find_duplicates, merge_cluster
from repro.corpus.publication import Publication
from repro.corpus.query import Query
from repro.corpus.venues import VenueNormalizer
from repro.errors import CorpusError, DuplicateEntityError
from repro.stats.frequency import FrequencyTable

__all__ = ["Corpus"]


class Corpus:
    """An insertion-ordered, key-indexed publication collection."""

    def __init__(self, publications: Iterable[Publication] = ()) -> None:
        self._records: dict[str, Publication] = {}
        for pub in publications:
            self.add(pub)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_bibtex(cls, text: str) -> "Corpus":
        """Parse BibTeX source into a corpus."""
        return cls(publications_from_bibtex(text))

    def add(self, publication: Publication) -> None:
        """Register one record; duplicate keys are an error."""
        if publication.key in self._records:
            raise DuplicateEntityError(
                f"duplicate publication key {publication.key!r}"
            )
        self._records[publication.key] = publication

    def extend(self, publications: Iterable[Publication]) -> None:
        """Register many records."""
        for pub in publications:
            self.add(pub)

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Publication]:
        return iter(self._records.values())

    def __contains__(self, key: object) -> bool:
        return key in self._records

    def __getitem__(self, key: str) -> Publication:
        try:
            return self._records[key]
        except KeyError:
            raise CorpusError(f"unknown publication {key!r}") from None

    @property
    def keys(self) -> tuple[str, ...]:
        """Record keys in insertion order."""
        return tuple(self._records)

    # -- queries ---------------------------------------------------------------------

    def search(self, query: str | Query) -> list[Publication]:
        """Records matching a boolean *query* (string or compiled)."""
        compiled = Query(query) if isinstance(query, str) else query
        return compiled.filter(self)

    def by_year(self) -> FrequencyTable:
        """Publication counts per year, ascending; unknown years dropped."""
        years = sorted(
            {pub.year for pub in self if pub.year is not None}
        )
        if not years:
            raise CorpusError("no publication has a year")
        counts = {year: 0 for year in years}
        for pub in self:
            if pub.year is not None:
                counts[pub.year] += 1
        return FrequencyTable(counts)

    def by_venue(
        self, normalizer: VenueNormalizer | None = None
    ) -> FrequencyTable:
        """Publication counts per (normalized) venue, most frequent first."""
        normalizer = normalizer or VenueNormalizer()
        counts: dict[str, int] = {}
        for pub in self:
            venue = normalizer.normalize(pub.venue) or "(unknown)"
            counts[venue] = counts.get(venue, 0) + 1
        ordered = dict(
            sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        return FrequencyTable(ordered)

    def year_range(self) -> tuple[int, int]:
        """(earliest, latest) publication year."""
        years = [pub.year for pub in self if pub.year is not None]
        if not years:
            raise CorpusError("no publication has a year")
        return min(years), max(years)

    # -- deduplication ----------------------------------------------------------------

    def deduplicate(self, *, threshold: float = 0.75) -> "Corpus":
        """Return a new corpus with near-duplicate clusters merged.

        Non-duplicates keep their insertion order; each cluster is replaced
        by its merged record at the position of its first member.
        """
        records = list(self)
        clusters = find_duplicates(records, threshold=threshold)
        replaced: dict[str, Publication] = {}
        dropped: set[str] = set()
        for cluster in clusters:
            merged = merge_cluster(cluster)
            replaced[cluster[0].key] = merged
            dropped.update(pub.key for pub in cluster[1:])
        out = Corpus()
        for pub in records:
            if pub.key in dropped:
                continue
            out.add(replaced.get(pub.key, pub))
        return out

    # -- serialization -------------------------------------------------------------------

    def to_bibtex(self) -> str:
        """Serialize the whole corpus to BibTeX."""
        return to_bibtex(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corpus({len(self)} publications)"
