"""Venue normalization.

Bibliographic exports spell the same venue a dozen ways ("IEEE Trans.
Parallel Distrib. Syst.", "IEEE Transactions on Parallel and Distributed
Systems", "TPDS").  The normalizer canonicalizes venue strings through
(1) lexical cleanup, (2) a curated alias table for the venues relevant to
the workflow-research corpus, and (3) acronym extraction as a fallback.
"""

from __future__ import annotations

import re

__all__ = ["VenueNormalizer", "DEFAULT_ALIASES"]

_NOISE_RE = re.compile(
    r"\b(proceedings|proc\.?|of|the|on|in|international|intl\.?|annual|"
    r"workshops?|conference|symposium|journal|transactions|trans\.?)\b",
    re.IGNORECASE,
)
_PAREN_RE = re.compile(r"\(([^)]*)\)")
_ACRONYM_RE = re.compile(r"\b[A-Z][A-Z0-9@+-]{2,}\b")

#: Canonical venue id → alias fragments (lowercase) that identify it.
DEFAULT_ALIASES: dict[str, tuple[str, ...]] = {
    "sc": ("supercomputing", "high performance computing, network",
           "sc-w", "sc workshops"),
    "tpds": ("parallel and distributed systems", "tpds"),
    "tetc": ("emerging topics in computing", "tetc"),
    "tcc": ("ieee transactions on cloud computing",),
    "tnsm": ("network and service management", "tnsm"),
    "tkde": ("knowledge and data engineering", "tkde"),
    "fgcs": ("future generation computer systems", "fgcs"),
    "jpdc": ("parallel and distrib. comput", "parallel and distributed computing"),
    "cgo": ("code generation and optimization", "cgo"),
    "icdcs": ("distributed computing systems", "icdcs"),
    "percom": ("pervasive computing and communications", "percom"),
    "pmc": ("pervasive and mobile computing",),
    "sensors": ("sensors",),
    "computers": ("computers",),
    "jogc": ("grid computing",),
    "vldb": ("vldb", "very large data"),
    "sigmod": ("sigmod", "management of data"),
    "icde": ("data engineering",),
    "ppopp": ("principles and practice of parallel programming", "ppopp"),
    "icpe": ("performance engineering", "icpe"),
    "works": ("workflows in support of large-scale science", "works"),
    "cacm": ("communications of the acm", "commun. acm"),
    "corr": ("corr", "arxiv"),
    "nsdi": ("networked systems design and implementation", "nsdi"),
    "ccgrid": ("cluster, cloud and grid", "ccgrid"),
    "europar": ("euro-par",),
    "cf": ("computing frontiers",),
    "parco": ("parallel comput", "parallel computing"),
}


class VenueNormalizer:
    """Maps raw venue strings to canonical venue identifiers.

    Parameters
    ----------
    aliases:
        Canonical id → lowercase fragments; a raw venue containing a
        fragment maps to that id.  Defaults to :data:`DEFAULT_ALIASES`.

    Notes
    -----
    Resolution order: alias table → parenthesized or embedded acronym →
    cleaned lexical form.  Unknown venues thus still normalize consistently
    ("IEEE Fancy New Conf (FNC)" → ``"fnc"``).
    """

    def __init__(self, aliases: dict[str, tuple[str, ...]] | None = None) -> None:
        self._aliases = dict(DEFAULT_ALIASES if aliases is None else aliases)
        # Longest fragments first so "parallel and distributed systems" wins
        # over a hypothetical shorter overlapping fragment.
        self._fragments = sorted(
            (
                (fragment, canonical)
                for canonical, fragments in self._aliases.items()
                for fragment in fragments
            ),
            key=lambda pair: -len(pair[0]),
        )

    def add_alias(self, canonical: str, *fragments: str) -> None:
        """Register extra alias fragments for *canonical*."""
        if not canonical or not fragments:
            raise ValueError("need a canonical id and at least one fragment")
        existing = self._aliases.get(canonical, ())
        self._aliases[canonical] = existing + tuple(f.lower() for f in fragments)
        self._fragments = sorted(
            (
                (fragment, canon)
                for canon, frags in self._aliases.items()
                for fragment in frags
            ),
            key=lambda pair: -len(pair[0]),
        )

    def normalize(self, venue: str) -> str:
        """Canonical id for *venue* (``""`` for blank input)."""
        raw = venue.strip()
        if not raw:
            return ""
        lowered = raw.lower()
        for fragment, canonical in self._fragments:
            if fragment in lowered:
                return canonical
        # Parenthesized acronym: "... (WORKS)" → works
        paren = _PAREN_RE.search(raw)
        if paren:
            acronym = _ACRONYM_RE.search(paren.group(1))
            if acronym:
                return acronym.group().lower()
        acronym = _ACRONYM_RE.search(raw)
        if acronym and acronym.group().lower() not in ("ieee", "acm", "usenix"):
            return acronym.group().lower()
        cleaned = _NOISE_RE.sub(" ", lowered)
        cleaned = re.sub(r"[^a-z0-9 ]+", " ", cleaned)
        return re.sub(r"\s+", "-", cleaned.strip()) or lowered

    def group(self, venues: list[str]) -> dict[str, list[str]]:
        """Group raw venue strings by their canonical id."""
        grouped: dict[str, list[str]] = {}
        for venue in venues:
            grouped.setdefault(self.normalize(venue), []).append(venue)
        return grouped
