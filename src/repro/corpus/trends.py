"""Temporal trend analysis over a corpus.

Standard SMS reporting includes a publication-over-time facet: how activity
in each category evolves.  This module computes per-year (and per-year ×
category) series, cumulative growth, and a least-squares linear trend with
a vectorized fit.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.corpus.publication import Publication
from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable

__all__ = [
    "yearly_series",
    "cumulative_series",
    "category_year_matrix",
    "TrendFit",
    "fit_linear_trend",
]


def yearly_series(
    publications: Iterable[Publication],
    *,
    first: int | None = None,
    last: int | None = None,
) -> FrequencyTable:
    """Publication counts per year over ``[first, last]``, zero-filled.

    Bounds default to the corpus range; records without a year are skipped.
    """
    years = [p.year for p in publications if p.year is not None]
    if not years:
        raise StatsError("no publication has a year")
    lo = first if first is not None else min(years)
    hi = last if last is not None else max(years)
    if lo > hi:
        raise StatsError(f"empty year range [{lo}, {hi}]")
    counts = {year: 0 for year in range(lo, hi + 1)}
    for year in years:
        if lo <= year <= hi:
            counts[year] += 1
    return FrequencyTable(counts)


def cumulative_series(series: FrequencyTable) -> FrequencyTable:
    """Running total of a yearly series (same labels)."""
    cumulative = np.cumsum(series.values)
    return FrequencyTable(
        {label: int(cumulative[i]) for i, label in enumerate(series.labels)}
    )


def category_year_matrix(
    publications: Sequence[Publication],
    categorize: Callable[[Publication], str],
    category_order: Sequence[str],
    *,
    first: int | None = None,
    last: int | None = None,
) -> tuple[np.ndarray, tuple[str, ...], tuple[int, ...]]:
    """Counts per (category, year) — the data of an SMS bubble chart.

    Parameters
    ----------
    publications:
        Records to tally (yearless ones are skipped).
    categorize:
        Maps a publication to a category key in *category_order*.
    category_order:
        Row order of the matrix.

    Returns
    -------
    (matrix, categories, years)
        ``matrix[i, j]`` counts category ``categories[i]`` in year
        ``years[j]``.
    """
    dated = [p for p in publications if p.year is not None]
    if not dated:
        raise StatsError("no publication has a year")
    lo = first if first is not None else min(p.year for p in dated)
    hi = last if last is not None else max(p.year for p in dated)
    if lo > hi:
        raise StatsError(f"empty year range [{lo}, {hi}]")
    years = tuple(range(lo, hi + 1))
    index = {key: i for i, key in enumerate(category_order)}
    matrix = np.zeros((len(category_order), len(years)), dtype=np.int64)
    for pub in dated:
        if not lo <= pub.year <= hi:
            continue
        category = categorize(pub)
        if category not in index:
            raise StatsError(
                f"categorize() returned {category!r}, outside the order"
            )
        matrix[index[category], pub.year - lo] += 1
    return matrix, tuple(category_order), years


@dataclass(frozen=True, slots=True)
class TrendFit:
    """Least-squares linear fit of a yearly series.

    Attributes
    ----------
    slope:
        Publications per year of growth (negative = decline).
    intercept:
        Fitted count at year 0 of the centered scale.
    r_squared:
        Fraction of variance explained.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, years_ahead: float) -> float:
        """Extrapolate the fitted line *years_ahead* past the series end."""
        return self.intercept + self.slope * years_ahead


def fit_linear_trend(series: FrequencyTable) -> TrendFit:
    """Fit counts ~ year by ordinary least squares.

    The x axis is centered on the final year, so :attr:`TrendFit.intercept`
    is the fitted count at the series end and ``predict(k)`` extrapolates
    ``k`` years beyond it.
    """
    if len(series) < 2:
        raise StatsError("need at least two years to fit a trend")
    years = np.asarray(series.labels, dtype=np.float64)
    counts = series.values.astype(np.float64)
    x = years - years[-1]
    slope, intercept = np.polyfit(x, counts, 1)
    fitted = intercept + slope * x
    residual = ((counts - fitted) ** 2).sum()
    total = ((counts - counts.mean()) ** 2).sum()
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return TrendFit(float(slope), float(intercept), float(r_squared))
