"""Bibliographic corpus substrate: records, BibTeX, venues, queries, dedup."""

from repro.corpus.bibtex import parse_bibtex, publications_from_bibtex, to_bibtex
from repro.corpus.corpus import Corpus
from repro.corpus.dedup import find_duplicates, merge_cluster
from repro.corpus.publication import Publication, make_pub_key, normalize_title
from repro.corpus.query import Query, parse_query
from repro.corpus.trends import (
    TrendFit,
    category_year_matrix,
    cumulative_series,
    fit_linear_trend,
    yearly_series,
)
from repro.corpus.venues import DEFAULT_ALIASES, VenueNormalizer

__all__ = [
    "Corpus",
    "DEFAULT_ALIASES",
    "Publication",
    "Query",
    "TrendFit",
    "category_year_matrix",
    "cumulative_series",
    "fit_linear_trend",
    "yearly_series",
    "VenueNormalizer",
    "find_duplicates",
    "make_pub_key",
    "merge_cluster",
    "normalize_title",
    "parse_bibtex",
    "parse_query",
    "publications_from_bibtex",
    "to_bibtex",
]
