"""Bibliographic corpus substrate: records, BibTeX, venues, queries, dedup.

Two containers serve the same corpus API: the in-memory
:class:`~repro.corpus.corpus.Corpus` for study-scale record sets and the
SQLite-backed :class:`~repro.corpus.store.CorpusStore` for corpora that
must stream from disk (million-record multi-database merges).
"""

from repro.corpus.bibtex import (
    RejectedEntry,
    iter_publications_from_bibtex,
    make_key_if_missing,
    parse_bibtex,
    publications_from_bibtex,
    to_bibtex,
)
from repro.corpus.corpus import COLLISION_POLICIES, Corpus, resolve_collision
from repro.corpus.dedup import (
    find_duplicates,
    merge_cluster,
    pair_similarity,
    title_shingles,
    years_compatible,
)
from repro.corpus.publication import Publication, make_pub_key, normalize_title
from repro.corpus.query import Query, parse_query
from repro.corpus.store import CorpusStore, DedupSummary, IngestReport
from repro.corpus.trends import (
    TrendFit,
    category_year_matrix,
    cumulative_series,
    fit_linear_trend,
    yearly_series,
)
from repro.corpus.venues import DEFAULT_ALIASES, VenueNormalizer

__all__ = [
    "COLLISION_POLICIES",
    "Corpus",
    "CorpusStore",
    "DEFAULT_ALIASES",
    "DedupSummary",
    "IngestReport",
    "Publication",
    "Query",
    "RejectedEntry",
    "TrendFit",
    "VenueNormalizer",
    "category_year_matrix",
    "cumulative_series",
    "find_duplicates",
    "fit_linear_trend",
    "iter_publications_from_bibtex",
    "make_key_if_missing",
    "make_pub_key",
    "merge_cluster",
    "normalize_title",
    "pair_similarity",
    "parse_bibtex",
    "parse_query",
    "publications_from_bibtex",
    "resolve_collision",
    "title_shingles",
    "to_bibtex",
    "years_compatible",
    "yearly_series",
]
