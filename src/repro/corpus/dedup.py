"""Near-duplicate detection for bibliographic corpora.

Merging exports from several databases (Scopus, WoS, DBLP, ...) yields
duplicate records with slightly different titles.  The deduplicator blocks
candidates cheaply, scores them with title similarity, and clusters matches
with a union-find structure:

1. **Blocking** — records sharing one of their *rarest* normalized-title
   4-gram shingles land in the same block; only within-block pairs are
   scored.  Indexing only the rare shingles (rather than all of them) keeps
   block sizes small — ubiquitous shingles like ``tion`` would otherwise
   put most of the corpus into one block and reintroduce the O(n²)
   all-pairs comparison.  True near-duplicates share the large majority of
   their shingles, so they share rare ones too.
2. **Scoring** — two complementary measures over title shingles: Jaccard
   similarity (catches spelling/case variants) and containment
   (``|A∩B| / min(|A|,|B|)``, catches subtitle truncation where one title
   is a prefix of the other), gated by year compatibility (missing years
   are compatible with everything).
3. **Clustering** — union-find over pairs passing either measure.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.corpus.publication import Publication
from repro.errors import CorpusError

__all__ = [
    "BLOCKING_KEYS",
    "DuplicateCluster",
    "find_duplicates",
    "merge_cluster",
    "pair_similarity",
    "title_shingles",
    "validate_dedup_params",
    "years_compatible",
]

#: Rare shingles indexed per record by the blocking stage.  Shared with
#: the SQL-blocked path in :mod:`repro.corpus.store` so both produce the
#: same candidate pairs.
BLOCKING_KEYS = 10


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def title_shingles(normalized_title: str, k: int = 4) -> frozenset[str]:
    """Character *k*-gram shingles of a normalized title."""
    text = normalized_title.replace(" ", "_")
    if len(text) <= k:
        return frozenset((text,)) if text else frozenset()
    return frozenset(text[i : i + k] for i in range(len(text) - k + 1))


def years_compatible(a: int | None, b: int | None, slack: int = 1) -> bool:
    """Whether two publication years may belong to the same work.

    Missing years are compatible with everything; otherwise the absolute
    difference must be within *slack* (preprint vs camera-ready).
    """
    if a is None or b is None:
        return True
    return abs(a - b) <= slack


def pair_similarity(
    sa: frozenset[str], sb: frozenset[str]
) -> tuple[float, float]:
    """(Jaccard, containment) similarity of two shingle sets.

    Containment is ``|A∩B| / min(|A|, |B|)`` — the subtitle-truncation
    detector.  Either set empty yields ``(0.0, 0.0)``.
    """
    if not sa or not sb:
        return 0.0, 0.0
    intersection = len(sa & sb)
    return (
        intersection / len(sa | sb),
        intersection / min(len(sa), len(sb)),
    )


def validate_dedup_params(
    threshold: float, containment_threshold: float, shingle_size: int
) -> None:
    """Validate shared dedup knobs (raises :class:`CorpusError`)."""
    if not 0 < threshold <= 1:
        raise CorpusError(f"threshold must be in (0, 1], got {threshold}")
    if not 0 < containment_threshold <= 1:
        raise CorpusError(
            f"containment_threshold must be in (0, 1], got {containment_threshold}"
        )
    if shingle_size < 2:
        raise CorpusError(f"shingle_size must be >= 2, got {shingle_size}")


DuplicateCluster = tuple[Publication, ...]


def find_duplicates(
    publications: Sequence[Publication],
    *,
    threshold: float = 0.75,
    containment_threshold: float = 0.9,
    shingle_size: int = 4,
    year_slack: int = 1,
) -> list[DuplicateCluster]:
    """Cluster near-duplicate records.

    Parameters
    ----------
    publications:
        The corpus to scan.
    threshold:
        Minimum shingle-Jaccard similarity for a match (case/spelling
        variants).
    containment_threshold:
        Minimum shingle containment ``|A∩B| / min(|A|,|B|)`` for a match
        (subtitle truncation); a pair merges when *either* measure passes.
    shingle_size:
        Character n-gram size for title shingling.
    year_slack:
        Maximum year difference still considered the same work (preprint
        vs. camera-ready).

    Returns
    -------
    list of tuples
        One tuple per duplicate cluster (size >= 2), records in input
        order; singletons are omitted.
    """
    validate_dedup_params(threshold, containment_threshold, shingle_size)
    n = len(publications)
    if n < 2:
        return []

    shingle_sets = [
        title_shingles(pub.normalized_title, shingle_size)
        for pub in publications
    ]

    # Blocking: index each record under its rarest shingles, then probe the
    # index with every record's FULL shingle set.  Index-side rarity keeps
    # blocks small; query-side completeness keeps recall — a truncated title
    # still probes the shingles its superset indexed.
    frequency: dict[str, int] = {}
    for shingles in shingle_sets:
        for shingle in shingles:
            frequency[shingle] = frequency.get(shingle, 0) + 1
    blocks: dict[str, list[int]] = {}
    for i, shingles in enumerate(shingle_sets):
        rare = sorted(shingles, key=lambda s: (frequency[s], s))[:BLOCKING_KEYS]
        for shingle in rare:
            blocks.setdefault(shingle, []).append(i)

    union_find = _UnionFind(n)
    seen_pairs: set[tuple[int, int]] = set()
    for i in range(n):
        for shingle in shingle_sets[i]:
            for j in blocks.get(shingle, ()):
                if j == i:
                    continue
                pair = (min(i, j), max(i, j))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                if not years_compatible(
                    publications[i].year, publications[j].year, year_slack
                ):
                    continue
                jac, containment = pair_similarity(
                    shingle_sets[i], shingle_sets[j]
                )
                if jac >= threshold or containment >= containment_threshold:
                    union_find.union(i, j)

    clusters: dict[int, list[int]] = {}
    for i in range(n):
        clusters.setdefault(union_find.find(i), []).append(i)
    return [
        tuple(publications[i] for i in members)
        for members in clusters.values()
        if len(members) >= 2
    ]


def merge_cluster(cluster: DuplicateCluster) -> Publication:
    """Merge a duplicate cluster into one best record.

    Field policy: keep the record with the most metadata as the base, then
    fill every missing field from the others (longest abstract wins, author
    list of the base wins, keywords are unioned).
    """
    if not cluster:
        raise CorpusError("cannot merge an empty cluster")

    def richness(pub: Publication) -> int:
        return sum(
            bool(field)
            for field in (
                pub.abstract, pub.doi, pub.url, pub.venue,
                pub.authors, pub.year, pub.keywords,
            )
        )

    base = max(cluster, key=richness)
    abstract = max((p.abstract for p in cluster), key=len)
    keywords: dict[str, None] = {}
    for pub in cluster:
        for keyword in pub.keywords:
            keywords.setdefault(keyword, None)
    return Publication(
        key=base.key,
        title=base.title,
        authors=base.authors or next(
            (p.authors for p in cluster if p.authors), ()
        ),
        year=base.year if base.year is not None else next(
            (p.year for p in cluster if p.year is not None), None
        ),
        venue=base.venue or next((p.venue for p in cluster if p.venue), ""),
        abstract=abstract,
        doi=base.doi or next((p.doi for p in cluster if p.doi), ""),
        url=base.url or next((p.url for p in cluster if p.url), ""),
        keywords=tuple(keywords),
        kind=base.kind,
        language=base.language,
    )
