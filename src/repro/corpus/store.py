"""A persistent, indexed publication store for million-record corpora.

:class:`CorpusStore` serves the :class:`~repro.corpus.corpus.Corpus` API
(add/extend/search/by_year/by_venue/deduplicate/to_bibtex) from a
stdlib-``sqlite3`` database instead of an in-memory dict, so the paper's
corpus phase (database search → dedup → screening) scales from the
hundreds of records the study saw to millions:

* **streaming ingestion** — :meth:`CorpusStore.ingest_bibtex` drives the
  generator-based BibTeX parser and commits in batches, so memory stays
  O(batch) regardless of corpus size; rejected entries are collected,
  not fatal, under ``strict=False``;
* **inverted term index** — every record's searchable text is tokenized
  into a ``postings(term, pub_id)`` table.  :meth:`CorpusStore.search`
  walks the query AST (:attr:`repro.corpus.query.Query.ast`) and
  resolves a candidate *superset* from the index (exact-term lookups,
  range scans for ``prefix*`` wildcards, intersections for phrases),
  then post-filters only the candidates with the compiled matcher — no
  full scan unless the query is negation-rooted;
* **SQL-blocked deduplication** — :meth:`CorpusStore.deduplicate` reuses
  the rare-shingle blocking of :mod:`repro.corpus.dedup` but stages the
  shingle and block tables in SQLite and streams ``DISTINCT`` candidate
  pairs out of a SQL join, so the pair set lives in a disk-backed B-tree
  instead of an in-memory ``seen_pairs`` set.  Scoring, year gating, and
  clustering are shared with the in-memory path, so the merged result is
  bit-identical to ``Corpus.deduplicate`` on the same records.

Every phase is instrumented with :mod:`repro.telemetry` spans and
``corpus.*`` counters behind the usual zero-overhead null default.
"""

from __future__ import annotations

import json
import re
import sqlite3
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.corpus.bibtex import (
    RejectedEntry,
    iter_publications_from_bibtex,
    to_bibtex,
)
from repro.corpus.corpus import COLLISION_POLICIES
from repro.corpus.dedup import (
    BLOCKING_KEYS,
    _UnionFind,
    merge_cluster,
    pair_similarity,
    title_shingles,
    validate_dedup_params,
    years_compatible,
)
from repro.corpus.publication import Publication, normalize_title
from repro.corpus.query import (
    AndNode,
    NotNode,
    OrNode,
    PhraseNode,
    Query,
    QueryNode,
    TermNode,
)
from repro.corpus.venues import VenueNormalizer
from repro.errors import CorpusError, CorpusStoreError, DuplicateEntityError
from repro.stats.frequency import FrequencyTable
from repro.telemetry import ensure

__all__ = ["CorpusStore", "DedupSummary", "IngestReport", "SCHEMA_VERSION"]

#: Bump when the on-disk schema changes incompatibly.
SCHEMA_VERSION = 1

#: Records per committed transaction during batched ingestion.
DEFAULT_BATCH_SIZE = 1000

#: Tokenizer for the inverted index: the ``\w+`` runs of the lowercased
#: searchable text.  The query matchers' ``\b`` word boundaries align
#: with these runs, which is what makes exact-term index lookups sound.
_WORD_RE = re.compile(r"\w+")

#: SQLite's default variable limit is 999; stay safely under it when
#: expanding ``IN (...)`` placeholders.
_IN_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS pubs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    key TEXT NOT NULL UNIQUE,
    title TEXT NOT NULL,
    authors TEXT NOT NULL,
    year INTEGER,
    venue TEXT NOT NULL DEFAULT '',
    abstract TEXT NOT NULL DEFAULT '',
    doi TEXT NOT NULL DEFAULT '',
    url TEXT NOT NULL DEFAULT '',
    keywords TEXT NOT NULL,
    kind TEXT NOT NULL,
    language TEXT
);
CREATE INDEX IF NOT EXISTS idx_pubs_year ON pubs(year);
CREATE TABLE IF NOT EXISTS postings (
    term TEXT NOT NULL,
    pub_id INTEGER NOT NULL,
    PRIMARY KEY (term, pub_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_postings_pub ON postings(pub_id);
"""


def _index_terms(publication: Publication) -> set[str]:
    """The inverted-index terms of one record's searchable text."""
    return set(_WORD_RE.findall(publication.searchable_text().lower()))


@dataclass(frozen=True, slots=True)
class IngestReport:
    """Outcome of one :meth:`CorpusStore.ingest_bibtex` call.

    Attributes
    ----------
    ingested:
        Records stored (including suffix-renamed ones).
    renamed:
        Records stored under a ``key-N`` variant (``on_collision="suffix"``).
    skipped:
        Records dropped by ``on_collision="skip"``.
    rejected:
        Unusable entries skipped by ``strict=False`` (key + reason each).
    """

    ingested: int = 0
    renamed: int = 0
    skipped: int = 0
    rejected: tuple[RejectedEntry, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready summary (rejects as ``[key, reason]`` pairs)."""
        return {
            "ingested": self.ingested,
            "renamed": self.renamed,
            "skipped": self.skipped,
            "rejected": [[r.key, r.reason] for r in self.rejected],
        }


@dataclass(frozen=True, slots=True)
class DedupSummary:
    """Outcome of one :meth:`CorpusStore.deduplicate` call.

    Attributes
    ----------
    clusters:
        Near-duplicate clusters found (size >= 2).
    dropped:
        Records deleted (cluster members beyond the first).
    pairs_scored:
        Candidate pairs streamed out of the SQL block join and scored.
    """

    clusters: int = 0
    dropped: int = 0
    pairs_scored: int = 0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready summary."""
        return {
            "clusters": self.clusters,
            "dropped": self.dropped,
            "pairs_scored": self.pairs_scored,
        }


class CorpusStore:
    """A SQLite-backed, insertion-ordered, key-indexed publication store.

    Parameters
    ----------
    path:
        Database file (created if missing).  ``None`` keeps the store in
        memory — same engine, no persistence.  Re-opening an existing
        path serves queries immediately; nothing is re-ingested.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; ingest/search/dedup
        phases emit spans and ``corpus.*`` counters through it.
    threadsafe:
        Allow the connection to be used from threads other than the one
        that opened it (``check_same_thread=False``).  The store itself
        does NOT serialize access — callers sharing one store across
        threads must hold their own lock around every call (the serve
        layer does exactly that).

    Examples
    --------
    >>> store = CorpusStore()
    >>> report = store.ingest_bibtex('@article{k1, title={Workflow engines}}')
    >>> (report.ingested, len(store))
    (1, 1)
    >>> [pub.key for pub in store.search("workflow*")]
    ['k1']
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        telemetry: Any = None,
        threadsafe: bool = False,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._telemetry = ensure(telemetry)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db: sqlite3.Connection | None = sqlite3.connect(
            str(self.path) if self.path is not None else ":memory:",
            check_same_thread=not threadsafe,
        )
        if self.path is not None:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA)
        row = self._db.execute(
            "SELECT v FROM meta WHERE k = 'schema_version'"
        ).fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta (k, v) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._db.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            raise CorpusStoreError(
                f"store at {self.path} has schema v{row[0]}, "
                f"this build expects v{SCHEMA_VERSION}"
            )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def db(self) -> sqlite3.Connection:
        """The live connection (raises once :meth:`close`\\ d)."""
        if self._db is None:
            raise CorpusStoreError("corpus store is closed")
        return self._db

    def close(self) -> None:
        """Commit and release the underlying connection (idempotent)."""
        if self._db is not None:
            self._db.commit()
            self._db.close()
            self._db = None

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- construction -----------------------------------------------------------

    def add(
        self, publication: Publication, *, on_collision: str = "error"
    ) -> str | None:
        """Register one record; returns the key stored under.

        Collision policies mirror :meth:`repro.corpus.corpus.Corpus.add`:
        ``"error"`` (default) raises
        :class:`~repro.errors.DuplicateEntityError`, ``"suffix"`` stores
        under ``key-2``/``key-3``..., ``"skip"`` returns ``None``.
        """
        key = self._resolve_key(publication.key, on_collision)
        if key is None:
            return None
        if key != publication.key:
            publication = replace(publication, key=key)
        self._insert(publication)
        self.db.commit()
        return key

    def extend(
        self,
        publications: Iterable[Publication],
        *,
        on_collision: str = "error",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> IngestReport:
        """Register many records with batched commits.

        *publications* may be any iterable — a generator streams through
        in O(*batch_size*) memory.  Postings rows are buffered across the
        whole batch and written with one ``executemany`` per commit —
        one statement-compilation and index update pass per ~thousands of
        rows instead of one per record (micro-benchmarked in
        ``benchmarks/test_bench_corpus_scale.py``).  Returns an
        :class:`IngestReport` (``rejected`` is always empty here;
        parse-level rejection lives in :meth:`ingest_bibtex`).
        """
        if batch_size < 1:
            raise CorpusStoreError(f"batch_size must be >= 1, got {batch_size}")
        tel = self._telemetry
        ingested = renamed = skipped = pending = 0
        db = self.db
        postings: list[tuple[str, int]] = []

        def flush() -> None:
            if postings:
                db.executemany(
                    "INSERT INTO postings (term, pub_id) VALUES (?, ?)",
                    postings,
                )
                postings.clear()

        with tel.tracer.span("corpus.ingest"):
            try:
                for publication in publications:
                    key = self._resolve_key(publication.key, on_collision)
                    if key is None:
                        skipped += 1
                        continue
                    if key != publication.key:
                        publication = replace(publication, key=key)
                        renamed += 1
                    pub_id = self._insert_pub(publication)
                    postings.extend(
                        (term, pub_id) for term in _index_terms(publication)
                    )
                    ingested += 1
                    pending += 1
                    if pending >= batch_size:
                        flush()
                        db.commit()
                        tel.metrics.counter("corpus.batches_committed").inc()
                        pending = 0
            except BaseException:
                db.rollback()
                raise
            flush()
            db.commit()
            if pending:
                tel.metrics.counter("corpus.batches_committed").inc()
        tel.metrics.counter("corpus.records_ingested").inc(ingested)
        return IngestReport(ingested=ingested, renamed=renamed, skipped=skipped)

    def ingest_bibtex(
        self,
        text: str,
        *,
        strict: bool = True,
        on_collision: str = "error",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> IngestReport:
        """Stream a BibTeX export into the store.

        Drives the generator-based parser, so entry objects never pile up
        in memory; commits every *batch_size* records.  With
        ``strict=False`` unusable entries are skipped and reported in
        :attr:`IngestReport.rejected` instead of aborting the import.
        """
        rejected: list[RejectedEntry] = []
        report = self.extend(
            iter_publications_from_bibtex(
                text, strict=strict, rejected=rejected
            ),
            on_collision=on_collision,
            batch_size=batch_size,
        )
        self._telemetry.metrics.counter("corpus.records_rejected").inc(
            len(rejected)
        )
        return replace(report, rejected=tuple(rejected))

    def _resolve_key(self, key: str, policy: str) -> str | None:
        """Collision-resolved storage key (None = skip this record)."""
        if policy not in COLLISION_POLICIES:
            raise CorpusError(
                f"unknown collision policy {policy!r}; pick one of "
                f"{', '.join(COLLISION_POLICIES)}"
            )
        if key not in self:
            return key
        if policy == "error":
            raise DuplicateEntityError(f"duplicate publication key {key!r}")
        if policy == "skip":
            return None
        n = 2
        while f"{key}-{n}" in self:
            n += 1
        return f"{key}-{n}"

    def _insert(self, publication: Publication) -> int:
        """Insert one record row plus its inverted-index postings."""
        pub_id = self._insert_pub(publication)
        self.db.executemany(
            "INSERT INTO postings (term, pub_id) VALUES (?, ?)",
            [(term, pub_id) for term in _index_terms(publication)],
        )
        return pub_id

    def _insert_pub(self, publication: Publication) -> int:
        """Insert just the record row; index postings are the caller's job.

        The batched ingest path buffers postings across many records and
        writes them with one ``executemany`` per commit.
        """
        cursor = self.db.execute(
            "INSERT INTO pubs (key, title, authors, year, venue, abstract,"
            " doi, url, keywords, kind, language)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                publication.key,
                publication.title,
                json.dumps(list(publication.authors)),
                publication.year,
                publication.venue,
                publication.abstract,
                publication.doi,
                publication.url,
                json.dumps(list(publication.keywords)),
                publication.kind,
                publication.language,
            ),
        )
        return cursor.lastrowid

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.db.execute("SELECT COUNT(*) FROM pubs").fetchone()[0]

    def __iter__(self) -> Iterator[Publication]:
        for row in self.db.execute(
            "SELECT key, title, authors, year, venue, abstract, doi, url,"
            " keywords, kind, language FROM pubs ORDER BY id"
        ):
            yield self._row_to_publication(row)

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, str):
            return False
        return (
            self.db.execute(
                "SELECT 1 FROM pubs WHERE key = ?", (key,)
            ).fetchone()
            is not None
        )

    def __getitem__(self, key: str) -> Publication:
        row = self.db.execute(
            "SELECT key, title, authors, year, venue, abstract, doi, url,"
            " keywords, kind, language FROM pubs WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            raise CorpusError(f"unknown publication {key!r}")
        return self._row_to_publication(row)

    @property
    def keys(self) -> tuple[str, ...]:
        """Record keys in insertion order (materialized — O(n))."""
        return tuple(
            key for (key,) in self.db.execute("SELECT key FROM pubs ORDER BY id")
        )

    @staticmethod
    def _row_to_publication(row: tuple) -> Publication:
        (key, title, authors, year, venue, abstract, doi, url,
         keywords, kind, language) = row
        return Publication(
            key=key,
            title=title,
            authors=tuple(json.loads(authors)),
            year=year,
            venue=venue,
            abstract=abstract,
            doi=doi,
            url=url,
            keywords=tuple(json.loads(keywords)),
            kind=kind,
            language=language,
        )

    # -- queries ---------------------------------------------------------------------

    def search(self, query: str | Query) -> list[Publication]:
        """Records matching a boolean *query*, in insertion order.

        Candidate ids are resolved from the inverted index by walking the
        query AST; only candidates are materialized and post-filtered
        with the compiled matcher, so results are identical to
        ``Query.filter`` over the same records without the full scan.  A
        query that cannot be bounded by the index (negation-rooted, or a
        phrase/term with no word characters) falls back to scanning.
        """
        compiled = Query(query) if isinstance(query, str) else query
        tel = self._telemetry
        with tel.tracer.span("corpus.search"):
            candidates = self._candidates(compiled.ast)
            if candidates is None:
                tel.metrics.counter("corpus.query_full_scans").inc()
                hits = [pub for pub in self if compiled.matches(pub)]
            else:
                tel.metrics.counter("corpus.query_candidates").inc(
                    len(candidates)
                )
                hits = [
                    pub
                    for pub in self._fetch_by_ids(sorted(candidates))
                    if compiled.matches(pub)
                ]
            tel.metrics.counter("corpus.query_hits").inc(len(hits))
        return hits

    def _fetch_by_ids(self, ids: list[int]) -> Iterator[Publication]:
        """Yield records for sorted row ids, preserving id order."""
        for start in range(0, len(ids), _IN_CHUNK):
            chunk = ids[start : start + _IN_CHUNK]
            placeholders = ",".join("?" * len(chunk))
            for row in self.db.execute(
                "SELECT key, title, authors, year, venue, abstract, doi,"
                " url, keywords, kind, language FROM pubs"
                f" WHERE id IN ({placeholders}) ORDER BY id",
                chunk,
            ):
                yield self._row_to_publication(row)

    def _term_ids(self, term: str) -> set[int]:
        """Row ids whose index contains *term* exactly."""
        return {
            pub_id
            for (pub_id,) in self.db.execute(
                "SELECT pub_id FROM postings WHERE term = ?", (term,)
            )
        }

    def _prefix_ids(self, prefix: str) -> set[int]:
        """Row ids whose index contains a term starting with *prefix*."""
        return {
            pub_id
            for (pub_id,) in self.db.execute(
                "SELECT pub_id FROM postings WHERE term >= ? AND term < ?",
                (prefix, prefix + chr(0x10FFFF)),
            )
        }

    def _candidates(self, node: QueryNode) -> set[int] | None:
        """Candidate row-id superset for an AST node (None = all rows).

        Soundness: every record the node's matcher accepts is in the
        returned set.  A term's ``\\w+`` chunks each appear as full
        tokens in any text the term regex matches (the regex requires
        the term's non-word characters — token delimiters — verbatim),
        so intersecting their postings can only over-approximate.
        Negations return the universe; the caller post-filters.
        """
        if isinstance(node, TermNode):
            chunks = _WORD_RE.findall(node.term)
            if not chunks:
                return None
            if node.prefix and node.term.endswith(chunks[-1]):
                sets = [self._term_ids(chunk) for chunk in chunks[:-1]]
                sets.append(self._prefix_ids(chunks[-1]))
            else:
                sets = [self._term_ids(chunk) for chunk in chunks]
            return set.intersection(*sets)
        if isinstance(node, PhraseNode):
            chunks = _WORD_RE.findall(node.phrase)
            if not chunks:
                return None
            return set.intersection(
                *(self._term_ids(chunk) for chunk in chunks)
            )
        if isinstance(node, NotNode):
            return None
        if isinstance(node, AndNode):
            bounded = [
                candidates
                for candidates in map(self._candidates, node.operands)
                if candidates is not None
            ]
            return set.intersection(*bounded) if bounded else None
        if isinstance(node, OrNode):
            union: set[int] = set()
            for operand in node.operands:
                candidates = self._candidates(operand)
                if candidates is None:
                    return None
                union |= candidates
            return union
        raise CorpusError(f"unknown query node {node!r}")  # pragma: no cover

    def by_year(self) -> FrequencyTable:
        """Publication counts per year over the full corpus range.

        Zero-publication gap years are kept, matching
        :meth:`repro.corpus.corpus.Corpus.by_year`.
        """
        first, last = self.year_range()
        counts = {year: 0 for year in range(first, last + 1)}
        for year, count in self.db.execute(
            "SELECT year, COUNT(*) FROM pubs WHERE year IS NOT NULL"
            " GROUP BY year"
        ):
            counts[year] = count
        return FrequencyTable(counts)

    def by_venue(
        self, normalizer: VenueNormalizer | None = None
    ) -> FrequencyTable:
        """Publication counts per (normalized) venue, most frequent first.

        Aggregation happens in SQL (``GROUP BY venue``), so only the
        distinct raw venue strings — not every publication row — cross
        into Python; the normalizer then folds raw spellings together.
        Identical to :meth:`repro.corpus.corpus.Corpus.by_venue` on the
        same records.
        """
        normalizer = normalizer or VenueNormalizer()
        counts: dict[str, int] = {}
        for venue, count in self.db.execute(
            "SELECT venue, COUNT(*) FROM pubs GROUP BY venue"
        ):
            name = normalizer.normalize(venue) or "(unknown)"
            counts[name] = counts.get(name, 0) + count
        if not counts:
            raise CorpusError("corpus store is empty")
        ordered = dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))
        return FrequencyTable(ordered)

    def year_range(self) -> tuple[int, int]:
        """(earliest, latest) publication year."""
        first, last = self.db.execute(
            "SELECT MIN(year), MAX(year) FROM pubs"
        ).fetchone()
        if first is None:
            raise CorpusError("no publication has a year")
        return first, last

    # -- deduplication ----------------------------------------------------------------

    def deduplicate(
        self,
        *,
        threshold: float = 0.75,
        containment_threshold: float = 0.9,
        shingle_size: int = 4,
        year_slack: int = 1,
    ) -> DedupSummary:
        """Merge near-duplicate clusters in place.

        The blocking, scoring, and merge policy are shared with
        :func:`repro.corpus.dedup.find_duplicates` /
        :func:`~repro.corpus.dedup.merge_cluster`, so the surviving
        records are bit-identical to ``Corpus.deduplicate`` on the same
        input — but candidate pairs stream out of a SQL join over
        temp shingle/block tables (disk-backed ``DISTINCT`` B-tree)
        instead of an all-pairs ``seen_pairs`` set, keeping Python-heap
        memory O(records), not O(pairs).
        """
        validate_dedup_params(threshold, containment_threshold, shingle_size)
        tel = self._telemetry
        db = self.db
        with tel.tracer.span("corpus.dedup"):
            if len(self) < 2:
                return DedupSummary()
            db.executescript(
                """
                DROP TABLE IF EXISTS temp.dedup_shingles;
                DROP TABLE IF EXISTS temp.dedup_blocks;
                CREATE TEMP TABLE dedup_shingles (
                    pub_id INTEGER NOT NULL,
                    shingle TEXT NOT NULL
                );
                """
            )
            batch: list[tuple[int, str]] = []
            for pub_id, title in db.execute(
                "SELECT id, title FROM pubs ORDER BY id"
            ).fetchall():
                batch.extend(
                    (pub_id, shingle)
                    for shingle in title_shingles(
                        normalize_title(title), shingle_size
                    )
                )
                if len(batch) >= 50_000:
                    db.executemany(
                        "INSERT INTO dedup_shingles (pub_id, shingle)"
                        " VALUES (?, ?)",
                        batch,
                    )
                    batch.clear()
            if batch:
                db.executemany(
                    "INSERT INTO dedup_shingles (pub_id, shingle)"
                    " VALUES (?, ?)",
                    batch,
                )
                batch.clear()
            db.executescript(
                f"""
                CREATE INDEX temp.idx_dedup_shingles_sh
                    ON dedup_shingles(shingle);
                CREATE TEMP TABLE dedup_blocks AS
                    SELECT pub_id, shingle FROM (
                        SELECT s.pub_id, s.shingle,
                               ROW_NUMBER() OVER (
                                   PARTITION BY s.pub_id
                                   ORDER BY f.c, s.shingle
                               ) AS rn
                        FROM dedup_shingles s
                        JOIN (
                            SELECT shingle, COUNT(*) AS c
                            FROM dedup_shingles GROUP BY shingle
                        ) f ON f.shingle = s.shingle
                    ) WHERE rn <= {BLOCKING_KEYS};
                CREATE INDEX temp.idx_dedup_blocks_sh
                    ON dedup_blocks(shingle);
                """
            )

            years: dict[int, int | None] = dict(
                db.execute("SELECT id, year FROM pubs")
            )
            ids = sorted(years)
            dense = {pub_id: i for i, pub_id in enumerate(ids)}
            union_find = _UnionFind(len(ids))

            # One sequential scan materializes every record's shingle set
            # — O(records) memory, like the in-memory path.  The savings
            # over `find_duplicates` is the O(pairs) `seen_pairs` set,
            # which lives in the SQL DISTINCT B-tree below instead.
            # Interning collapses the per-row str copies SQLite hands
            # back into one object per distinct shingle.
            interned: dict[str, str] = {}
            shingle_sets: dict[int, set[str]] = {}
            for pub_id, shingle in db.execute(
                "SELECT pub_id, shingle FROM dedup_shingles"
            ):
                shingle_sets.setdefault(pub_id, set()).add(
                    interned.setdefault(shingle, shingle)
                )
            interned.clear()

            pairs_scored = 0
            pair_cursor = db.execute(
                "SELECT DISTINCT min(s.pub_id, b.pub_id),"
                " max(s.pub_id, b.pub_id)"
                " FROM dedup_shingles s JOIN dedup_blocks b"
                " ON b.shingle = s.shingle AND s.pub_id != b.pub_id"
            )
            for left, right in pair_cursor:
                pairs_scored += 1
                if not years_compatible(years[left], years[right], year_slack):
                    continue
                jaccard, containment = pair_similarity(
                    shingle_sets[left], shingle_sets[right]
                )
                if jaccard >= threshold or containment >= containment_threshold:
                    union_find.union(dense[left], dense[right])
            tel.metrics.counter("corpus.dedup_pairs_scored").inc(pairs_scored)
            shingle_sets.clear()

            clusters: dict[int, list[int]] = {}
            for pub_id in ids:
                clusters.setdefault(
                    union_find.find(dense[pub_id]), []
                ).append(pub_id)
            duplicate_clusters = [
                members
                for members in clusters.values()
                if len(members) >= 2
            ]

            dropped = 0
            try:
                for members in duplicate_clusters:
                    merged = merge_cluster(
                        tuple(self._fetch_by_ids(members))
                    )
                    head = members[0]
                    tail = members[1:]
                    placeholders = ",".join("?" * len(tail))
                    db.execute(
                        f"DELETE FROM pubs WHERE id IN ({placeholders})", tail
                    )
                    all_members = ",".join("?" * len(members))
                    db.execute(
                        f"DELETE FROM postings WHERE pub_id IN ({all_members})",
                        members,
                    )
                    db.execute(
                        "UPDATE pubs SET key = ?, title = ?, authors = ?,"
                        " year = ?, venue = ?, abstract = ?, doi = ?,"
                        " url = ?, keywords = ?, kind = ?, language = ?"
                        " WHERE id = ?",
                        (
                            merged.key,
                            merged.title,
                            json.dumps(list(merged.authors)),
                            merged.year,
                            merged.venue,
                            merged.abstract,
                            merged.doi,
                            merged.url,
                            json.dumps(list(merged.keywords)),
                            merged.kind,
                            merged.language,
                            head,
                        ),
                    )
                    db.executemany(
                        "INSERT INTO postings (term, pub_id) VALUES (?, ?)",
                        [(term, head) for term in _index_terms(merged)],
                    )
                    dropped += len(tail)
            except BaseException:
                db.rollback()
                raise
            db.commit()
            db.executescript(
                "DROP TABLE IF EXISTS temp.dedup_shingles;"
                "DROP TABLE IF EXISTS temp.dedup_blocks;"
            )
            tel.metrics.counter("corpus.dedup_clusters").inc(
                len(duplicate_clusters)
            )
            tel.metrics.counter("corpus.dedup_dropped").inc(dropped)
        return DedupSummary(
            clusters=len(duplicate_clusters),
            dropped=dropped,
            pairs_scored=pairs_scored,
        )

    # -- serialization -------------------------------------------------------------------

    def to_bibtex(self) -> str:
        """Serialize the whole store to BibTeX (streaming iteration)."""
        return to_bibtex(self)

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Store size snapshot: records, index size, year span, location."""
        db = self.db
        records = len(self)
        postings, terms = db.execute(
            "SELECT COUNT(*), COUNT(DISTINCT term) FROM postings"
        ).fetchone()
        first, last = db.execute(
            "SELECT MIN(year), MAX(year) FROM pubs"
        ).fetchone()
        return {
            "records": records,
            "postings": postings,
            "terms": terms,
            "year_range": None if first is None else (first, last),
            "path": str(self.path) if self.path is not None else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.path if self.path is not None else ":memory:"
        return f"CorpusStore({len(self)} publications at {where})"
