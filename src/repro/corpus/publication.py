"""Bibliographic records.

:class:`Publication` is the primary-study unit an SMS pipeline harvests,
screens, and classifies.  It is intentionally tolerant about metadata
completeness (real exports are messy) while validating what is present.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["Publication", "normalize_title", "make_pub_key"]

_WS_RE = re.compile(r"\s+")
_NONALNUM_RE = re.compile(r"[^a-z0-9 ]+")


def normalize_title(title: str) -> str:
    """Canonical form of a title for matching: lowercase, alphanumeric, single spaces.

    >>> normalize_title("StreamFlow: Cross-Breeding  Cloud with HPC!")
    'streamflow cross breeding cloud with hpc'
    """
    text = _NONALNUM_RE.sub(" ", title.lower().replace("-", " "))
    return _WS_RE.sub(" ", text).strip()


def make_pub_key(first_author: str, year: int | None, title: str) -> str:
    """Derive a citation-like key, e.g. ``"colonnelli2021streamflow"``."""
    surname = (first_author.split(",")[0].split() or ["anon"])[-1].lower()
    surname = re.sub(r"[^a-z]", "", surname) or "anon"
    first_word = next(
        (w for w in normalize_title(title).split() if len(w) > 2), "untitled"
    )
    return f"{surname}{year or '0000'}{first_word}"


@dataclass(frozen=True, slots=True)
class Publication:
    """One bibliographic record.

    Parameters
    ----------
    key:
        Citation key (unique within a corpus).
    title:
        Full title (required).
    authors:
        Author names, each ``"Surname, Given"`` or free-form.
    year:
        Publication year, when known.
    venue:
        Journal/conference/venue string.
    abstract:
        Abstract text, when available.
    doi, url:
        Identifiers.
    keywords:
        Author- or indexer-supplied keywords.
    kind:
        BibTeX-ish entry type (``article``, ``inproceedings``, ...).
    language:
        Publication language, when known.
    """

    key: str
    title: str
    authors: tuple[str, ...] = ()
    year: int | None = None
    venue: str = ""
    abstract: str = ""
    doi: str = ""
    url: str = ""
    keywords: tuple[str, ...] = ()
    kind: str = "misc"
    language: str | None = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("publication key must be non-empty")
        if not self.title or not self.title.strip():
            raise ValidationError(f"publication {self.key!r} needs a title")
        if self.year is not None and not 1900 <= self.year <= 2100:
            raise ValidationError(
                f"publication {self.key!r}: implausible year {self.year}"
            )
        object.__setattr__(self, "authors", tuple(self.authors))
        object.__setattr__(self, "keywords", tuple(self.keywords))

    @property
    def first_author(self) -> str:
        """First author name, or ``""`` when unknown."""
        return self.authors[0] if self.authors else ""

    @property
    def normalized_title(self) -> str:
        """Matching-canonical title (see :func:`normalize_title`)."""
        return normalize_title(self.title)

    def searchable_text(self) -> str:
        """Concatenated text fields for query matching and screening."""
        return " ".join(
            part
            for part in (
                self.title,
                self.abstract,
                " ".join(self.keywords),
                self.venue,
            )
            if part
        )

    def cite(self) -> str:
        """A short human-readable citation line."""
        author = self.first_author or "Unknown"
        surname = author.split(",")[0].strip()
        etal = " et al." if len(self.authors) > 1 else ""
        year = f" ({self.year})" if self.year else ""
        return f"{surname}{etal}{year}. {self.title}."
