"""Boolean search queries over a corpus.

Database searches are the entry point of an SMS ("(workflow OR pipeline)
AND (HPC OR cloud) AND NOT survey").  This module implements a small query
language with a recursive-descent parser, an explicit AST, and an
evaluator over :class:`~repro.corpus.publication.Publication` text:

Grammar::

    expr    := or
    or      := and ("OR" and)*
    and     := not ("AND" not)*      # juxtaposition also means AND
    not     := "NOT" not | atom
    atom    := "(" expr ")" | '"phrase"' | term

Terms match whole words case-insensitively; quoted phrases match
contiguously; ``term*`` performs prefix matching.

The parser builds an AST (:class:`TermNode`, :class:`PhraseNode`,
:class:`AndNode`, :class:`OrNode`, :class:`NotNode`) that a
:class:`Query` compiles into matcher closures.  Keeping the AST around —
rather than compiling straight to closures — is what lets the persistent
store (:mod:`repro.corpus.store`) plan candidate sets from its inverted
term index instead of scanning every record.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Union

from repro.errors import QueryError

__all__ = [
    "Query",
    "parse_query",
    "QueryNode",
    "TermNode",
    "PhraseNode",
    "AndNode",
    "OrNode",
    "NotNode",
]

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<phrase>"[^"]*") |
        (?P<word>[\w*+.-]+)
    )""",
    re.VERBOSE,
)

Matcher = Callable[[str], bool]


def _tokenize_query(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize query near {remainder[:20]!r}")
        pos = match.end()
        for group in ("lparen", "rparen", "phrase", "word"):
            value = match.group(group)
            if value is not None:
                tokens.append(value)
                break
    return tokens


# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TermNode:
    """A single search term, optionally a ``term*`` prefix wildcard.

    Attributes
    ----------
    term:
        The lowercased term text (without the trailing ``*``).
    prefix:
        True for ``term*`` prefix matching.
    """

    term: str
    prefix: bool = False


@dataclass(frozen=True, slots=True)
class PhraseNode:
    """A quoted phrase that must match contiguously (lowercased)."""

    phrase: str


@dataclass(frozen=True, slots=True)
class NotNode:
    """Negation of one operand."""

    operand: "QueryNode"


@dataclass(frozen=True, slots=True)
class AndNode:
    """Conjunction of two or more operands."""

    operands: tuple["QueryNode", ...]


@dataclass(frozen=True, slots=True)
class OrNode:
    """Disjunction of two or more operands."""

    operands: tuple["QueryNode", ...]


QueryNode = Union[TermNode, PhraseNode, NotNode, AndNode, OrNode]


# -- parsing -----------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def parse(self) -> QueryNode:
        node = self.parse_or()
        if self.peek() is not None:
            raise QueryError(f"unexpected token {self.peek()!r}")
        return node

    def parse_or(self) -> QueryNode:
        parts = [self.parse_and()]
        while self.peek() is not None and self.peek().upper() == "OR":
            self.advance()
            parts.append(self.parse_and())
        if len(parts) == 1:
            return parts[0]
        return OrNode(tuple(parts))

    def parse_and(self) -> QueryNode:
        parts = [self.parse_not()]
        while True:
            token = self.peek()
            if token is None or token == ")" or token.upper() == "OR":
                break
            if token.upper() == "AND":
                self.advance()
            parts.append(self.parse_not())
        if len(parts) == 1:
            return parts[0]
        return AndNode(tuple(parts))

    def parse_not(self) -> QueryNode:
        token = self.peek()
        if token is not None and token.upper() == "NOT":
            self.advance()
            return NotNode(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> QueryNode:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token == "(":
            self.advance()
            inner = self.parse_or()
            if self.peek() != ")":
                raise QueryError("missing closing parenthesis")
            self.advance()
            return inner
        if token == ")":
            raise QueryError("unexpected ')'")
        self.advance()
        if token.startswith('"'):
            phrase = token[1:-1].strip().lower()
            if not phrase:
                raise QueryError("empty phrase")
            return PhraseNode(phrase)
        if token.upper() in ("AND", "OR", "NOT"):
            raise QueryError(f"operator {token!r} used as a term")
        term = token.lower()
        if term.endswith("*"):
            prefix = term[:-1]
            if not prefix:
                raise QueryError("bare '*' is not a valid term")
            return TermNode(prefix, prefix=True)
        return TermNode(term)


# -- compilation -------------------------------------------------------------


def _compile(node: QueryNode) -> Matcher:
    """Compile an AST node into a matcher closure over lowercased text."""
    if isinstance(node, PhraseNode):
        pattern = re.compile(
            r"\b" + re.escape(node.phrase).replace(r"\ ", r"\s+") + r"\b"
        )
        return lambda text: bool(pattern.search(text))
    if isinstance(node, TermNode):
        if node.prefix:
            pattern = re.compile(r"\b" + re.escape(node.term) + r"\w*")
        else:
            pattern = re.compile(r"\b" + re.escape(node.term) + r"\b")
        return lambda text: bool(pattern.search(text))
    if isinstance(node, NotNode):
        inner = _compile(node.operand)
        return lambda text: not inner(text)
    if isinstance(node, AndNode):
        parts = [_compile(part) for part in node.operands]
        return lambda text: all(part(text) for part in parts)
    if isinstance(node, OrNode):
        parts = [_compile(part) for part in node.operands]
        return lambda text: any(part(text) for part in parts)
    raise QueryError(f"unknown query node {node!r}")  # pragma: no cover


class Query:
    """A compiled boolean search query.

    >>> q = Query('(workflow OR pipeline) AND NOT survey')
    >>> q.matches_text("A workflow management system")
    True
    >>> q.matches_text("A survey of workflow systems")
    False

    Attributes
    ----------
    source:
        The original query text.
    ast:
        The parsed :data:`QueryNode` tree — index-aware evaluators
        (:meth:`repro.corpus.store.CorpusStore.search`) walk it to
        resolve candidate sets without a full scan.
    """

    def __init__(self, source: str) -> None:
        if not source or not source.strip():
            raise QueryError("query must be non-empty")
        self.source = source
        tokens = _tokenize_query(source)
        if not tokens:
            raise QueryError("query has no terms")
        self.ast: QueryNode = _Parser(tokens).parse()
        self._matcher = _compile(self.ast)

    def matches_text(self, text: str) -> bool:
        """Whether the query matches a raw text."""
        return self._matcher(text.lower())

    def matches(self, publication) -> bool:
        """Whether the query matches a publication's searchable text."""
        return self.matches_text(publication.searchable_text())

    def filter(self, publications: Iterable) -> list:
        """Publications matching the query, preserving input order."""
        return [pub for pub in publications if self.matches(pub)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({self.source!r})"


def parse_query(source: str) -> Query:
    """Compile *source* into a :class:`Query` (alias constructor)."""
    return Query(source)
