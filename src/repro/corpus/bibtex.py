"""BibTeX parser and writer, from scratch.

Supports the subset of BibTeX that bibliographic exports actually use:

* ``@type{key, field = value, ...}`` entries with brace- or quote-delimited
  values (nested braces handled) and bare numbers;
* ``@string{name = "..."}`` macro definitions and macro references;
* value concatenation with ``#``;
* ``@comment`` blocks and free text between entries (ignored);
* case-insensitive entry types and field names.

The parser is a hand-written recursive-descent scanner that tracks line
numbers for error reporting (:class:`~repro.errors.BibTeXError`).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.corpus.publication import Publication, make_pub_key
from repro.errors import BibTeXError, ValidationError

__all__ = [
    "RejectedEntry",
    "iter_publications_from_bibtex",
    "make_key_if_missing",
    "parse_bibtex",
    "publications_from_bibtex",
    "to_bibtex",
]

_MONTHS = {
    "jan": "January", "feb": "February", "mar": "March", "apr": "April",
    "may": "May", "jun": "June", "jul": "July", "aug": "August",
    "sep": "September", "oct": "October", "nov": "November", "dec": "December",
}


#: Bulk-scan fast paths: an ASCII identifier run, a whitespace run, and
#: the "plain" (non-structural) character runs inside braced/quoted
#: values.  One regex match replaces a per-character Python loop, which
#: is what makes million-record exports parse at disk speed.
_NAME_CHUNK_RE = re.compile(r"[0-9A-Za-z\-_:./+']+")
_WS_RE = re.compile(r"\s+")
_BRACED_PLAIN_RE = re.compile(r"[^{}\\]+")
_QUOTED_PLAIN_RE = re.compile(r'[^{}"\\]+')


class _Scanner:
    """Character scanner with regex bulk fast paths and line tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    @property
    def line(self) -> int:
        """1-based line of the current position.

        Computed on demand (errors are rare) so the hot scanning paths
        never pay per-character line bookkeeping.
        """
        return self.text.count("\n", 0, self.pos) + 1

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def skip_whitespace(self) -> None:
        # Regex \s and str.isspace() disagree on a few exotic characters;
        # the per-char fallback keeps the historical isspace semantics.
        while True:
            match = _WS_RE.match(self.text, self.pos)
            if match:
                self.pos = match.end()
            if self.pos < len(self.text) and self.text[self.pos].isspace():
                self.pos += 1
                continue
            break

    def expect(self, ch: str) -> None:
        self.skip_whitespace()
        if self.eof() or self.peek() != ch:
            found = self.peek() or "end of input"
            raise BibTeXError(f"expected {ch!r}, found {found!r}", self.line)
        self.advance()

    def read_name(self) -> str:
        """An identifier: entry type, citation key, field name, or macro."""
        self.skip_whitespace()
        start = self.pos
        # ASCII runs go through the regex; the isalnum fallback keeps
        # accepting the non-ASCII alphanumerics the char loop accepted.
        while True:
            match = _NAME_CHUNK_RE.match(self.text, self.pos)
            if match:
                self.pos = match.end()
            if self.pos < len(self.text) and self.text[self.pos].isalnum():
                self.pos += 1
                continue
            break
        if start == self.pos:
            raise BibTeXError(
                f"expected a name, found {self.peek()!r}", self.line
            )
        return self.text[start : self.pos]

    def read_braced(self) -> str:
        """Read a {...} group (opening brace already consumed is NOT assumed)."""
        self.expect("{")
        depth = 1
        out: list[str] = []
        text = self.text
        while True:
            match = _BRACED_PLAIN_RE.match(text, self.pos)
            if match:
                out.append(match.group())
                self.pos = match.end()
            if self.pos >= len(text):
                raise BibTeXError("unterminated brace group", self.line)
            ch = text[self.pos]
            self.pos += 1
            if ch == "\\":
                out.append(ch)
                if self.pos < len(text):
                    out.append(text[self.pos])
                    self.pos += 1
                continue
            if ch == "{":
                depth += 1
                out.append(ch)
            else:  # "}"
                depth -= 1
                if depth == 0:
                    return "".join(out)
                out.append(ch)

    def read_quoted(self) -> str:
        self.expect('"')
        out: list[str] = []
        depth = 0
        text = self.text
        while True:
            match = _QUOTED_PLAIN_RE.match(text, self.pos)
            if match:
                out.append(match.group())
                self.pos = match.end()
            if self.pos >= len(text):
                raise BibTeXError("unterminated quoted value", self.line)
            ch = text[self.pos]
            self.pos += 1
            if ch == "\\":
                out.append(ch)
                if self.pos < len(text):
                    out.append(text[self.pos])
                    self.pos += 1
                continue
            if ch == "{":
                depth += 1
                out.append(ch)
            elif ch == "}":
                if depth == 0:
                    raise BibTeXError(
                        "unbalanced brace in quoted value", self.line
                    )
                depth -= 1
                out.append(ch)
            else:  # '"'
                if depth == 0:
                    return "".join(out)
                out.append(ch)


def _clean_value(raw: str) -> str:
    """Strip protective braces, collapse whitespace, drop TeX escapes."""
    text = raw.replace("{", "").replace("}", "")
    text = text.replace("\\&", "&").replace("\\%", "%").replace("\\_", "_")
    text = text.replace("~", " ").replace("\\'", "").replace('\\"', "")
    return " ".join(text.split())


def _read_value(scanner: _Scanner, macros: dict[str, str]) -> str:
    """One field value: concatenated pieces joined by ``#``."""
    parts: list[str] = []
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch == "{":
            parts.append(scanner.read_braced())
        elif ch == '"':
            parts.append(scanner.read_quoted())
        elif ch.isdigit():
            start = scanner.pos
            while not scanner.eof() and scanner.peek().isdigit():
                scanner.advance()
            parts.append(scanner.text[start : scanner.pos])
        elif ch.isalpha():
            name = scanner.read_name()
            lowered = name.lower()
            if lowered in macros:
                parts.append(macros[lowered])
            elif lowered in _MONTHS:
                parts.append(_MONTHS[lowered])
            else:
                raise BibTeXError(f"undefined macro {name!r}", scanner.line)
        else:
            raise BibTeXError(
                f"expected a value, found {ch or 'end of input'!r}", scanner.line
            )
        scanner.skip_whitespace()
        if scanner.peek() == "#":
            scanner.advance()
            continue
        return "".join(parts)


def parse_bibtex(text: str) -> Iterator[dict[str, str]]:
    """Parse BibTeX source, yielding entry dicts one at a time.

    Each dict carries the special keys ``"__type__"`` (lowercase entry type)
    and ``"__key__"`` (citation key, possibly empty — see
    :func:`make_key_if_missing`), plus lowercase field names mapping to
    cleaned values.

    This is a generator: a million-record export streams through in
    O(one entry) memory, so ingestion cost is bounded by the consumer's
    batch size, not the corpus size.  Wrap in ``list()`` to materialize.

    Raises
    ------
    BibTeXError
        On malformed input, with the offending line number (raised lazily,
        at the point the generator reaches the bad entry).
    """
    scanner = _Scanner(text)
    macros: dict[str, str] = {}
    while True:
        # Skip free text until the next '@'.
        at = text.find("@", scanner.pos)
        scanner.pos = at if at != -1 else len(text)
        if scanner.eof():
            return
        scanner.advance()  # consume '@'
        entry_type = scanner.read_name().lower()
        if entry_type == "comment":
            scanner.skip_whitespace()
            if scanner.peek() == "{":
                scanner.read_braced()
            continue
        if entry_type == "preamble":
            scanner.skip_whitespace()
            if scanner.peek() == "{":
                scanner.read_braced()
            continue
        scanner.expect("{")
        if entry_type == "string":
            name = scanner.read_name().lower()
            scanner.expect("=")
            macros[name] = _clean_value(_read_value(scanner, macros))
            scanner.expect("}")
            continue

        # Tolerate a blank citation key (`@article{, title = ...}`) —
        # real multi-database exports produce them; the consumer derives
        # one via make_key_if_missing.
        scanner.skip_whitespace()
        key = "" if scanner.peek() in (",", "}") else scanner.read_name()
        entry: dict[str, str] = {"__type__": entry_type, "__key__": key}
        while True:
            scanner.skip_whitespace()
            if scanner.peek() == ",":
                scanner.advance()
                scanner.skip_whitespace()
            if scanner.peek() == "}":
                scanner.advance()
                break
            if scanner.eof():
                raise BibTeXError(f"unterminated entry {key!r}", scanner.line)
            field = scanner.read_name().lower()
            scanner.expect("=")
            entry[field] = _clean_value(_read_value(scanner, macros))
        yield entry


def _split_authors(field: str) -> tuple[str, ...]:
    return tuple(
        author.strip()
        for author in field.replace("\n", " ").split(" and ")
        if author.strip()
    )


def _ascii_year(raw: str) -> int | None:
    """Parse a year field, accepting ASCII digits only.

    ``str.isdigit`` is True for unicode digits like ``"²⁰²⁰"`` that
    ``int()`` then refuses — one exotic record must not abort a
    million-record ingestion, so the guard requires ASCII digits.
    """
    text = raw.strip()
    if text.isascii() and text.isdigit():
        return int(text)
    return None


@dataclass(frozen=True, slots=True)
class RejectedEntry:
    """One BibTeX entry skipped by non-strict ingestion.

    Attributes
    ----------
    key:
        The entry's citation key (possibly empty).
    reason:
        Why the record was rejected (no title, implausible year, ...).
    """

    key: str
    reason: str


def _publication_from_entry(entry: dict[str, str]) -> Publication:
    """Build one :class:`Publication` from a parsed entry dict."""
    title = entry.get("title", "")
    if not title:
        raise BibTeXError(f"entry {entry['__key__']!r} has no title")
    venue = (
        entry.get("journal")
        or entry.get("booktitle")
        or entry.get("howpublished")
        or entry.get("publisher")
        or ""
    )
    keywords = tuple(
        k.strip()
        for k in entry.get("keywords", "").replace(";", ",").split(",")
        if k.strip()
    )
    return Publication(
        key=make_key_if_missing(entry),
        title=title,
        authors=_split_authors(entry.get("author", "")),
        year=_ascii_year(entry.get("year", "")),
        venue=venue,
        abstract=entry.get("abstract", ""),
        doi=entry.get("doi", ""),
        url=entry.get("url", ""),
        keywords=keywords,
        kind=entry["__type__"],
        language=entry.get("language") or None,
    )


def iter_publications_from_bibtex(
    text: str,
    *,
    strict: bool = True,
    rejected: list[RejectedEntry] | None = None,
) -> Iterator[Publication]:
    """Parse BibTeX and stream :class:`Publication` records.

    Entries without a parsable (ASCII-digit) year keep ``year=None``;
    entries with a blank citation key get one derived via
    :func:`make_key_if_missing`.

    Parameters
    ----------
    strict:
        With the default True, an unusable entry (no title, implausible
        year) raises immediately.  With ``strict=False`` the bad entry is
        skipped and ingestion continues — one broken record must not kill
        a million-record import.
    rejected:
        With ``strict=False``, an optional list that collects one
        :class:`RejectedEntry` (key + reason) per skipped entry, so the
        caller can report what was dropped.
    """
    for entry in parse_bibtex(text):
        try:
            yield _publication_from_entry(entry)
        except (BibTeXError, ValidationError) as exc:
            if strict:
                raise
            if rejected is not None:
                rejected.append(
                    RejectedEntry(key=entry.get("__key__", ""), reason=str(exc))
                )


def publications_from_bibtex(
    text: str,
    *,
    strict: bool = True,
    rejected: list[RejectedEntry] | None = None,
) -> list[Publication]:
    """Parse BibTeX and build :class:`Publication` records (as a list).

    A materializing wrapper over :func:`iter_publications_from_bibtex`;
    see there for the ``strict``/``rejected`` skip-and-collect contract.
    """
    return list(
        iter_publications_from_bibtex(text, strict=strict, rejected=rejected)
    )


def to_bibtex(publications: Iterable[Publication]) -> str:
    """Serialize publications back to BibTeX (round-trippable subset)."""
    chunks: list[str] = []
    for pub in publications:
        fields: list[tuple[str, str]] = [("title", pub.title)]
        if pub.authors:
            fields.append(("author", " and ".join(pub.authors)))
        if pub.year is not None:
            fields.append(("year", str(pub.year)))
        if pub.venue:
            field_name = "journal" if pub.kind == "article" else "booktitle"
            if pub.kind in ("misc", "techreport", "book"):
                field_name = "howpublished"
            fields.append((field_name, pub.venue))
        if pub.abstract:
            fields.append(("abstract", pub.abstract))
        if pub.doi:
            fields.append(("doi", pub.doi))
        if pub.url:
            fields.append(("url", pub.url))
        if pub.keywords:
            fields.append(("keywords", ", ".join(pub.keywords)))
        if pub.language:
            fields.append(("language", pub.language))
        body = ",\n".join(f"  {name} = {{{value}}}" for name, value in fields)
        chunks.append(f"@{pub.kind}{{{pub.key},\n{body}\n}}")
    return "\n\n".join(chunks) + ("\n" if chunks else "")


def make_key_if_missing(entry: dict[str, str]) -> str:
    """Citation key for an entry, deriving one when absent/blank.

    The derived key is ``<surname><year><first-title-word>`` via
    :func:`~repro.corpus.publication.make_pub_key`; the year parse uses
    the same ASCII-digit guard as ingestion (a unicode-digit year falls
    back to the ``0000`` placeholder instead of crashing).
    """
    key = entry.get("__key__", "").strip()
    if key:
        return key
    authors = _split_authors(entry.get("author", ""))
    year = _ascii_year(entry.get("year", ""))
    return make_pub_key(
        authors[0] if authors else "anon", year, entry.get("title", "")
    )
