"""BibTeX parser and writer, from scratch.

Supports the subset of BibTeX that bibliographic exports actually use:

* ``@type{key, field = value, ...}`` entries with brace- or quote-delimited
  values (nested braces handled) and bare numbers;
* ``@string{name = "..."}`` macro definitions and macro references;
* value concatenation with ``#``;
* ``@comment`` blocks and free text between entries (ignored);
* case-insensitive entry types and field names.

The parser is a hand-written recursive-descent scanner that tracks line
numbers for error reporting (:class:`~repro.errors.BibTeXError`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.corpus.publication import Publication, make_pub_key
from repro.errors import BibTeXError

__all__ = ["parse_bibtex", "publications_from_bibtex", "to_bibtex"]

_MONTHS = {
    "jan": "January", "feb": "February", "mar": "March", "apr": "April",
    "may": "May", "jun": "June", "jul": "July", "aug": "August",
    "sep": "September", "oct": "October", "nov": "November", "dec": "December",
}


class _Scanner:
    """Character scanner with line tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if not self.eof() else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
        return ch

    def skip_whitespace(self) -> None:
        while not self.eof() and self.peek().isspace():
            self.advance()

    def expect(self, ch: str) -> None:
        self.skip_whitespace()
        if self.eof() or self.peek() != ch:
            found = self.peek() or "end of input"
            raise BibTeXError(f"expected {ch!r}, found {found!r}", self.line)
        self.advance()

    def read_name(self) -> str:
        """An identifier: entry type, citation key, field name, or macro."""
        self.skip_whitespace()
        start = self.pos
        while not self.eof() and (
            self.peek().isalnum() or self.peek() in "-_:./+'"
        ):
            self.advance()
        if start == self.pos:
            raise BibTeXError(
                f"expected a name, found {self.peek()!r}", self.line
            )
        return self.text[start : self.pos]

    def read_braced(self) -> str:
        """Read a {...} group (opening brace already consumed is NOT assumed)."""
        self.expect("{")
        depth = 1
        out: list[str] = []
        while depth:
            if self.eof():
                raise BibTeXError("unterminated brace group", self.line)
            ch = self.advance()
            if ch == "\\" and not self.eof():
                out.append(ch)
                out.append(self.advance())
                continue
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    break
            out.append(ch)
        return "".join(out)

    def read_quoted(self) -> str:
        self.expect('"')
        out: list[str] = []
        depth = 0
        while True:
            if self.eof():
                raise BibTeXError("unterminated quoted value", self.line)
            ch = self.advance()
            if ch == "\\" and not self.eof():
                out.append(ch)
                out.append(self.advance())
                continue
            if ch == "{":
                depth += 1
            elif ch == "}":
                if depth == 0:
                    raise BibTeXError("unbalanced brace in quoted value", self.line)
                depth -= 1
            elif ch == '"' and depth == 0:
                break
            out.append(ch)
        return "".join(out)


def _clean_value(raw: str) -> str:
    """Strip protective braces, collapse whitespace, drop TeX escapes."""
    text = raw.replace("{", "").replace("}", "")
    text = text.replace("\\&", "&").replace("\\%", "%").replace("\\_", "_")
    text = text.replace("~", " ").replace("\\'", "").replace('\\"', "")
    return " ".join(text.split())


def _read_value(scanner: _Scanner, macros: dict[str, str]) -> str:
    """One field value: concatenated pieces joined by ``#``."""
    parts: list[str] = []
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch == "{":
            parts.append(scanner.read_braced())
        elif ch == '"':
            parts.append(scanner.read_quoted())
        elif ch.isdigit():
            start = scanner.pos
            while not scanner.eof() and scanner.peek().isdigit():
                scanner.advance()
            parts.append(scanner.text[start : scanner.pos])
        elif ch.isalpha():
            name = scanner.read_name()
            lowered = name.lower()
            if lowered in macros:
                parts.append(macros[lowered])
            elif lowered in _MONTHS:
                parts.append(_MONTHS[lowered])
            else:
                raise BibTeXError(f"undefined macro {name!r}", scanner.line)
        else:
            raise BibTeXError(
                f"expected a value, found {ch or 'end of input'!r}", scanner.line
            )
        scanner.skip_whitespace()
        if scanner.peek() == "#":
            scanner.advance()
            continue
        return "".join(parts)


def parse_bibtex(text: str) -> list[dict[str, str]]:
    """Parse BibTeX source into entry dicts.

    Each dict carries the special keys ``"__type__"`` (lowercase entry type)
    and ``"__key__"`` (citation key), plus lowercase field names mapping to
    cleaned values.

    Raises
    ------
    BibTeXError
        On malformed input, with the offending line number.
    """
    scanner = _Scanner(text)
    macros: dict[str, str] = {}
    entries: list[dict[str, str]] = []
    while True:
        # Skip free text until the next '@'.
        while not scanner.eof() and scanner.peek() != "@":
            scanner.advance()
        if scanner.eof():
            return entries
        scanner.advance()  # consume '@'
        entry_type = scanner.read_name().lower()
        if entry_type == "comment":
            scanner.skip_whitespace()
            if scanner.peek() == "{":
                scanner.read_braced()
            continue
        if entry_type == "preamble":
            scanner.skip_whitespace()
            if scanner.peek() == "{":
                scanner.read_braced()
            continue
        scanner.expect("{")
        if entry_type == "string":
            name = scanner.read_name().lower()
            scanner.expect("=")
            macros[name] = _clean_value(_read_value(scanner, macros))
            scanner.expect("}")
            continue

        key = scanner.read_name()
        entry: dict[str, str] = {"__type__": entry_type, "__key__": key}
        while True:
            scanner.skip_whitespace()
            if scanner.peek() == ",":
                scanner.advance()
                scanner.skip_whitespace()
            if scanner.peek() == "}":
                scanner.advance()
                break
            if scanner.eof():
                raise BibTeXError(f"unterminated entry {key!r}", scanner.line)
            field = scanner.read_name().lower()
            scanner.expect("=")
            entry[field] = _clean_value(_read_value(scanner, macros))
        entries.append(entry)


def _split_authors(field: str) -> tuple[str, ...]:
    return tuple(
        author.strip()
        for author in field.replace("\n", " ").split(" and ")
        if author.strip()
    )


def publications_from_bibtex(text: str) -> list[Publication]:
    """Parse BibTeX and build :class:`Publication` records.

    Entries without a parsable year keep ``year=None``; entries without a
    title are rejected (a mapping study cannot screen a titleless record).
    """
    publications = []
    for entry in parse_bibtex(text):
        title = entry.get("title", "")
        if not title:
            raise BibTeXError(f"entry {entry['__key__']!r} has no title")
        year: int | None = None
        raw_year = entry.get("year", "")
        if raw_year.strip().isdigit():
            year = int(raw_year)
        venue = (
            entry.get("journal")
            or entry.get("booktitle")
            or entry.get("howpublished")
            or entry.get("publisher")
            or ""
        )
        keywords = tuple(
            k.strip()
            for k in entry.get("keywords", "").replace(";", ",").split(",")
            if k.strip()
        )
        publications.append(
            Publication(
                key=entry["__key__"],
                title=title,
                authors=_split_authors(entry.get("author", "")),
                year=year,
                venue=venue,
                abstract=entry.get("abstract", ""),
                doi=entry.get("doi", ""),
                url=entry.get("url", ""),
                keywords=keywords,
                kind=entry["__type__"],
                language=entry.get("language") or None,
            )
        )
    return publications


def to_bibtex(publications: Iterable[Publication]) -> str:
    """Serialize publications back to BibTeX (round-trippable subset)."""
    chunks: list[str] = []
    for pub in publications:
        fields: list[tuple[str, str]] = [("title", pub.title)]
        if pub.authors:
            fields.append(("author", " and ".join(pub.authors)))
        if pub.year is not None:
            fields.append(("year", str(pub.year)))
        if pub.venue:
            field_name = "journal" if pub.kind == "article" else "booktitle"
            if pub.kind in ("misc", "techreport", "book"):
                field_name = "howpublished"
            fields.append((field_name, pub.venue))
        if pub.abstract:
            fields.append(("abstract", pub.abstract))
        if pub.doi:
            fields.append(("doi", pub.doi))
        if pub.url:
            fields.append(("url", pub.url))
        if pub.keywords:
            fields.append(("keywords", ", ".join(pub.keywords)))
        if pub.language:
            fields.append(("language", pub.language))
        body = ",\n".join(f"  {name} = {{{value}}}" for name, value in fields)
        chunks.append(f"@{pub.kind}{{{pub.key},\n{body}\n}}")
    return "\n\n".join(chunks) + ("\n" if chunks else "")


def make_key_if_missing(entry: dict[str, str]) -> str:
    """Citation key for an entry, deriving one when absent/blank."""
    key = entry.get("__key__", "").strip()
    if key:
        return key
    authors = _split_authors(entry.get("author", ""))
    year = int(entry["year"]) if entry.get("year", "").isdigit() else None
    return make_pub_key(authors[0] if authors else "anon", year, entry.get("title", ""))
