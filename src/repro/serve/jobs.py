"""Bounded asynchronous job queue for long-running sweep work.

``POST /sweeps`` must not hold an HTTP worker for the minutes a large
Monte-Carlo grid can take, and it must not accept unbounded work either.
:class:`JobQueue` gives both properties: submissions land in a bounded
:class:`queue.Queue` (full → :class:`~repro.errors.JobQueueFullError`,
surfaced as HTTP 429 backpressure) and a small fixed pool of worker
threads drains it.  Job state is observable at every step
(``queued → running → done | failed | cancelled``) and
:meth:`JobQueue.close` can drain in-flight jobs for a graceful shutdown.

The queue is deliberately engine-agnostic: it runs any
``fn(job) -> payload`` callable, so tests exercise it without spinning
up simulations.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import Any, Callable

from repro.errors import JobQueueFullError, ServeError, UnknownJobError
from repro.pipeline.cache import stable_digest

__all__ = ["Job", "JobQueue", "JOB_STATES"]

#: Every observable job state, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class Job:
    """One unit of queued work and its observable lifecycle.

    Attributes
    ----------
    job_id:
        Stable identifier: a monotonic sequence number plus a digest
        prefix of the payload, so ids are unique *and* hint at content.
    payload:
        The request body the job was built from (echoed in status).
    state:
        One of :data:`JOB_STATES`.
    result:
        The worker function's return value once ``done``.
    error:
        ``repr`` of the exception once ``failed``.
    """

    job_id: str
    payload: dict[str, Any]
    state: str = "queued"
    result: Any = None
    error: str = ""
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready status view (result included only when done)."""
        out: dict[str, Any] = {
            "job": self.job_id,
            "state": self.state,
            "payload": self.payload,
        }
        if self.state == "done":
            out["result"] = self.result
        if self.error:
            out["error"] = self.error
        if self.started_s is not None and self.finished_s is not None:
            out["wall_s"] = round(self.finished_s - self.started_s, 6)
        return out


class JobQueue:
    """Fixed worker pool over a bounded queue of :class:`Job` items.

    Parameters
    ----------
    fn:
        Worker function ``fn(job) -> result``; its return value becomes
        ``job.result``, its exception marks the job ``failed``.
    workers:
        Pool size (``>= 1``).
    maxsize:
        Queue bound; a submission against a full queue raises
        :class:`~repro.errors.JobQueueFullError` immediately (the HTTP
        layer maps it to 429) rather than blocking the caller.
    logger:
        Optional :class:`~repro.telemetry.StructuredLogger` for
        ``job.start`` / ``job.finish`` events.
    """

    def __init__(
        self,
        fn: Callable[[Job], Any],
        *,
        workers: int = 2,
        maxsize: int = 8,
        logger: Any = None,
    ) -> None:
        if workers < 1:
            raise ServeError("job queue needs at least one worker")
        if maxsize < 1:
            raise ServeError("job queue bound must be >= 1")
        self._fn = fn
        self._log = logger
        self._queue: Queue[Job | None] = Queue(maxsize=maxsize)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / inspection ----------------------------------------------------

    def submit(self, payload: dict[str, Any]) -> Job:
        """Enqueue *payload*; returns the queued :class:`Job`.

        Raises :class:`~repro.errors.JobQueueFullError` when the bound
        is hit and :class:`~repro.errors.ServeError` after
        :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise ServeError("job queue is closed")
            seq = next(self._seq)
        job = Job(
            job_id=f"job-{seq:05d}-{stable_digest(payload)[:8]}",
            payload=payload,
        )
        with self._lock:
            self._jobs[job.job_id] = job
        try:
            self._queue.put_nowait(job)
        except Full:
            with self._lock:
                del self._jobs[job.job_id]
            raise JobQueueFullError(
                f"job queue full ({self._queue.maxsize} pending); retry later"
            ) from None
        return job

    def get(self, job_id: str) -> Job:
        """The job registered under *job_id*.

        Raises :class:`~repro.errors.UnknownJobError` for unknown ids.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_s)

    def cancel(self, job_id: str) -> Job:
        """Cancel a still-queued job; running/finished jobs are left alone.

        Returns the job; check ``job.state`` to see whether cancellation
        won the race (the HTTP layer reports 409 when it did not).
        """
        job = self.get(job_id)
        with self._lock:
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_s = time.time()
        return job

    # -- worker loop ----------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None:
                    return
                with self._lock:
                    if job.state != "queued":  # cancelled while waiting
                        continue
                    job.state = "running"
                    job.started_s = time.time()
                if self._log is not None:
                    self._log.info("job.start", job=job.job_id)
                try:
                    result = self._fn(job)
                except Exception as exc:  # job failure is data, not a crash
                    with self._lock:
                        job.state = "failed"
                        job.error = repr(exc)
                        job.finished_s = time.time()
                    if self._log is not None:
                        self._log.error(
                            "job.finish", job=job.job_id, error=job.error
                        )
                else:
                    with self._lock:
                        job.state = "done"
                        job.result = result
                        job.finished_s = time.time()
                    if self._log is not None:
                        self._log.info(
                            "job.finish", job=job.job_id, state="done"
                        )
            finally:
                self._queue.task_done()

    # -- shutdown -------------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work and shut the pool down.

        With ``drain=True`` (graceful shutdown) workers finish every
        already-queued job first; with ``drain=False`` still-queued jobs
        are cancelled and only in-flight ones run to completion.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for job in self._jobs.values():
                    if job.state == "queued":
                        job.state = "cancelled"
                        job.finished_s = time.time()
        for _ in self._threads:
            while True:  # a full queue still has to take the sentinel
                try:
                    self._queue.put(None, timeout=timeout)
                    break
                except Full:  # pragma: no cover - needs a wedged worker
                    try:
                        self._queue.get_nowait()
                        self._queue.task_done()
                    except Empty:
                        pass
        for thread in self._threads:
            thread.join(timeout=timeout)
