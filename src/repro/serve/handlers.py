"""Endpoint handlers for the serve subsystem.

Handlers are plain functions ``(ctx, params, query, body) -> (status,
payload)`` — no HTTP types anywhere — so the whole surface is testable
without opening a socket.  :func:`build_router` assembles them into the
route table :mod:`repro.serve.app` dispatches through.

Study endpoints are memoized twice over: the pipeline's own
:class:`~repro.pipeline.cache.ArtifactCache` makes recomputation cheap,
and the rendered JSON payload for each endpoint is itself cached under a
content-addressed key, so a warm request is a single dictionary lookup.
Cold bursts are coalesced by :class:`~repro.serve.coalesce.SingleFlight`
— N identical concurrent requests run the study exactly once
(``serve.study.computations`` counts the runs; the load test asserts on
it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    CorpusError,
    JobQueueFullError,
    MonteCarloError,
    QueryError,
    ReproError,
    UnknownJobError,
)
from repro.pipeline.cache import ArtifactCache, stable_digest
from repro.serve.coalesce import SingleFlight
from repro.serve.jobs import Job, JobQueue
from repro.telemetry import Telemetry

__all__ = [
    "ServeContext",
    "build_router",
    "run_sweep_job",
    "study_payloads",
    "STUDY_ENDPOINTS",
]

#: Endpoint name → human description, also the /study route whitelist.
STUDY_ENDPOINTS = {
    "table1": "Table 1: workflow tools by institution and direction",
    "table2": "Table 2: application requirements selection matrix",
    "fig2": "Figure 2 series: tools per direction (supply)",
    "fig3": "Figure 3 series: institutions by covered directions",
    "fig4": "Figure 4 series: selection votes per direction (demand)",
    "report": "The full plain-text study report",
}

_MISS = object()


@dataclass
class ServeContext:
    """Everything a handler needs, bundled for dispatch.

    Attributes
    ----------
    cache:
        Artifact cache shared by study runs, sweep cells, and rendered
        endpoint payloads.
    telemetry:
        Live :class:`~repro.telemetry.Telemetry` (the server always
        measures itself; ``/metrics`` snapshots this registry).
    jobs:
        The sweep :class:`~repro.serve.jobs.JobQueue`.
    flight:
        Cold-request coalescer.
    store:
        Optional :class:`~repro.corpus.store.CorpusStore` behind the
        ``/corpus/*`` endpoints; without one they answer 503.  Must be
        opened ``threadsafe=True`` when the context serves a threaded
        server — handlers serialize access through :attr:`store_lock`
        (one SQLite connection, many worker threads).
    registry:
        Optional run ledger; when set, sweep jobs append ``mc-sweep``
        records exactly like ``repro sweep --record``.
    seed:
        Study seed for the ``/study/*`` endpoints.
    """

    cache: ArtifactCache
    telemetry: Telemetry
    jobs: JobQueue
    flight: SingleFlight = field(default_factory=SingleFlight)
    store: Any = None
    registry: Any = None
    seed: int = 2023
    store_lock: threading.Lock = field(default_factory=threading.Lock)


# -- study endpoints --------------------------------------------------------------


def _series(table: Any) -> dict[str, Any]:
    """A JSON-ready view of a :class:`~repro.stats.FrequencyTable`."""
    return {
        "series": [[label, int(count)] for label, count in table.items()],
        "total": int(table.total),
    }


def _table(table: Any) -> dict[str, Any]:
    """A JSON-ready view of a :class:`~repro.tables.TextTable`."""
    return {
        "header": list(table.header),
        "rows": [list(row) for row in table.rows],
        "caption": table.caption,
    }


def study_payloads(results: Any) -> dict[str, Any]:
    """Render every ``/study/*`` payload from one :class:`StudyResults`."""
    from repro.core.taxonomy import workflow_directions
    from repro.reporting import study_report

    return {
        "table1": _table(results.table1),
        "table2": _table(results.table2),
        "fig2": _series(results.q2.distribution),
        "fig3": _series(results.q2.coverage),
        "fig4": _series(results.q3.votes),
        "report": {"text": study_report(results, workflow_directions())},
    }


def _study_key(ctx: ServeContext, endpoint: str) -> str:
    return stable_digest("serve.study", ctx.seed, endpoint)


def study_get(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /study/<endpoint>`` — memoized, coalesced study artifacts."""
    endpoint = params["endpoint"]
    if endpoint not in STUDY_ENDPOINTS:
        return 404, {
            "error": f"unknown study endpoint {endpoint!r}",
            "available": sorted(STUDY_ENDPOINTS),
        }
    key = _study_key(ctx, endpoint)
    payload = ctx.cache.get(key, _MISS)
    if payload is not _MISS:
        return 200, payload

    def compute() -> dict[str, Any]:
        from repro.pipeline.study import run_icsc_pipeline

        # Double-check under the single-flight lock-equivalent: a
        # request that missed the cache just as the previous leader
        # finished must reuse its payloads, not recompute them.
        cached = {
            name: ctx.cache.get(_study_key(ctx, name), _MISS)
            for name in STUDY_ENDPOINTS
        }
        if all(value is not _MISS for value in cached.values()):
            return cached
        ctx.telemetry.metrics.counter("serve.study.computations").inc()
        results, _ = run_icsc_pipeline(seed=ctx.seed, cache=ctx.cache)
        payloads = study_payloads(results)
        for name, data in payloads.items():
            ctx.cache.store(_study_key(ctx, name), data)
        return payloads

    payloads, leader = ctx.flight.do(
        stable_digest("serve.study", ctx.seed), compute
    )
    role = "leaders" if leader else "waiters"
    ctx.telemetry.metrics.counter(f"serve.coalesced_{role}").inc()
    return 200, payloads[endpoint]


# -- corpus endpoints -------------------------------------------------------------


def _need_store(ctx: ServeContext) -> tuple[int, Any] | None:
    if ctx.store is None:
        return 503, {
            "error": "no corpus store configured; "
            "start the server with --store PATH"
        }
    return None


def corpus_query(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /corpus/query?q=...`` — boolean search over the store."""
    unavailable = _need_store(ctx)
    if unavailable is not None:
        return unavailable
    terms = query.get("q", [""])[0]
    if not terms.strip():
        return 400, {"error": "missing query parameter 'q'"}
    try:
        limit = int(query.get("limit", ["50"])[0])
    except ValueError:
        return 400, {"error": "limit must be an integer"}
    try:
        with ctx.store_lock:
            hits = ctx.store.search(terms)
    except QueryError as exc:
        return 400, {"error": str(exc)}
    return 200, {
        "query": terms,
        "count": len(hits),
        "results": [
            {
                "key": pub.key,
                "title": pub.title,
                "year": pub.year,
                "venue": pub.venue,
            }
            for pub in hits[: max(limit, 0)]
        ],
    }


def corpus_stats(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /corpus/stats`` — store size snapshot."""
    unavailable = _need_store(ctx)
    if unavailable is not None:
        return unavailable
    with ctx.store_lock:
        stats = dict(ctx.store.stats())
    if stats.get("year_range") is not None:
        stats["year_range"] = list(stats["year_range"])
    return 200, stats


def corpus_by_year(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /corpus/by_year`` — SQL-aggregated publications per year."""
    unavailable = _need_store(ctx)
    if unavailable is not None:
        return unavailable
    try:
        with ctx.store_lock:
            return 200, _series(ctx.store.by_year())
    except CorpusError as exc:
        return 409, {"error": str(exc)}


def corpus_by_venue(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /corpus/by_venue`` — SQL-aggregated publications per venue."""
    unavailable = _need_store(ctx)
    if unavailable is not None:
        return unavailable
    try:
        with ctx.store_lock:
            return 200, _series(ctx.store.by_venue())
    except CorpusError as exc:
        return 409, {"error": str(exc)}


# -- sweep jobs -------------------------------------------------------------------

#: ``POST /sweeps`` body fields → (type, default).  The same defaults as
#: ``repro sweep`` on the CLI, because both feed
#: :func:`repro.continuum.build_sweep_spec`.
_SWEEP_FIELDS = {
    "grid": (str, "scheduler=heft"),
    "fleet": (int, 3),
    "replications": (int, 100),
    "seed": (int, 0),
    "workers": (int, 0),
    # Adaptive sequential stopping: both default to None (fixed mode).
    # Invalid combinations (max_replications without target_ci, a
    # non-positive target_ci) are rejected by build_sweep_spec while the
    # client is still on the line — a 400, never a failed job.
    "target_ci": (float, None),
    "max_replications": (int, None),
}


def _sweep_payload(body: Any) -> dict[str, Any]:
    """Validate and normalize a ``POST /sweeps`` body.

    Raises :class:`~repro.errors.MonteCarloError` on shape errors so the
    dispatcher maps them to 400 alongside bad grid specs.
    """
    if not isinstance(body, dict):
        raise MonteCarloError("request body must be a JSON object")
    unknown = sorted(set(body) - set(_SWEEP_FIELDS))
    if unknown:
        raise MonteCarloError(f"unknown sweep field(s): {', '.join(unknown)}")
    payload: dict[str, Any] = {}
    for name, (kind, default) in _SWEEP_FIELDS.items():
        value = body.get(name, default)
        if value is None and default is None:
            payload[name] = None
            continue
        if kind is float and isinstance(value, int) and not isinstance(
            value, bool
        ):
            value = float(value)
        if (kind is not str and isinstance(value, bool)) or not isinstance(
            value, kind
        ):
            raise MonteCarloError(
                f"sweep field {name!r} must be {kind.__name__}, "
                f"got {type(value).__name__}"
            )
        payload[name] = value
    return payload


def run_sweep_job(job: Job, ctx: ServeContext) -> dict[str, Any]:
    """Execute one queued sweep — the :class:`JobQueue` worker function.

    Deliberately the same call chain as ``repro sweep``:
    :func:`~repro.continuum.build_sweep_spec` then
    :func:`~repro.continuum.run_sweep` with the shared cache, telemetry,
    and (when recording) run registry — so an HTTP-submitted sweep is
    bit-identical to, and ledgered exactly like, a CLI one.
    """
    from repro.continuum import build_sweep_spec, run_sweep

    payload = job.payload
    spec = build_sweep_spec(
        grid=payload["grid"],
        fleet=payload["fleet"],
        replications=payload["replications"],
        seed=payload["seed"],
        target_ci=payload.get("target_ci"),
        max_replications=payload.get("max_replications"),
    )
    result = run_sweep(
        spec,
        workers=payload["workers"],
        cache=ctx.cache,
        telemetry=ctx.telemetry,
        registry=ctx.registry,
    )
    return result.to_dict()


def sweeps_post(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``POST /sweeps`` — enqueue a sweep job (202), reject bad specs (400).

    A full queue surfaces as 429: the server sheds load it could not
    finish instead of buffering unboundedly.
    """
    from repro.continuum import build_sweep_spec

    payload = _sweep_payload(body)
    # Validate the whole spec now, while the client is still on the
    # line: a bad grid or adaptive combination must be a 400 here, not
    # a failed job later.
    build_sweep_spec(
        grid=payload["grid"],
        fleet=payload["fleet"],
        replications=payload["replications"],
        seed=payload["seed"],
        target_ci=payload["target_ci"],
        max_replications=payload["max_replications"],
    )
    job = ctx.jobs.submit(payload)
    return 202, job.to_dict()


def jobs_list(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /jobs`` — every known job, oldest first."""
    return 200, {"jobs": [job.to_dict() for job in ctx.jobs.jobs()]}


def jobs_get(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /jobs/<id>`` — one job's status (404 when unknown)."""
    return 200, ctx.jobs.get(params["job_id"]).to_dict()


def jobs_delete(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``DELETE /jobs/<id>`` — cancel a queued job (409 once running)."""
    job = ctx.jobs.cancel(params["job_id"])
    if job.state != "cancelled":
        return 409, {
            "error": f"job {job.job_id} is {job.state}; "
            "only queued jobs can be cancelled",
            "state": job.state,
        }
    return 200, job.to_dict()


# -- service endpoints ------------------------------------------------------------


def health(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /health`` — liveness plus a feature inventory."""
    return 200, {
        "status": "ok",
        "study_endpoints": sorted(STUDY_ENDPOINTS),
        "corpus": ctx.store is not None,
        "recording": ctx.registry is not None,
        "jobs": len(ctx.jobs.jobs()),
    }


def metrics(
    ctx: ServeContext,
    params: dict[str, str],
    query: dict[str, list[str]],
    body: Any,
) -> tuple[int, Any]:
    """``GET /metrics`` — full snapshot of the server's registry."""
    return 200, ctx.telemetry.metrics.snapshot()


# -- dispatch ---------------------------------------------------------------------


def build_router(ctx: ServeContext):
    """The serve route table, with *ctx* bound into every handler."""
    from repro.serve.router import Router

    def bind(fn):
        def bound(params: dict, query: dict, body: Any) -> tuple[int, Any]:
            return fn(ctx, params, query, body)

        bound.__name__ = fn.__name__
        return bound

    router = Router()
    router.add("GET", r"/health", "health", bind(health))
    router.add("GET", r"/metrics", "metrics", bind(metrics))
    router.add(
        "GET", r"/study/(?P<endpoint>[^/]+)", "study_get", bind(study_get)
    )
    router.add("GET", r"/corpus/query", "corpus_query", bind(corpus_query))
    router.add("GET", r"/corpus/stats", "corpus_stats", bind(corpus_stats))
    router.add(
        "GET", r"/corpus/by_year", "corpus_by_year", bind(corpus_by_year)
    )
    router.add(
        "GET", r"/corpus/by_venue", "corpus_by_venue", bind(corpus_by_venue)
    )
    router.add("POST", r"/sweeps", "sweeps_post", bind(sweeps_post))
    router.add("GET", r"/jobs", "jobs_list", bind(jobs_list))
    router.add("GET", r"/jobs/(?P<job_id>[^/]+)", "jobs_get", bind(jobs_get))
    router.add(
        "DELETE",
        r"/jobs/(?P<job_id>[^/]+)",
        "jobs_delete",
        bind(jobs_delete),
    )
    return router


#: Exception class → HTTP status for errors handlers let escape.
ERROR_STATUS: dict[type, int] = {
    UnknownJobError: 404,
    JobQueueFullError: 429,
    MonteCarloError: 400,
    QueryError: 400,
    ReproError: 500,
}


def status_for(exc: BaseException) -> int:
    """The HTTP status an escaped handler exception maps to."""
    for kind, status in ERROR_STATUS.items():
        if isinstance(exc, kind):
            return status
    return 500
