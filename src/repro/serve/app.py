"""The HTTP front of the study: a stdlib-only, pooled JSON server.

Zero third-party dependencies by design — the whole service is
:mod:`http.server` + :mod:`socketserver` + :mod:`threading`.  Three
properties matter and the stdlib defaults give none of them, so this
module adds them:

* **Bounded concurrency** — ``ThreadingHTTPServer`` spawns one thread
  per connection, unbounded.  :class:`PooledHTTPServer` instead hands
  accepted connections to a fixed worker pool through a bounded queue;
  overflow connections get a canned 503 and are closed.  Load sheds,
  memory does not grow.
* **Keep-alive throughput** — handlers speak HTTP/1.1 with exact
  ``Content-Length`` so load-test clients reuse connections; without it
  every request pays a TCP handshake and the throughput gate in
  ``benchmarks/test_bench_serve.py`` is unreachable.
* **Self-measurement** — every request lands in a per-endpoint latency
  histogram (log-spaced buckets, sub-ms resolution), bumps
  ``serve.requests``/``serve.errors`` counters, and emits a
  ``serve.access`` structured log event.  ``GET /metrics`` serves the
  registry right back.

:class:`ServerHandle` packages server + pool + job queue behind a
context manager with graceful shutdown: stop accepting, drain in-flight
jobs, join the workers.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from queue import Empty, Full, Queue
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServeError
from repro.serve.handlers import ServeContext, build_router, status_for
from repro.telemetry import DEFAULT_LATENCY_BUCKETS

__all__ = ["ServeApp", "PooledHTTPServer", "ServerHandle", "serve_forever"]

_MAX_BODY_BYTES = 1 << 20  # sweeps specs are tiny; reject anything huge
_OVERLOAD_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 36\r\n"
    b"Connection: close\r\n\r\n"
    b'{"error": "server connection limit"}'
)


class ServeApp:
    """Protocol-free request core: ``(method, path, body) -> response``.

    The HTTP handler below is a thin shell around :meth:`dispatch`;
    everything observable — routing, status mapping, metrics, access
    logs — lives here where tests reach it without a socket.
    """

    def __init__(self, ctx: ServeContext) -> None:
        self.ctx = ctx
        self.router = build_router(ctx)
        self._metrics = ctx.telemetry.metrics
        self._log = ctx.telemetry.log

    def dispatch(
        self, method: str, target: str, body_bytes: bytes | None
    ) -> tuple[int, bytes]:
        """Route one request; returns ``(status, JSON body bytes)``."""
        started = time.perf_counter()
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        match = self.router.match(method, path)
        if match is None:
            allowed = self.router.allowed_methods(path)
            if allowed:
                status, payload = 405, {
                    "error": f"method {method} not allowed",
                    "allowed": list(allowed),
                }
            else:
                status, payload = 404, {"error": f"no route for {path}"}
            name = "unrouted"
        else:
            name = match.route.name
            body, decode_error = self._decode(body_bytes)
            if decode_error is not None:
                status, payload = 400, {"error": decode_error}
            else:
                try:
                    status, payload = match.route.handler(
                        match.params, parse_qs(split.query), body
                    )
                except Exception as exc:
                    status = status_for(exc)
                    payload = {"error": str(exc) or repr(exc)}
                    if status >= 500:
                        self._log.error(
                            "serve.crash", route=name, error=repr(exc)
                        )
        elapsed = time.perf_counter() - started
        self._observe(name, method, path, status, elapsed)
        return status, (json.dumps(payload) + "\n").encode("utf-8")

    @staticmethod
    def _decode(body_bytes: bytes | None) -> tuple[Any, str | None]:
        if not body_bytes:
            return None, None
        try:
            return json.loads(body_bytes.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"request body is not valid JSON: {exc}"

    def _observe(
        self, name: str, method: str, path: str, status: int, elapsed: float
    ) -> None:
        self._metrics.counter("serve.requests").inc()
        if status >= 400:
            self._metrics.counter("serve.errors").inc()
        self._metrics.histogram(
            f"serve.request_seconds.{name}", bounds=DEFAULT_LATENCY_BUCKETS
        ).observe(elapsed)
        self._log.info(
            "serve.access",
            method=method,
            path=path,
            status=status,
            route=name,
            duration_ms=round(elapsed * 1000, 3),
        )


class _Handler(BaseHTTPRequestHandler):
    """Socket shell around :class:`ServeApp` — HTTP/1.1 with keep-alive."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    # Nagle + delayed-ACK interplay can stall small keep-alive
    # responses for tens of ms; latency matters more than segments.
    disable_nagle_algorithm = True

    def _respond(self) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            body = b'{"error": "request body too large"}\n'
            status = 413
        else:
            payload = self.rfile.read(length) if length else None
            status, body = app.dispatch(self.command, self.path, payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond
    do_DELETE = _respond

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log; telemetry has it."""


class PooledHTTPServer(HTTPServer):
    """An :class:`HTTPServer` serviced by a fixed worker-thread pool.

    ``process_request`` enqueues the accepted connection instead of
    handling it inline; *workers* threads drain the queue, each owning a
    keep-alive connection until the peer closes it.  When the queue is
    full the connection receives a canned 503 and is closed — bounded
    memory under overload, by construction.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        app: ServeApp,
        *,
        workers: int = 16,
        backlog: int = 64,
    ) -> None:
        if workers < 1:
            raise ServeError("server needs at least one worker")
        super().__init__(address, _Handler)
        self.app = app
        self._pending: Queue = Queue(maxsize=max(backlog, 1))
        self._workers = [
            threading.Thread(
                target=self._work, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    def process_request(self, request, client_address) -> None:
        try:
            self._pending.put_nowait((request, client_address))
        except Full:
            self.app.ctx.telemetry.metrics.counter("serve.overflow").inc()
            try:
                request.sendall(_OVERLOAD_RESPONSE)
            except OSError:
                pass
            self.shutdown_request(request)

    def _work(self) -> None:
        while True:
            item = self._pending.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:  # a broken client must not kill the worker
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def handle_error(self, request, client_address) -> None:
        """Count handler crashes instead of printing tracebacks."""
        self.app.ctx.telemetry.metrics.counter("serve.handler_errors").inc()

    def stop_workers(self, timeout: float = 5.0) -> None:
        """Unblock and join the pool (call after ``shutdown()``).

        Pending connections are shed *before* the ``None`` sentinels go
        in — draining afterwards would steal sentinels back from the
        queue and leave workers blocked on it forever.
        """
        while True:
            try:
                item = self._pending.get_nowait()
            except Empty:
                break
            self.shutdown_request(item[0])
        for _ in self._workers:
            try:
                self._pending.put(None, timeout=timeout)
            except Full:  # pragma: no cover - needs a wedged worker
                break
        for thread in self._workers:
            thread.join(timeout=timeout)


class ServerHandle:
    """A running serve instance with deterministic, graceful teardown.

    Examples
    --------
    ::

        with ServerHandle(ctx, workers=8) as handle:
            urllib.request.urlopen(handle.url + "/health")

    ``close()`` (or leaving the ``with`` block) stops accepting
    connections, drains queued jobs to completion, and joins every
    thread — in-flight work finishes, nothing new starts.
    """

    def __init__(
        self,
        ctx: ServeContext,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 16,
        backlog: int = 64,
    ) -> None:
        self.ctx = ctx
        self.app = ServeApp(ctx)
        self.server = PooledHTTPServer(
            (host, port), self.app, workers=workers, backlog=backlog
        )
        self.host, self.port = self.server.server_address[:2]
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        """Base URL of the running server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def close(self, *, drain_jobs: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain jobs, join threads."""
        if self._closed:
            return
        self._closed = True
        self.ctx.telemetry.log.info("serve.shutdown", drain=drain_jobs)
        self.server.shutdown()
        self._thread.join(timeout=10.0)
        self.server.stop_workers()
        self.server.server_close()
        self.ctx.jobs.close(drain=drain_jobs)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_forever(
    ctx: ServeContext,
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 16,
) -> None:
    """Run the server in the foreground until interrupted (the CLI path)."""
    handle = ServerHandle(ctx, host=host, port=port, workers=workers)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        handle.close()
