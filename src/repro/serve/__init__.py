"""HTTP serving layer: the study's engines behind JSON endpoints.

The north-star scenario is a study service under heavy traffic, and this
package is that front door — stdlib-only (``http.server`` +
``socketserver`` + ``threading``; zero new dependencies), bounded
everywhere, and self-measuring:

* ``GET /study/table1|table2|fig2|fig3|fig4|report`` — memoized study
  artifacts through :class:`~repro.pipeline.cache.ArtifactCache`, with
  cold bursts coalesced by :class:`SingleFlight` so N identical
  concurrent requests run the pipeline exactly once;
* ``GET /corpus/query|stats|by_year|by_venue`` — the persistent
  :class:`~repro.corpus.store.CorpusStore`, aggregation pushed into SQL;
* ``POST /sweeps`` + ``GET /jobs/<id>`` — an async :class:`JobQueue`
  running Monte-Carlo sweeps through the *same*
  :func:`~repro.continuum.build_sweep_spec` → ``run_sweep`` path as
  ``repro sweep``, so HTTP results are bit-identical to CLI ones and
  land in the same run ledger; a full queue answers 429;
* ``GET /metrics`` — per-endpoint latency histograms (log-spaced
  buckets) and request/error counters from :mod:`repro.telemetry`.

Quickstart
----------
::

    from repro.serve import ServerHandle, build_context

    with ServerHandle(build_context()) as handle:
        print(handle.url)   # http://127.0.0.1:<port>

or ``repro serve --port 8000`` on the CLI.
"""

from __future__ import annotations

from typing import Any

from repro.serve.app import (
    PooledHTTPServer,
    ServeApp,
    ServerHandle,
    serve_forever,
)
from repro.serve.coalesce import SingleFlight
from repro.serve.handlers import (
    STUDY_ENDPOINTS,
    ServeContext,
    build_router,
    run_sweep_job,
    study_payloads,
)
from repro.serve.jobs import JOB_STATES, Job, JobQueue
from repro.serve.router import Route, RouteMatch, Router

__all__ = [
    "JOB_STATES",
    "Job",
    "JobQueue",
    "PooledHTTPServer",
    "Route",
    "RouteMatch",
    "Router",
    "STUDY_ENDPOINTS",
    "ServeApp",
    "ServeContext",
    "ServerHandle",
    "SingleFlight",
    "build_context",
    "build_router",
    "run_sweep_job",
    "serve_forever",
    "study_payloads",
]


def build_context(
    *,
    cache_dir: Any = None,
    runs_dir: Any = None,
    record: bool = False,
    store_path: Any = None,
    seed: int = 2023,
    job_workers: int = 2,
    queue_size: int = 8,
    telemetry: Any = None,
) -> ServeContext:
    """Wire a ready-to-serve :class:`ServeContext` from path options.

    The same factory backs ``repro serve``, the unit tests, and the load
    bench, so all three serve byte-identical behavior.  *cache_dir* of
    ``None`` keeps the artifact cache memory-only; *record* attaches a
    :class:`~repro.obs.RunRegistry` at *runs_dir* (default ledger
    location when omitted) so sweep jobs append run records;
    *store_path* opens an existing :class:`~repro.corpus.store.CorpusStore`
    behind the ``/corpus/*`` endpoints.
    """
    from repro.pipeline.cache import ArtifactCache
    from repro.telemetry import Telemetry

    tel = telemetry if telemetry is not None else Telemetry()
    registry = None
    if record:
        from repro.obs import RunRegistry, default_runs_dir

        registry = RunRegistry(
            runs_dir if runs_dir is not None else default_runs_dir(),
            logger=tel.log,
        )
    store = None
    if store_path is not None:
        from repro.corpus.store import CorpusStore

        # The worker pool shares this one connection across threads;
        # handlers serialize every call through ctx.store_lock.
        store = CorpusStore(store_path, threadsafe=True)
    ctx = ServeContext(
        cache=ArtifactCache(cache_dir, telemetry=tel),
        telemetry=tel,
        jobs=None,  # type: ignore[arg-type]  # bound just below
        store=store,
        registry=registry,
        seed=seed,
    )
    ctx.jobs = JobQueue(
        lambda job: run_sweep_job(job, ctx),
        workers=job_workers,
        maxsize=queue_size,
        logger=tel.log,
    )
    return ctx
