"""Method + pattern routing table for the serve subsystem.

A deliberately tiny router: ordered ``(method, compiled-regex)`` pairs
mapped to named handlers.  The name doubles as the metrics label, so
``GET /jobs/job-00001-ab12cd34`` and ``GET /jobs/job-00002-99ff0011``
both land in the ``jobs_get`` latency histogram instead of exploding
label cardinality per job id.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Route", "RouteMatch", "Router"]

Handler = Callable[..., tuple[int, Any]]


@dataclass(frozen=True)
class Route:
    """One routing entry: HTTP method + path pattern + named handler."""

    method: str
    pattern: re.Pattern
    name: str
    handler: Handler


@dataclass(frozen=True)
class RouteMatch:
    """A dispatch decision: the route plus captured path parameters."""

    route: Route
    params: dict[str, str]


class Router:
    """Ordered route table with 404/405 discrimination.

    Examples
    --------
    >>> router = Router()
    >>> router.add("GET", r"/jobs/(?P<job_id>[^/]+)", "jobs_get",
    ...            lambda job_id: (200, {"job": job_id}))
    >>> match = router.match("GET", "/jobs/j1")
    >>> match.route.name, match.params
    ('jobs_get', {'job_id': 'j1'})
    >>> router.match("PUT", "/jobs/j1") is None  # wrong method -> 405
    True
    >>> router.allowed_methods("/jobs/j1")
    ('GET',)
    """

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(
        self, method: str, pattern: str, name: str, handler: Handler
    ) -> Route:
        """Register *handler* for ``method pattern`` (full-path match)."""
        route = Route(
            method=method.upper(),
            pattern=re.compile(pattern + r"\Z"),
            name=name,
            handler=handler,
        )
        self._routes.append(route)
        return route

    def match(self, method: str, path: str) -> RouteMatch | None:
        """The first route matching ``method path``, or ``None``."""
        method = method.upper()
        for route in self._routes:
            if route.method != method:
                continue
            hit = route.pattern.match(path)
            if hit is not None:
                return RouteMatch(route=route, params=hit.groupdict())
        return None

    def allowed_methods(self, path: str) -> tuple[str, ...]:
        """Methods some route would accept for *path* (drives 405s)."""
        return tuple(
            sorted(
                {
                    route.method
                    for route in self._routes
                    if route.pattern.match(path) is not None
                }
            )
        )

    def routes(self) -> tuple[Route, ...]:
        """Every registered route, in match order."""
        return tuple(self._routes)
