"""Single-flight request coalescing for identical concurrent work.

When N requests for the same content-addressed key arrive together and
the artifact is cold, running the computation N times wastes N-1 runs of
identical work — the results are bit-identical by construction (the
pipeline and sweep engines are deterministic for a given key).
:class:`SingleFlight` elects the first caller per key as the *leader*;
it runs the computation while *followers* park on an event and share the
leader's result (or its exception).  Keys come from
:func:`repro.pipeline.cache.stable_digest`, so "identical request" means
"identical canonical payload", not "same URL string".
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["SingleFlight"]


class _Call:
    """In-flight computation shared by a leader and its followers."""

    __slots__ = ("event", "result", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.waiters = 0


class SingleFlight:
    """Coalesce concurrent calls for the same key into one execution.

    Examples
    --------
    >>> flight = SingleFlight()
    >>> calls = []
    >>> def compute():
    ...     calls.append(1)
    ...     return 42
    >>> flight.do("answer", compute)
    (42, True)
    >>> len(calls)
    1

    The second element of the returned pair is ``True`` for the leader
    (the call that actually executed *fn*) and ``False`` for followers
    that received a shared result.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, _Call] = {}

    def do(self, key: str, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Run *fn* once per concurrent burst of *key*; share the result.

        Returns ``(result, is_leader)``.  If the leader raises, every
        follower of that burst re-raises the same exception; the key is
        released either way, so a later burst retries fresh.
        """
        with self._lock:
            call = self._calls.get(key)
            leader = call is None
            if leader:
                call = _Call()
                self._calls[key] = call
            else:
                call.waiters += 1
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.result, False
        try:
            call.result = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
        return call.result, True

    def in_flight(self) -> int:
        """Number of keys currently executing (mostly for tests)."""
        with self._lock:
            return len(self._calls)
