"""The :class:`Telemetry` facade and its zero-overhead null twin.

Instrumented code (:mod:`repro.pipeline`, the CLI) takes an optional
``telemetry=`` parameter and normalizes it through :func:`ensure`::

    tel = ensure(telemetry)          # None -> the shared NULL_TELEMETRY
    with tel.tracer.span("work"):
        tel.metrics.counter("items").inc()

With the default ``None`` every call lands on a shared, stateless no-op
object — no clocks read, no locks taken, nothing allocated — so the
instrumentation can stay inline on hot paths.  Passing
``Telemetry()`` switches the exact same call sites to real recording.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.telemetry.log import NULL_LOGGER, NullLogger, StructuredLogger
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "ensure"]


class _NullCounter:
    """Counter twin that discards increments."""

    __slots__ = ()

    kind = "counter"
    name = ""
    value = 0

    def inc(self, amount: int | float = 1) -> int:
        return 0

    def summary(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": 0}


class _NullGauge:
    """Gauge twin that discards levels."""

    __slots__ = ()

    kind = "gauge"
    name = ""
    value = 0.0
    max = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> float:
        return 0.0

    def summary(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": 0.0, "max": 0.0}


class _NullHistogram:
    """Histogram twin that discards observations."""

    __slots__ = ()

    kind = "histogram"
    name = ""
    count = 0
    total = 0.0
    mean = 0.0
    bounds = ()

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> dict[str, int]:
        return {}

    def summary(self) -> dict[str, Any]:
        return {"kind": self.kind, "count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Registry twin: every lookup returns a shared inert instrument."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(
        self, name: str, *, bounds: Sequence[float] = ()
    ) -> _NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def names(self) -> tuple[str, ...]:
        """Always empty."""
        return ()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Always empty."""
        return {}


class Telemetry:
    """One tracing + metrics context threaded through a pipeline run.

    Attributes
    ----------
    tracer:
        The :class:`~repro.telemetry.tracer.Tracer` recording the span
        tree.
    metrics:
        The :class:`~repro.telemetry.metrics.MetricsRegistry`; by default
        pre-registered with the pipeline metrics
        (:data:`~repro.telemetry.metrics.PIPELINE_METRICS`).
    log:
        The :class:`~repro.telemetry.log.StructuredLogger` recording
        leveled NDJSON events; by default bound to :attr:`tracer` so
        events carry the emitting thread's current span id.

    Examples
    --------
    >>> tel = Telemetry()
    >>> with tel.tracer.span("stage:analyze", stage="analyze"):
    ...     tel.metrics.counter("pipeline.stages_executed").inc()
    1
    >>> tel.enabled
    True
    """

    #: True when spans and metrics are actually recorded.  A plain class
    #: attribute (not a property): hot paths branch on it per stage.
    enabled = True

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        log: StructuredLogger | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry.for_pipeline()
        )
        self.log = (
            log if log is not None else StructuredLogger(tracer=self.tracer)
        )


class NullTelemetry(Telemetry):
    """The disabled telemetry: shared null tracer + null registry.

    All instances behave identically; use the module-level
    :data:`NULL_TELEMETRY` singleton (what :func:`ensure` hands out for
    ``None``).
    """

    #: Always False: spans and metrics are discarded.
    enabled = False

    def __init__(self) -> None:
        self.tracer: NullTracer = NULL_TRACER  # type: ignore[assignment]
        self.metrics: NullMetricsRegistry = (  # type: ignore[assignment]
            NullMetricsRegistry()
        )
        self.log: NullLogger = NULL_LOGGER  # type: ignore[assignment]


#: Process-wide shared disabled telemetry.
NULL_TELEMETRY = NullTelemetry()


def ensure(telemetry: Optional[Telemetry]) -> Telemetry:
    """Normalize an optional ``telemetry=`` argument (None → no-op)."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
