"""Tracing, metrics, and profiling for the study pipeline.

The observability layer the scaling work measures itself with:

* :mod:`repro.telemetry.tracer` — :class:`Tracer`, a hierarchical span
  tree (wall time, per-thread CPU time, tags, parent links) with
  context-manager and decorator APIs and a thread-safe buffer, so
  parallel pipeline stages trace correctly;
* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with
  counters, gauges, and fixed-bucket histograms (numpy-backed
  percentiles), pre-registered with the pipeline metrics;
* :mod:`repro.telemetry.export` — newline-delimited JSON events and
  Chrome ``chrome://tracing`` trace files;
* :mod:`repro.telemetry.profile` — the plain-text profile report (top
  stages by self time, cache hit ratios) and an ASCII trace renderer;
* :mod:`repro.telemetry.log` — :class:`StructuredLogger`, leveled
  span-correlated NDJSON log events with a zero-overhead
  :data:`NULL_LOGGER` twin;
* :mod:`repro.telemetry.hooks` — the :class:`Telemetry` facade the
  pipeline takes via ``telemetry=``, and its zero-overhead
  :data:`NULL_TELEMETRY` default.

Quickstart
----------
>>> from repro.telemetry import Telemetry
>>> tel = Telemetry()
>>> with tel.tracer.span("stage:collect", stage="collect"):
...     tel.metrics.counter("pipeline.stages_executed").inc()
1
>>> len(tel.tracer.spans())
1

Wire it into a study run with
``run_icsc_pipeline(telemetry=tel)`` (or ``repro replicate --profile``
on the CLI), then render ``profile_report(tel)`` or save a trace with
``write_chrome_trace(tel, "trace.json")``.
"""

from repro.telemetry.export import (
    chrome_trace,
    load_chrome_trace,
    span_events,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.telemetry.hooks import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    ensure,
)
from repro.telemetry.log import (
    LOG_LEVELS,
    LogEvent,
    NULL_LOGGER,
    NullLogger,
    StructuredLogger,
)
from repro.telemetry.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    PIPELINE_METRICS,
    log_spaced_bounds,
)
from repro.telemetry.profile import (
    StageProfile,
    profile_report,
    render_trace,
    stage_profiles,
)
from repro.telemetry.spans import Span, SpanBuffer
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "LogEvent",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullLogger",
    "NullTelemetry",
    "NullTracer",
    "PIPELINE_METRICS",
    "Span",
    "SpanBuffer",
    "StageProfile",
    "StructuredLogger",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "ensure",
    "load_chrome_trace",
    "log_spaced_bounds",
    "profile_report",
    "render_trace",
    "span_events",
    "stage_profiles",
    "write_chrome_trace",
    "write_events_jsonl",
]
