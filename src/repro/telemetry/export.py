"""Exporters: NDJSON event streams and Chrome ``chrome://tracing`` files.

Two on-disk formats, both derived from the same span tree:

* **NDJSON events** (:func:`write_events_jsonl`) — one JSON object per
  line: every span, followed by one ``metric`` record per instrument.
  Greppable, streamable, trivially machine-readable.
* **Chrome trace** (:func:`write_chrome_trace`) — the Trace Event Format
  consumed by ``chrome://tracing`` and https://ui.perfetto.dev: complete
  (``"ph": "X"``) events with microsecond timestamps, one row per
  thread, so the parallel stages of a pipeline run render as overlapping
  bars.

:func:`load_chrome_trace` reads a saved trace back (for ``repro trace``),
raising :class:`~repro.errors.TelemetryError` on unreadable input.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import TelemetryError
from repro.telemetry.hooks import Telemetry
from repro.telemetry.spans import Span

__all__ = [
    "span_events",
    "write_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
]


def span_events(telemetry: Telemetry) -> list[dict[str, Any]]:
    """Every finished span plus a metric record per instrument, as dicts."""
    events: list[dict[str, Any]] = [
        span.to_event() for span in telemetry.tracer.spans()
    ]
    for name, summary in telemetry.metrics.snapshot().items():
        events.append({"type": "metric", "name": name, **summary})
    return events


def write_events_jsonl(
    telemetry: Telemetry, path: str | os.PathLike
) -> Path:
    """Write :func:`span_events` as newline-delimited JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(event, sort_keys=True, default=str)
        for event in span_events(telemetry)
    ]
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target


def _thread_rows(spans: Sequence[Span]) -> dict[int, int]:
    """Map real thread idents to small stable row numbers (0 = first seen)."""
    rows: dict[int, int] = {}
    for span in spans:
        if span.thread_id not in rows:
            rows[span.thread_id] = len(rows)
    return rows


def chrome_trace(telemetry: Telemetry) -> dict[str, Any]:
    """The span tree in Chrome Trace Event Format (a JSON-ready dict).

    Spans become complete events (``"ph": "X"``) with ``ts``/``dur`` in
    microseconds relative to the tracer epoch; thread metadata events
    name each row.  The final metrics snapshot rides along under
    ``otherData`` (ignored by viewers, kept for humans).
    """
    spans = telemetry.tracer.spans()
    rows = _thread_rows(spans)
    pid = os.getpid()
    events: list[dict[str, Any]] = []
    for ident, row in rows.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": row,
                "args": {"name": f"thread-{row}" if row else "main"},
            }
        )
    for span in spans:
        args: dict[str, Any] = {str(k): v for k, v in span.tags.items()}
        if span.cpu_time is not None:
            args["cpu_ms"] = round(span.cpu_time * 1e3, 3)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 1),
                "dur": round((span.duration or 0.0) * 1e6, 1),
                "pid": pid,
                "tid": rows[span.thread_id],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": telemetry.metrics.snapshot()},
    }


def write_chrome_trace(
    telemetry: Telemetry, path: str | os.PathLike
) -> Path:
    """Write :func:`chrome_trace` as JSON; returns the path.

    The file loads directly in ``chrome://tracing`` ("Load" button) and
    in https://ui.perfetto.dev.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(chrome_trace(telemetry), sort_keys=True, default=str),
        encoding="utf-8",
    )
    return target


def load_chrome_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Read a saved Chrome trace; returns its duration (``"X"``) events.

    Accepts both the object form (``{"traceEvents": [...]}``) this module
    writes and the bare JSON-array form other tools emit.  Metadata
    events are filtered out.  Raises
    :class:`~repro.errors.TelemetryError` when the file is missing, not
    JSON, or not a trace.
    """
    source = Path(path)
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except OSError as exc:
        raise TelemetryError(f"trace file {source} is unreadable: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"trace file {source} is not JSON: {exc}") from exc
    if isinstance(payload, dict):
        events: Iterable[Any] = payload.get("traceEvents", ())
    elif isinstance(payload, list):
        events = payload
    else:
        raise TelemetryError(
            f"trace file {source} is not a Chrome trace (got "
            f"{type(payload).__name__})"
        )
    duration_events = [
        event
        for event in events
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    if not duration_events:
        raise TelemetryError(
            f"trace file {source} contains no duration events"
        )
    return duration_events
