"""Structured, span-correlated NDJSON logging.

The third leg of the telemetry stool (spans measure, metrics count, logs
*narrate*): a :class:`StructuredLogger` records leveled events as one
JSON object each — event name, UTC timestamp, level, free-form fields,
and the ``span_id`` of the innermost span open on the calling thread, so
every log line of a parallel pipeline run is attributable to the stage
that emitted it.

Events are buffered in a thread-safe list and can additionally be routed
to a *stream* (one complete ``write()`` per line, under the logger's
lock, so concurrent emitters can never interleave partial lines) —
that is what makes the parallel-``Pipeline.run`` NDJSON well-formed.

The :class:`NullLogger` twin follows the telemetry convention: the same
surface as cheap no-ops, shared through :data:`NULL_LOGGER`, so
``telemetry=None`` call sites pay a few attribute lookups and nothing
else.

>>> from repro.telemetry.tracer import Tracer
>>> tracer = Tracer()
>>> log = StructuredLogger(tracer=tracer)
>>> with tracer.span("stage:collect") as span:
...     log.info("cache.miss", key="abc")
>>> event = log.events()[0]
>>> event.event, event.level, event.span_id == span.span_id
('cache.miss', 'info', True)
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

from repro.errors import TelemetryError

__all__ = [
    "LOG_LEVELS",
    "LogEvent",
    "StructuredLogger",
    "NullLogger",
    "NULL_LOGGER",
]

#: Level name → numeric severity (higher = more severe).
LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _severity(level: str) -> int:
    try:
        return LOG_LEVELS[level]
    except KeyError:
        raise TelemetryError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(LOG_LEVELS)}"
        ) from None


@dataclass(frozen=True, slots=True)
class LogEvent:
    """One structured log record.

    Attributes
    ----------
    event:
        Dotted event name (``"cache.evict"``, ``"stage.finish"``, ...).
    level:
        One of :data:`LOG_LEVELS`.
    ts:
        Unix timestamp (``time.time()``) of emission.
    span_id:
        ``span_id`` of the innermost open span on the emitting thread,
        or ``None`` when emitted outside any span.
    thread_id:
        ``threading.get_ident()`` of the emitting thread.
    fields:
        Free-form key → value payload (must be JSON-representable via
        ``default=str``).
    """

    event: str
    level: str
    ts: float
    span_id: int | None = None
    thread_id: int = 0
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict (``type: "log"``, fields flattened under
        ``fields`` so event metadata can never collide with payload keys)."""
        return {
            "type": "log",
            "event": self.event,
            "level": self.level,
            "ts": self.ts,
            "span_id": self.span_id,
            "thread_id": self.thread_id,
            "fields": dict(self.fields),
        }

    def to_json(self) -> str:
        """The event as one NDJSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class StructuredLogger:
    """Leveled, span-correlated, thread-safe structured logger.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`; when bound,
        every event is stamped with the emitting thread's innermost open
        span id (``None`` otherwise).
    level:
        Minimum level recorded (default ``"debug"``: keep everything —
        the buffer is in memory and runs are short).
    stream:
        Optional text stream; each accepted event is additionally
        written to it as one NDJSON line in a single ``write()`` call
        under the logger's lock, so parallel emitters cannot interleave.
    """

    def __init__(
        self,
        *,
        tracer: Any = None,
        level: str = "debug",
        stream: IO[str] | None = None,
    ) -> None:
        self._min_severity = _severity(level)
        self.level = level
        self.tracer = tracer
        self._stream = stream
        self._lock = threading.Lock()
        self._events: list[LogEvent] = []

    @property
    def enabled(self) -> bool:
        """True: this logger records events (the null twin reports False)."""
        return True

    # -- emission ----------------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> LogEvent | None:
        """Record one event; returns it, or ``None`` when filtered out."""
        if _severity(level) < self._min_severity:
            return None
        span_id = None
        if self.tracer is not None:
            current = self.tracer.current_span()
            if current is not None:
                span_id = current.span_id
        record = LogEvent(
            event=event,
            level=level,
            ts=time.time(),
            span_id=span_id,
            thread_id=threading.get_ident(),
            fields=fields,
        )
        line = record.to_json() + "\n" if self._stream is not None else None
        with self._lock:
            self._events.append(record)
            if line is not None:
                # One complete line per write(): concurrent emitters can
                # never tear a line even on unbuffered streams.
                self._stream.write(line)
        return record

    def debug(self, event: str, **fields: Any) -> LogEvent | None:
        """Record a ``debug`` event."""
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> LogEvent | None:
        """Record an ``info`` event."""
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> LogEvent | None:
        """Record a ``warning`` event."""
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> LogEvent | None:
        """Record an ``error`` event."""
        return self.log("error", event, **fields)

    # -- inspection & export -----------------------------------------------------

    def events(self, *, min_level: str = "debug") -> tuple[LogEvent, ...]:
        """Recorded events at or above *min_level*, in emission order."""
        severity = _severity(min_level)
        with self._lock:
            snapshot = tuple(self._events)
        if severity <= _severity("debug"):
            return snapshot
        return tuple(e for e in snapshot if _severity(e.level) >= severity)

    def lines(self) -> list[str]:
        """Every recorded event as an NDJSON line (no trailing newlines)."""
        return [event.to_json() for event in self.events()]

    def write_ndjson(self, path: str | os.PathLike) -> Path:
        """Write the buffered events as an NDJSON file; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = self.lines()
        target.write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        return target

    def clear(self) -> None:
        """Drop every buffered event."""
        with self._lock:
            self._events.clear()


class NullLogger:
    """The zero-overhead logger: same surface, nothing recorded."""

    __slots__ = ()

    level = "error"
    tracer = None

    @property
    def enabled(self) -> bool:
        """False: events are discarded."""
        return False

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Discard the event."""
        return None

    def debug(self, event: str, **fields: Any) -> None:
        """Discard the event."""
        return None

    def info(self, event: str, **fields: Any) -> None:
        """Discard the event."""
        return None

    def warning(self, event: str, **fields: Any) -> None:
        """Discard the event."""
        return None

    def error(self, event: str, **fields: Any) -> None:
        """Discard the event."""
        return None

    def events(self, *, min_level: str = "debug") -> tuple[LogEvent, ...]:
        """Always empty."""
        return ()

    def lines(self) -> list[str]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """A no-op."""


#: Process-wide shared disabled logger.
NULL_LOGGER = NullLogger()
