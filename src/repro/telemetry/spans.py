"""The span model: one timed, tagged, tree-linked unit of work.

A :class:`Span` records what the tracer measured for one operation —
wall-clock interval, CPU time consumed by the executing thread, free-form
tags, and a link to its parent span — and a :class:`SpanBuffer` collects
finished spans from any number of threads.  Both are deliberately dumb
data carriers: all timing policy lives in
:class:`~repro.telemetry.tracer.Tracer`, and all interpretation in the
exporters (:mod:`repro.telemetry.export`) and the profile report
(:mod:`repro.telemetry.profile`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "SpanBuffer"]


@dataclass
class Span:
    """One finished (or in-flight) unit of traced work.

    Attributes
    ----------
    name:
        Operation name (e.g. ``"stage:analyze"``).
    span_id:
        Identifier unique within the owning tracer.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` for a root.
    start:
        Wall-clock start, in seconds relative to the tracer's epoch.
    duration:
        Wall-clock seconds from start to finish; ``None`` while open.
    cpu_time:
        CPU seconds consumed by the executing thread between start and
        finish; ``None`` while open.
    thread_id:
        ``threading.get_ident()`` of the thread the span ran on.
    tags:
        Free-form key → value annotations (stage name, outcome, ...).
    """

    name: str
    span_id: int
    parent_id: int | None = None
    start: float = 0.0
    duration: float | None = None
    cpu_time: float | None = None
    thread_id: int = 0
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float | None:
        """Wall-clock finish relative to the tracer epoch (``None`` if open)."""
        if self.duration is None:
            return None
        return self.start + self.duration

    def to_event(self) -> dict[str, Any]:
        """A JSON-serializable record of this span (for NDJSON export)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start,
            "duration_s": self.duration,
            "cpu_s": self.cpu_time,
            "thread_id": self.thread_id,
            "tags": dict(self.tags),
        }


class SpanBuffer:
    """A thread-safe append-only buffer of finished spans.

    Parallel pipeline stages finish on worker threads; every finish
    appends under one lock, so concurrent tracing never loses or tears a
    span.  Iteration snapshots the buffer (finish order), so exporters
    can run while tracing continues.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def append(self, span: Span) -> None:
        """Record a finished span."""
        with self._lock:
            self._spans.append(span)

    def snapshot(self) -> tuple[Span, ...]:
        """The finished spans so far, in finish order (a copy)."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        """Drop every recorded span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.snapshot())
