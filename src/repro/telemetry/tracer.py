"""Hierarchical tracing: context-manager and decorator span APIs.

A :class:`Tracer` produces a tree of :class:`~repro.telemetry.spans.Span`\\ s.
Nesting is tracked per thread (a span opened inside another span on the
same thread becomes its child), and cross-thread parentage — a pipeline
stage running on a worker thread under a run-level span opened on the
main thread — is expressed by passing ``parent=`` explicitly.

The :class:`NullTracer` twin implements the same surface as cheap no-ops
(a shared singleton span, no locking, no allocation), which is what makes
``telemetry=None`` a zero-overhead default throughout the pipeline.

>>> tracer = Tracer()
>>> with tracer.span("outer") as outer:
...     with tracer.span("inner", detail="x") as inner:
...         pass
>>> [s.name for s in tracer.spans()]
['inner', 'outer']
>>> tracer.spans()[0].parent_id == outer.span_id
True
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from contextlib import AbstractContextManager
from typing import Any, Callable

from repro.telemetry.spans import Span, SpanBuffer

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


class _SpanContext(AbstractContextManager):
    """Context manager opening one span on enter and finishing it on exit."""

    __slots__ = ("_tracer", "_span", "_cpu_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._cpu_start = 0.0

    def __enter__(self) -> Span:
        span = self._span
        span.thread_id = threading.get_ident()
        span.start = self._tracer._clock() - self._tracer.epoch
        self._cpu_start = self._tracer._cpu_clock()
        self._tracer._push(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.cpu_time = self._tracer._cpu_clock() - self._cpu_start
        span.duration = self._tracer._clock() - self._tracer.epoch - span.start
        if exc is not None:
            span.tags.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._tracer._pop(span)
        return False


class Tracer:
    """Produces a hierarchical span tree with wall and CPU timings.

    Parameters
    ----------
    clock:
        Monotonic wall clock (default :func:`time.perf_counter`);
        injectable for deterministic tests.
    cpu_clock:
        Per-thread CPU clock (default :func:`time.thread_time`, falling
        back to :func:`time.process_time` where unavailable).

    Thread safety: span finish goes through a locked
    :class:`~repro.telemetry.spans.SpanBuffer`, and the active-span stack
    is thread-local, so parallel pipeline stages trace correctly.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] | None = None,
    ) -> None:
        if cpu_clock is None:
            cpu_clock = getattr(time, "thread_time", time.process_time)
        self._clock = clock
        self._cpu_clock = cpu_clock
        self.epoch = clock()
        self.buffer = SpanBuffer()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- active-span bookkeeping -------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self.buffer.append(span)

    def current_span(self) -> Span | None:
        """The innermost span open on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- public API --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True: this tracer records spans (the null twin reports False)."""
        return True

    def span(
        self, name: str, *, parent: Span | None = None, **tags: Any
    ) -> AbstractContextManager:
        """Open a span named *name*; use as ``with tracer.span(...) as s:``.

        The parent is the innermost span open on the calling thread
        unless *parent* names one explicitly (required when the caller
        runs on a different thread than the enclosing operation).  *tags*
        seed the span's annotations; more can be added on the yielded
        span while it is open.
        """
        if parent is None:
            parent = self.current_span()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            tags=dict(tags),
        )
        return _SpanContext(self, span)

    def traced(
        self, name: str | None = None, **tags: Any
    ) -> Callable[[Callable], Callable]:
        """Decorator form: trace every call of the wrapped function.

        >>> tracer = Tracer()
        >>> @tracer.traced(kind="helper")
        ... def work(n):
        ...     return n * 2
        >>> work(21)
        42
        >>> tracer.spans()[0].name
        'work'
        """

        def decorate(fn: Callable) -> Callable:
            span_name = name or getattr(fn, "__name__", "call")

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **tags):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def spans(self) -> tuple[Span, ...]:
        """Every finished span, in finish order."""
        return self.buffer.snapshot()

    def clear(self) -> None:
        """Drop recorded spans and re-anchor the epoch."""
        self.buffer.clear()
        self.epoch = self._clock()


class _NullSpanTags:
    """Write-only tag sink: accepts annotations, stores nothing."""

    __slots__ = ()

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def setdefault(self, key: str, value: Any) -> Any:
        return value

    def update(self, *args: Any, **kwargs: Any) -> None:
        pass


class _NullSpanContext(AbstractContextManager):
    """A reusable do-nothing span context (one shared instance)."""

    __slots__ = ()

    #: Shared inert span handed to every ``with`` body.
    span = Span(name="", span_id=0, duration=0.0, cpu_time=0.0)
    span.tags = _NullSpanTags()  # type: ignore[assignment]

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The zero-overhead tracer: same surface as :class:`Tracer`, no work.

    ``span()`` returns one shared, pre-built context manager — no
    allocation, no clock reads, no locking — so instrumented code paths
    cost a few attribute lookups when telemetry is off.
    """

    __slots__ = ()

    epoch = 0.0

    @property
    def enabled(self) -> bool:
        """False: spans are discarded."""
        return False

    def span(self, name: str, *, parent: Span | None = None, **tags: Any):
        """Return the shared do-nothing span context."""
        return _NULL_SPAN_CONTEXT

    def traced(self, name: str | None = None, **tags: Any):
        """Decorator form: returns the function unchanged."""

        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def current_span(self) -> Span | None:
        """Always ``None``: nothing is ever open."""
        return None

    def spans(self) -> tuple[Span, ...]:
        """Always empty."""
        return ()

    def clear(self) -> None:
        """A no-op."""


#: Process-wide shared null tracer.
NULL_TRACER = NullTracer()
