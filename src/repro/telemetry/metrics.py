"""Counters, gauges, and histograms behind a :class:`MetricsRegistry`.

Three instrument kinds cover the pipeline's observability needs:

* :class:`Counter` — monotonically increasing totals (cache hits, bytes
  written);
* :class:`Gauge` — a settable level with a high-watermark, used with
  :meth:`Gauge.add` as an in-flight counter whose ``max`` is the
  parallelism actually achieved;
* :class:`Histogram` — fixed-bucket distribution of observations (stage
  durations) with numpy-backed percentile summaries.

All instruments are thread-safe (one lock per instrument), and every
instrument has a zero-overhead null twin so the disabled-telemetry path
costs nothing (see :mod:`repro.telemetry.hooks`).

>>> registry = MetricsRegistry.for_pipeline()
>>> registry.counter("cache.hits").inc()
1
>>> registry.histogram("pipeline.stage_seconds").observe(0.25)
>>> registry.snapshot()["cache.hits"]["value"]
1
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "PIPELINE_METRICS",
    "log_spaced_bounds",
]

#: Default histogram buckets for durations in seconds: 1 ms … 30 s.
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


def log_spaced_bounds(
    lo: float, hi: float, count: int
) -> tuple[float, ...]:
    """*count* geometrically spaced histogram bucket bounds in ``[lo, hi]``.

    The fixed :data:`DEFAULT_SECONDS_BUCKETS` start at 1 ms, so every
    warm-cache request latency (tens of microseconds) collapses into the
    lowest bucket and the bucket view of the distribution degenerates to
    a single bar.  Log-spaced bounds keep constant *relative* resolution
    across scales, which is what latency distributions need.

    >>> bounds = log_spaced_bounds(1e-4, 10.0, 6)
    >>> len(bounds), bounds[0], bounds[-1]
    (6, 0.0001, 10.0)
    """
    if count < 2:
        raise TelemetryError(
            f"log_spaced_bounds needs count >= 2, got {count}"
        )
    if not (lo > 0 and hi > lo):
        raise TelemetryError(
            f"log_spaced_bounds needs 0 < lo < hi, got lo={lo}, hi={hi}"
        )
    ratio = hi / lo
    bounds = [lo * ratio ** (i / (count - 1)) for i in range(count)]
    bounds[0], bounds[-1] = lo, hi  # exact endpoints, no float drift
    return tuple(bounds)


#: Default buckets for request latencies: 10 µs … 10 s, log-spaced, so
#: sub-millisecond warm-cache responses spread over many buckets instead
#: of collapsing into the first one.
DEFAULT_LATENCY_BUCKETS = log_spaced_bounds(1e-5, 10.0, 25)

#: The metrics :meth:`MetricsRegistry.for_pipeline` pre-registers, with
#: the instrument kind each name maps to.
PIPELINE_METRICS = {
    "pipeline.stage_seconds": "histogram",
    "pipeline.stages_executed": "counter",
    "pipeline.stages_cached": "counter",
    "pipeline.parallelism": "gauge",
    "cache.hits": "counter",
    "cache.misses": "counter",
    "cache.stores": "counter",
    "cache.evictions": "counter",
    "cache.bytes_written": "counter",
    "manifest.writes": "counter",
}


class Counter:
    """A thread-safe monotonically increasing total."""

    __slots__ = ("name", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> int | float:
        """Add *amount* (must be >= 0); returns the new total."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int | float:
        """The current total."""
        return self._value

    def summary(self) -> dict[str, Any]:
        """Snapshot: ``{"kind": "counter", "value": ...}``."""
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A thread-safe settable level tracking its high-watermark.

    ``set`` records an absolute level; ``add`` moves it relatively —
    ``add(+1)``/``add(-1)`` around a work item turns the gauge into an
    in-flight counter whose :attr:`max` is the peak concurrency reached.
    """

    __slots__ = ("name", "_lock", "_value", "_max")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        """Set the level to *value*."""
        with self._lock:
            self._value = value
            self._max = max(self._max, value)

    def add(self, delta: float) -> float:
        """Move the level by *delta*; returns the new level."""
        with self._lock:
            self._value += delta
            self._max = max(self._max, self._value)
            return self._value

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    @property
    def max(self) -> float:
        """The highest level ever reached."""
        return self._max

    def summary(self) -> dict[str, Any]:
        """Snapshot: ``{"kind": "gauge", "value": ..., "max": ...}``."""
        return {"kind": self.kind, "value": self._value, "max": self._max}


class Histogram:
    """Fixed-bucket distribution with numpy-backed percentile summaries.

    Observations are counted into fixed buckets (``bounds`` are upper
    edges; one overflow bucket catches the rest) *and* retained raw, so
    :meth:`percentile` can answer exactly.  Retention is capped — after
    *max_samples* raw values the reservoir stops growing (bucket counts
    and totals stay exact) — keeping memory bounded on hot paths.
    """

    __slots__ = (
        "name", "_lock", "bounds", "_bucket_counts",
        "_samples", "_max_samples", "_count", "_total", "_max",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        *,
        bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        max_samples: int = 4096,
    ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])
        ):
            raise TelemetryError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing and non-empty: {bounds!r}"
            )
        self.name = name
        self._lock = threading.Lock()
        self.bounds = ordered
        self._bucket_counts = [0] * (len(ordered) + 1)
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for index, bound in enumerate(self.bounds):  # noqa: B007
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._total += value
            self._max = max(self._max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)

    @property
    def count(self) -> int:
        """How many observations were recorded."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    def bucket_counts(self) -> dict[str, int]:
        """Counts per bucket, keyed by ``"<=bound"`` (plus ``"+inf"``)."""
        with self._lock:
            counts = list(self._bucket_counts)
        labels = [f"<={bound:g}" for bound in self.bounds] + ["+inf"]
        return dict(zip(labels, counts))

    def percentile(self, q: float | Sequence[float]) -> Any:
        """The *q*-th percentile(s) of retained observations (numpy).

        Raises :class:`~repro.errors.TelemetryError` on an empty
        histogram — an empty distribution has no percentiles.
        """
        import numpy as np

        with self._lock:
            if not self._samples:
                raise TelemetryError(
                    f"histogram {self.name!r} has no observations"
                )
            values = np.asarray(self._samples)
        result = np.percentile(values, q)
        if isinstance(q, (int, float)):
            return float(result)
        return [float(v) for v in result]

    def percentile_estimate(self, q: float | Sequence[float]) -> Any:
        """Bucket-interpolated percentile estimate over ALL observations.

        :meth:`percentile` is exact but answers from the raw-sample
        reservoir, which stops growing after *max_samples* observations —
        on a hot path (the serve layer's request histograms) the exact
        percentiles would silently describe only the run's first
        observations.  This estimator interpolates within the bucket
        counts instead, which cover every observation; resolution is the
        bucket width, so pair it with :func:`log_spaced_bounds` for
        latency-scale accuracy.
        """
        if isinstance(q, (int, float)):
            return self._estimate_one(float(q))
        return [self._estimate_one(float(value)) for value in q]

    def _estimate_one(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(
                f"percentile must be in [0, 100], got {q}"
            )
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            observed_max = self._max
        if total == 0:
            raise TelemetryError(
                f"histogram {self.name!r} has no observations"
            )
        # Bucket i spans (edges[i], edges[i+1]]; the first bucket opens
        # at 0 for duration-style bounds, and the overflow bucket closes
        # at the observed maximum.
        first_lo = 0.0 if self.bounds[0] > 0 else self.bounds[0]
        edges = [first_lo, *self.bounds, max(observed_max, self.bounds[-1])]
        target = q / 100.0 * total
        cumulative = 0.0
        for index, count in enumerate(counts):
            if cumulative + count >= target and count:
                lo, hi = edges[index], edges[index + 1]
                fraction = (target - cumulative) / count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += count
        return float(observed_max)

    def summary(self) -> dict[str, Any]:
        """Snapshot with count/mean/max and p50/p90/p99 when non-empty.

        Percentiles are exact while every observation still fits the
        raw-sample reservoir; once the reservoir has overflowed they
        switch to the bucket-interpolated :meth:`percentile_estimate`,
        which keeps covering the full stream.
        """
        summary: dict[str, Any] = {
            "kind": self.kind,
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
            "max": self._max,
            "buckets": self.bucket_counts(),
        }
        if self._count:
            if self._count > len(self._samples):
                p50, p90, p99 = self.percentile_estimate([50, 90, 99])
            else:
                p50, p90, p99 = self.percentile([50, 90, 99])
            summary.update({"p50": p50, "p90": p90, "p99": p99})
        return summary


class MetricsRegistry:
    """Named instruments, created on first use and snapshottable.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a name creates the instrument, later calls return the same one.
    Asking for an existing name as a different kind is a
    :class:`~repro.errors.TelemetryError` (it would silently split the
    data).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    @classmethod
    def for_pipeline(cls) -> "MetricsRegistry":
        """A registry with every :data:`PIPELINE_METRICS` pre-registered."""
        registry = cls()
        for name, kind in PIPELINE_METRICS.items():
            getattr(registry, kind)(name)
        return registry

    def _get_or_create(self, name: str, kind: str, factory) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        *,
        bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """The histogram registered under *name* (created on first use)."""
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, bounds=bounds)
        )

    def names(self) -> tuple[str, ...]:
        """Every registered metric name, sorted."""
        with self._lock:
            return tuple(sorted(self._instruments))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Name → :meth:`summary` for every registered instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: instruments[name].summary() for name in sorted(instruments)
        }
