"""Plain-text profiling views: the profile report and an ASCII trace.

:func:`profile_report` turns one run's telemetry into the table a person
reads first: per-stage wall/CPU/self time, execution vs cache-hit counts,
stage-duration percentiles, achieved parallelism, and the artifact-cache
totals.  *Self* time is a span's wall time minus its children's — the
time attributable to the stage itself rather than to nested work — which
is what makes the "top stages" ranking honest for hierarchical spans.

:func:`render_trace` draws the duration events of a saved Chrome trace
(see :func:`repro.telemetry.export.load_chrome_trace`) as an ASCII
timeline, one bar per span, grouped by thread — a quick look without
leaving the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.telemetry.hooks import Telemetry
from repro.telemetry.spans import Span

__all__ = ["StageProfile", "stage_profiles", "profile_report", "render_trace"]

#: Spans named ``stage:<name>`` are pipeline stages (see the runner).
STAGE_PREFIX = "stage:"


@dataclass
class StageProfile:
    """Aggregated timings of one pipeline stage across a trace.

    Attributes
    ----------
    name:
        The stage name (without the ``stage:`` span prefix).
    executions, cache_hits:
        How many spans recorded the stage executing vs being served from
        the artifact cache.
    wall, self_time, cpu:
        Total wall seconds, wall minus nested children (self), and CPU
        seconds across all executions.
    """

    name: str
    executions: int = 0
    cache_hits: int = 0
    wall: float = 0.0
    self_time: float = 0.0
    cpu: float = 0.0
    errors: int = 0
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float | None:
        """Cache hits / lookups for this stage (``None`` when never looked up)."""
        lookups = self.executions + self.cache_hits
        if not lookups:
            return None
        return self.cache_hits / lookups


def _self_times(spans: Sequence[Span]) -> dict[int, float]:
    """Per-span self time: duration minus the sum of child durations."""
    child_total: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.duration is not None:
            child_total[span.parent_id] = (
                child_total.get(span.parent_id, 0.0) + span.duration
            )
    return {
        span.span_id: max(
            0.0, (span.duration or 0.0) - child_total.get(span.span_id, 0.0)
        )
        for span in spans
    }


def stage_profiles(spans: Sequence[Span]) -> list[StageProfile]:
    """Aggregate ``stage:*`` spans into per-stage profiles.

    Returns profiles sorted by total self time, descending — the order a
    profiler should present them in.
    """
    self_times = _self_times(spans)
    profiles: dict[str, StageProfile] = {}
    for span in spans:
        if not span.name.startswith(STAGE_PREFIX):
            continue
        name = str(span.tags.get("stage", span.name[len(STAGE_PREFIX):]))
        profile = profiles.setdefault(name, StageProfile(name))
        outcome = span.tags.get("outcome")
        if outcome == "cached":
            profile.cache_hits += 1
            continue
        profile.executions += 1
        profile.wall += span.duration or 0.0
        profile.self_time += self_times.get(span.span_id, 0.0)
        profile.cpu += span.cpu_time or 0.0
        if "error" in span.tags:
            profile.errors += 1
    return sorted(
        profiles.values(), key=lambda p: (-p.self_time, p.name)
    )


def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"  # pragma: no cover - unreachable


def profile_report(
    telemetry: Telemetry,
    *,
    top: int | None = None,
    cache_stats: Mapping[str, Any] | None = None,
) -> str:
    """The human-readable profile of one traced run.

    Parameters
    ----------
    telemetry:
        The telemetry that observed the run.  Disabled telemetry yields
        a one-line report saying so (rather than an empty table).
    top:
        Show only the *top* stages by self time (default: all).
    cache_stats:
        An :meth:`repro.pipeline.cache.ArtifactCache.stats` snapshot for
        the cache totals line; falls back to the ``cache.*`` metric
        counters when omitted.
    """
    if not telemetry.enabled:
        return (
            "profile: telemetry was disabled for this run "
            "(pass telemetry=Telemetry() or --profile)"
        )
    spans = telemetry.tracer.spans()
    profiles = stage_profiles(spans)
    if top is not None:
        shown = profiles[:top]
    else:
        shown = profiles
    snapshot = telemetry.metrics.snapshot()

    run_wall = max(
        (s.duration or 0.0 for s in spans if s.parent_id is None),
        default=sum(p.wall for p in profiles),
    )
    lines: list[str] = []
    title = (
        f"Profile — {len(spans)} span(s), "
        f"{sum(p.executions for p in profiles)} stage execution(s), "
        f"wall {run_wall * 1e3:.2f} ms"
    )
    lines.append(title)
    lines.append("=" * max(len(title), 64))

    header = (
        f"{'stage':<12} {'runs':>4} {'hits':>4} {'wall ms':>9} "
        f"{'self ms':>9} {'cpu ms':>9} {'hit ratio':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for profile in shown:
        ratio = profile.hit_ratio
        ratio_text = "-" if ratio is None else f"{ratio * 100:.0f}%"
        flag = " !" if profile.errors else ""
        lines.append(
            f"{profile.name:<12} {profile.executions:>4} "
            f"{profile.cache_hits:>4} {profile.wall * 1e3:>9.2f} "
            f"{profile.self_time * 1e3:>9.2f} {profile.cpu * 1e3:>9.2f} "
            f"{ratio_text:>9}{flag}"
        )
    if len(shown) < len(profiles):
        lines.append(
            f"... {len(profiles) - len(shown)} more stage(s) omitted "
            f"(top={top})"
        )
    if not profiles:
        lines.append("(no stage spans recorded)")

    stage_seconds = snapshot.get("pipeline.stage_seconds", {})
    if stage_seconds.get("count"):
        lines.append(
            "stage duration percentiles: "
            f"p50 {stage_seconds['p50'] * 1e3:.2f} ms, "
            f"p90 {stage_seconds['p90'] * 1e3:.2f} ms, "
            f"p99 {stage_seconds['p99'] * 1e3:.2f} ms"
        )
    parallelism = snapshot.get("pipeline.parallelism", {})
    if parallelism.get("max"):
        lines.append(
            f"parallelism achieved: {int(parallelism['max'])} "
            "concurrent stage(s)"
        )

    if cache_stats is None:
        counters = {
            key: snapshot.get(f"cache.{key}", {}).get("value", 0)
            for key in ("hits", "misses", "stores", "evictions")
        }
        counters["disk_bytes"] = snapshot.get("cache.bytes_written", {}).get(
            "value", 0
        )
        cache_stats = counters
    lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
    ratio_text = (
        f"{cache_stats.get('hits', 0) / lookups * 100:.1f}%"
        if lookups
        else "n/a"
    )
    lines.append(
        f"cache: {cache_stats.get('hits', 0)} hit(s), "
        f"{cache_stats.get('misses', 0)} miss(es) ({ratio_text} hit ratio), "
        f"{cache_stats.get('stores', 0)} store(s), "
        f"{cache_stats.get('evictions', 0)} eviction(s), "
        f"{_format_bytes(cache_stats.get('disk_bytes', 0))} on disk"
    )
    return "\n".join(lines)


def render_trace(
    events: Sequence[Mapping[str, Any]],
    *,
    width: int = 60,
    max_events: int = 80,
) -> str:
    """ASCII timeline of Chrome-trace duration events, grouped by thread.

    Each event renders as one bar positioned on a shared time axis; the
    longest *max_events* events are kept when a trace is larger, so the
    output stays terminal-sized.
    """
    if not events:
        return "(empty trace)"
    events = sorted(events, key=lambda e: (e.get("tid", 0), e.get("ts", 0)))
    if len(events) > max_events:
        keep = set(
            id(e)
            for e in sorted(
                events, key=lambda e: -float(e.get("dur", 0))
            )[:max_events]
        )
        omitted = len(events) - max_events
        events = [e for e in events if id(e) in keep]
    else:
        omitted = 0

    start = min(float(e.get("ts", 0)) for e in events)
    end = max(
        float(e.get("ts", 0)) + float(e.get("dur", 0)) for e in events
    )
    total = max(end - start, 1e-9)
    name_width = min(24, max(len(str(e.get("name", ""))) for e in events))

    lines = [
        f"trace — {len(events)} event(s), span {total / 1e3:.2f} ms"
        + (f" ({omitted} shorter event(s) omitted)" if omitted else "")
    ]
    current_tid: Any = object()
    for event in events:
        tid = event.get("tid", 0)
        if tid != current_tid:
            current_tid = tid
            lines.append(f"-- thread {tid} --")
        ts = float(event.get("ts", 0))
        dur = float(event.get("dur", 0))
        offset = int((ts - start) / total * width)
        length = max(1, int(dur / total * width))
        length = min(length, width - offset) or 1
        bar = " " * offset + "#" * length
        name = str(event.get("name", ""))[:name_width]
        lines.append(
            f"{name:<{name_width}} |{bar:<{width}}| {dur / 1e3:9.2f} ms"
        )
    return "\n".join(lines)
