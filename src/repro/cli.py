"""Command-line interface.

Installed as ``python -m repro``; every subcommand is a thin wrapper over
the library API and returns a process exit code (0 = success), so the CLI
is unit-testable by calling :func:`main` with an argv list.

Subcommands
-----------
``replicate``
    Run the full ICSC study, print the key findings, and (optionally)
    write the report and all figure/table artifacts to a directory.
    ``--profile`` prints a per-stage profile report (wall/CPU time,
    cache hit ratios) and ``--trace-out PATH`` saves a Chrome
    ``chrome://tracing`` trace of the run.
``trace PATH``
    Render a saved Chrome trace as an ASCII timeline in the terminal.
``report``
    Print the full markdown study report to stdout.
``figures --output DIR``
    Regenerate every paper figure/table artifact into a directory.
``validate``
    Load and cross-validate the dataset; print the headline counts.
``classify TEXT``
    Classify a tool description into the five research directions.
``recommend TEXT``
    Rank the 25 catalogue tools for a new application description.
``export (--json PATH | --bibtex PATH)``
    Dump the dataset as JSON, or the paper bibliography as BibTeX.
``sweep``
    Run a Monte-Carlo sweep (:mod:`repro.continuum.montecarlo`) of a
    synthetic workflow fleet over a ``scheduler × mtbf × jitter × policy``
    grid with seeded replications; print a per-cell statistics table.
    ``--grid "scheduler=heft,energy;mtbf=50,200;jitter=0.1"`` sets the
    grid axes, ``--json PATH`` dumps the full aggregation, caching and
    ledger options mirror ``replicate``.
``corpus ingest|query|dedup|stats``
    Operate a persistent :class:`repro.corpus.store.CorpusStore`:
    stream BibTeX exports into a SQLite-backed store
    (``--lenient`` skips unusable entries and reports them,
    ``--on-collision suffix|skip`` survives citation-key reuse),
    evaluate boolean queries against its inverted term index, merge
    near-duplicates with SQL-blocked detection, and print store
    statistics.  ``--record`` appends the operation to the run ledger.
``runs list|show|compare|gc``
    Inspect and gate on the persistent run ledger (``repro.obs``).
    ``replicate --record`` appends a run; ``runs compare`` exits with a
    machine-readable verdict for CI gating: 0 = no drift and no
    confirmed slowdown, 3 = result drift (artifact values changed),
    4 = confirmed perf regression.  ``scripts/check.sh --gate`` wires
    the whole record→compare loop into one command.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systematic mapping study toolkit (SC-W 2023 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_pipeline_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--parallel", action="store_true",
            help="run independent pipeline stages concurrently",
        )
        command.add_argument(
            "--cache-dir", type=Path, default=None,
            help="persist stage artifacts to this directory "
                 "(default: in-memory cache, or $REPRO_CACHE_DIR)",
        )
        command.add_argument(
            "--no-cache", action="store_true",
            help="recompute every stage, ignoring cached artifacts",
        )

    replicate = sub.add_parser(
        "replicate", help="run the full ICSC mapping study"
    )
    replicate.add_argument("--seed", type=int, default=2023)
    replicate.add_argument(
        "--output", type=Path, default=None,
        help="directory for the report and figure artifacts",
    )
    add_pipeline_options(replicate)
    replicate.add_argument(
        "--profile", action="store_true",
        help="record telemetry and print a per-stage profile report",
    )
    replicate.add_argument(
        "--trace-out", type=Path, default=None, metavar="PATH",
        help="write a Chrome trace (chrome://tracing) of the run "
             "(implies telemetry recording)",
    )
    replicate.add_argument(
        "--record", action="store_true",
        help="append this run (stage timings, artifact digests) to the "
             "run ledger for `repro runs compare` (implies telemetry "
             "recording)",
    )
    replicate.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_RUNS_DIR or "
             "~/.cache/repro/runs)",
    )

    sub.add_parser("report", help="print the markdown study report")

    figures = sub.add_parser(
        "figures", help="regenerate every figure/table artifact"
    )
    figures.add_argument("--output", type=Path, required=True)
    add_pipeline_options(figures)

    sub.add_parser("validate", help="validate the encoded dataset")

    classify = sub.add_parser(
        "classify", help="classify a tool description"
    )
    classify.add_argument("text", help="the description to classify")

    recommend = sub.add_parser(
        "recommend", help="rank catalogue tools for an application description"
    )
    recommend.add_argument("text", help="the application description")
    recommend.add_argument("-k", type=int, default=5, help="tools to list")

    trace = sub.add_parser(
        "trace", help="render a saved Chrome trace as an ASCII timeline"
    )
    trace.add_argument("path", type=Path, help="trace file (JSON)")
    trace.add_argument(
        "--width", type=int, default=60,
        help="timeline width in characters (default 60)",
    )

    export = sub.add_parser("export", help="dump datasets to disk")
    group = export.add_mutually_exclusive_group(required=True)
    group.add_argument("--json", type=Path, help="write the ecosystem as JSON")
    group.add_argument(
        "--bibtex", type=Path, help="write the paper bibliography as BibTeX"
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a Monte-Carlo sweep over the continuum simulators",
        description="Run a scheduler × mtbf × jitter × policy grid of "
                    "seeded Monte-Carlo replications over a synthetic "
                    "workflow fleet. Results are bit-identical for a "
                    "given --seed regardless of --workers.",
    )
    sweep.add_argument(
        "--grid", default="scheduler=heft", metavar="SPEC",
        help="grid axes as 'key=v1,v2;key=v1' with keys scheduler "
             "(heft|energy|round_robin), mtbf (floats or 'none'), jitter "
             "(floats), policy (restart|migrate); omitted axes default "
             "to scheduler=heft;mtbf=none;jitter=0;policy=restart",
    )
    sweep.add_argument(
        "--fleet", type=int, default=3, metavar="N",
        help="synthetic workflows in the fleet (default 3)",
    )
    sweep.add_argument(
        "--replications", type=int, default=100, metavar="R",
        help="Monte-Carlo replications per grid cell (default 100)",
    )
    sweep.add_argument(
        "--target-ci", type=float, default=None, metavar="CI",
        help="adaptive mode: stop each cell once the 95%% confidence "
             "half-width of its mean makespan is within CI (relative, "
             "e.g. 0.02 = 2%%) instead of running a fixed count; noisy "
             "cells run up to --max-replications",
    )
    sweep.add_argument(
        "--max-replications", type=int, default=None, metavar="R",
        help="replication cap per cell in adaptive mode "
             "(default: --replications; requires --target-ci)",
    )
    sweep.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="worker processes (default 0 = serial; same results either way)",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the full per-cell aggregation as JSON",
    )
    sweep.add_argument(
        "--cache-dir", type=Path, default=None,
        help="persist computed grid cells to this directory "
             "(re-running an identical sweep then executes zero simulations)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="recompute every grid cell, ignoring cached cells",
    )
    sweep.add_argument(
        "--record", action="store_true",
        help="append this sweep (cell digests, replication counters) to "
             "the run ledger (implies telemetry recording)",
    )
    sweep.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_RUNS_DIR or "
             "~/.cache/repro/runs)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve study artifacts, corpus queries, and sweep jobs "
             "over HTTP",
        description="Start the stdlib-only JSON service: memoized "
                    "/study/* artifacts, /corpus/* queries against a "
                    "corpus store, async POST /sweeps jobs, and "
                    "/metrics self-measurement. Ctrl-C shuts down "
                    "gracefully, draining queued jobs.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8000, metavar="N",
        help="bind port (default 8000; 0 = ephemeral)",
    )
    serve.add_argument(
        "--workers", type=int, default=16, metavar="W",
        help="HTTP worker threads (default 16); connections beyond the "
             "pool's backlog are shed with a 503",
    )
    serve.add_argument(
        "--job-workers", type=int, default=2, metavar="W",
        help="sweep-job worker threads (default 2)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=8, metavar="N",
        help="max queued sweep jobs before POST /sweeps answers 429 "
             "(default 8)",
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persist the artifact cache (study payloads, sweep cells) "
             "to this directory; default is memory-only",
    )
    serve.add_argument(
        "--store", type=Path, default=None, metavar="PATH",
        help="corpus store database behind the /corpus/* endpoints "
             "(omit to serve without a corpus)",
    )
    serve.add_argument(
        "--record", action="store_true",
        help="append every completed sweep job to the run ledger, "
             "exactly like `repro sweep --record`",
    )
    serve.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_RUNS_DIR or "
             "~/.cache/repro/runs)",
    )
    serve.add_argument("--seed", type=int, default=2023,
                       help="study seed for the /study/* endpoints")

    corpus = sub.add_parser(
        "corpus",
        help="operate a persistent, indexed bibliographic corpus store",
        description="Stream BibTeX into a SQLite-backed corpus store, "
                    "query it through its inverted term index, merge "
                    "near-duplicates, and inspect its size.",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def add_store(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--store", type=Path, required=True, metavar="PATH",
            help="corpus store database file (created on first ingest)",
        )

    def add_corpus_record(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--record", action="store_true",
            help="append this operation (key digests, corpus counters) "
                 "to the run ledger (implies telemetry recording)",
        )
        command.add_argument(
            "--runs-dir", type=Path, default=None, metavar="DIR",
            help="run-ledger directory (default: $REPRO_RUNS_DIR or "
                 "~/.cache/repro/runs)",
        )

    corpus_ingest = corpus_sub.add_parser(
        "ingest", help="stream BibTeX files into the store"
    )
    add_store(corpus_ingest)
    corpus_ingest.add_argument(
        "paths", nargs="+", type=Path, metavar="BIBTEX",
        help="BibTeX files to ingest, in order",
    )
    corpus_ingest.add_argument(
        "--lenient", action="store_true",
        help="skip unusable entries (missing title, malformed fields) "
             "and report them instead of aborting the import",
    )
    corpus_ingest.add_argument(
        "--on-collision", default="error",
        choices=("error", "suffix", "skip"),
        help="citation-key collision policy: error (default), suffix "
             "(store under key-2, key-3, ...), or skip",
    )
    corpus_ingest.add_argument(
        "--batch-size", type=int, default=1000, metavar="N",
        help="records per committed transaction (default 1000)",
    )
    add_corpus_record(corpus_ingest)

    corpus_query = corpus_sub.add_parser(
        "query", help="evaluate a boolean query against the store index"
    )
    add_store(corpus_query)
    corpus_query.add_argument(
        "query", help="boolean query, e.g. '(workflow OR pipeline) AND hpc'"
    )
    corpus_query.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="matches to print (default 20; 0 = all)",
    )
    corpus_query.add_argument(
        "--keys-only", action="store_true",
        help="print one citation key per line (no titles, no summary)",
    )

    corpus_dedup = corpus_sub.add_parser(
        "dedup", help="merge near-duplicate records in the store"
    )
    add_store(corpus_dedup)
    corpus_dedup.add_argument(
        "--threshold", type=float, default=0.75, metavar="F",
        help="minimum title-shingle Jaccard similarity (default 0.75)",
    )
    add_corpus_record(corpus_dedup)

    corpus_stats = corpus_sub.add_parser(
        "stats", help="print store size and index statistics"
    )
    add_store(corpus_stats)

    runs = sub.add_parser(
        "runs",
        help="inspect the run ledger and gate on cross-run regressions",
        description="Inspect the persistent run ledger written by "
                    "`repro replicate --record`.",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def add_runs_dir(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--runs-dir", type=Path, default=None, metavar="DIR",
            help="run-ledger directory (default: $REPRO_RUNS_DIR or "
                 "~/.cache/repro/runs)",
        )

    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    add_runs_dir(runs_list)
    runs_list.add_argument(
        "-n", type=int, default=0, metavar="N",
        help="show only the newest N runs (default: all)",
    )
    runs_list.add_argument(
        "--json", action="store_true", help="emit NDJSON instead of a table"
    )

    runs_show = runs_sub.add_parser("show", help="show one recorded run")
    add_runs_dir(runs_show)
    runs_show.add_argument(
        "run_id", nargs="?", default=None,
        help="run id or unique prefix (default: the newest run)",
    )
    runs_show.add_argument(
        "--json", action="store_true", help="emit the full record as JSON"
    )

    runs_compare = runs_sub.add_parser(
        "compare",
        help="compare two runs (or bench suites); exit 0/3/4",
        description="Compare the newest run against its predecessor(s) "
                    "and exit with a machine-readable verdict.",
        epilog="exit codes: 0 = no value drift, no confirmed slowdown "
               "(benign-ordering findings allowed); 3 = result drift — an "
               "artifact's values changed; 4 = confirmed perf regression; "
               "1 = error (empty ledger, unknown run id); 2 = usage.",
    )
    add_runs_dir(runs_compare)
    runs_compare.add_argument(
        "baseline", nargs="?", default=None,
        help="baseline run id/prefix (default: the candidate's predecessor)",
    )
    runs_compare.add_argument(
        "candidate", nargs="?", default=None,
        help="candidate run id/prefix (default: the newest run)",
    )
    runs_compare.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="use up to N baseline records as the significance window "
             "(default 5; 1 disables the significance test)",
    )
    runs_compare.add_argument(
        "--max-slowdown", type=float, default=0.5, metavar="FRAC",
        help="fractional slowdown budget per stage (default 0.5 = +50%%)",
    )
    runs_compare.add_argument(
        "--bench", nargs=2, type=Path, default=None,
        metavar=("BASELINE", "CANDIDATE"),
        help="compare two output/BENCH_<suite>.json files from "
             "scripts/check.sh --bench instead of ledger runs",
    )
    runs_compare.add_argument(
        "--json", action="store_true",
        help="emit the comparison as JSON (exit code still applies)",
    )

    runs_gc = runs_sub.add_parser(
        "gc", help="prune the ledger to the newest N runs"
    )
    add_runs_dir(runs_gc)
    runs_gc.add_argument(
        "--keep", type=int, required=True, metavar="N",
        help="how many of the newest runs to keep",
    )
    return parser


def _resolve_cache(args: argparse.Namespace):
    """The artifact cache a subcommand should run against."""
    from repro.pipeline import ArtifactCache
    from repro.pipeline.study import process_cache

    if getattr(args, "no_cache", False):
        return ArtifactCache()  # ephemeral: dedups within the run only
    if getattr(args, "cache_dir", None) is not None:
        return ArtifactCache(args.cache_dir)
    return process_cache()


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro import workflow_directions
    from repro.pipeline.study import render_icsc_artifacts, run_icsc_pipeline
    from repro.reporting import study_report
    from repro.viz import ascii_distribution

    telemetry = None
    if args.profile or args.trace_out is not None or args.record:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    registry = None
    if args.record:
        from repro.obs import RunRegistry

        registry = RunRegistry(args.runs_dir, logger=telemetry.log)
    cache = _resolve_cache(args)
    results, run = run_icsc_pipeline(
        seed=args.seed, cache=cache, parallel=args.parallel,
        telemetry=telemetry, registry=registry,
    )
    scheme = workflow_directions()
    names = dict(zip(scheme.keys, scheme.names))
    print("Fig. 2 — tool distribution")
    print(ascii_distribution(results.q2.distribution, label_names=names))
    print("\nFig. 4 — selection votes")
    print(ascii_distribution(results.q3.votes, label_names=names))
    print(
        f"\nmost demanded: {names[results.q3.top_direction]}; "
        f"least demanded: {names[results.q3.bottom_direction]}"
    )
    if results.classifier_evaluation is not None:
        print(
            "classifier check: accuracy "
            f"{results.classifier_evaluation.accuracy:.2f}"
        )
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)
        (args.output / "report.md").write_text(
            study_report(results, scheme), encoding="utf-8"
        )
        artifacts = render_icsc_artifacts(
            args.output, cache=cache, parallel=args.parallel,
            telemetry=telemetry,
        )
        print(f"wrote report.md and {len(artifacts)} artifacts to {args.output}")
    print(
        f"pipeline: {len(run.executed)} stage(s) executed, "
        f"{len(run.cached)} from cache"
    )
    if telemetry is not None:
        from repro.telemetry import profile_report, write_chrome_trace

        if args.profile:
            cache_stats = cache.stats() if hasattr(cache, "stats") else None
            print()
            print(profile_report(telemetry, cache_stats=cache_stats))
        if args.trace_out is not None:
            path = write_chrome_trace(telemetry, args.trace_out)
            print(f"wrote Chrome trace to {path} "
                  "(open in chrome://tracing or ui.perfetto.dev)")
    if registry is not None:
        newest = registry.last(1)[0]
        print(
            f"recorded run {newest.run_id} "
            f"({len(newest.artifacts)} artifacts) to {registry.path}"
        )
    return 0


def _cmd_report(_: argparse.Namespace) -> int:
    from repro import run_icsc_study, workflow_directions
    from repro.reporting import study_report

    print(study_report(run_icsc_study(), workflow_directions()))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.pipeline.study import render_icsc_artifacts

    artifacts = render_icsc_artifacts(
        args.output, cache=_resolve_cache(args), parallel=args.parallel
    )
    for name in sorted(artifacts):
        print(f"{name}: {artifacts[name]}")
    return 0


def _cmd_validate(_: argparse.Namespace) -> int:
    from repro.data import icsc_ecosystem
    from repro.errors import ReproError

    try:
        _, tools, applications, scheme = icsc_ecosystem()
    except ReproError as exc:
        print(f"dataset INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"dataset OK: {len(tools)} tools, {len(applications)} applications, "
        f"{len(tools.institutions())} tool institutions, "
        f"{len(applications.providers())} application providers, "
        f"{len(scheme)} directions"
    )
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro import workflow_directions
    from repro.core.classification import KeywordClassifier
    from repro.errors import ReproError

    scheme = workflow_directions()
    try:
        result = KeywordClassifier(scheme).classify(args.text)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    names = dict(zip(scheme.keys, scheme.names))
    print(f"direction: {names[result.label]} "
          f"(confidence {result.confidence:.2f})")
    for key, score in result.top(len(scheme)):
        print(f"  {names[key]}: {score:g}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.continuum.capabilities import capability_matrix
    from repro.core.entities import Application
    from repro.continuum.requirements import requirement_vector
    from repro.data import icsc_ecosystem
    from repro.errors import ReproError
    from repro.text.vectorize import TfidfModel

    if args.k < 1:
        print("error: -k must be >= 1", file=sys.stderr)
        return 1
    _, tools, _, scheme = icsc_ecosystem()
    try:
        application = Application(
            "cli-query", "CLI query", "9.9", description=args.text
        )
        requirements = requirement_vector(application, scheme)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    capabilities, keys = capability_matrix(tools, scheme)
    cap_norm = capabilities / np.linalg.norm(capabilities, axis=1, keepdims=True)
    direction_scores = (requirements / np.linalg.norm(requirements)) @ cap_norm.T
    tfidf = TfidfModel([tools[k].description for k in keys])
    text_scores = tfidf.similarity([args.text])[0]
    scores = 0.7 * direction_scores + 0.3 * text_scores
    names = dict(zip(scheme.keys, scheme.names))
    for rank, index in enumerate(np.argsort(-scores)[: args.k], start=1):
        tool = tools[keys[index]]
        print(f"{rank}. {tool.name} [{names[tool.primary_direction]}] "
              f"score={scores[index]:.3f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import load_chrome_trace, render_trace

    events = load_chrome_trace(args.path)
    print(render_trace(events, width=max(10, args.width)))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.json is not None:
        from repro.io.jsonio import save_ecosystem
        from repro.pipeline.study import build_icsc_pipeline, process_cache

        collected = build_icsc_pipeline().run(
            ["collect"], cache=process_cache()
        )["collect"]
        save_ecosystem(
            args.json,
            collected["institutions"],
            collected["tools"],
            collected["applications"],
            collected["protocol"].scheme,
        )
        print(f"wrote {args.json}")
        return 0
    from repro.data.bibliography import bibliography_bibtex

    args.bibtex.write_text(bibliography_bibtex(), encoding="utf-8")
    print(f"wrote {args.bibtex}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.continuum import build_sweep_spec, run_sweep
    from repro.pipeline import ArtifactCache

    telemetry = None
    registry = None
    if args.record:
        from repro.obs import RunRegistry
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        registry = RunRegistry(args.runs_dir, logger=telemetry.log)
    cache = None
    if not args.no_cache:
        cache = ArtifactCache(args.cache_dir, telemetry=telemetry)

    # The same spec builder POST /sweeps uses, so an HTTP sweep and a
    # CLI sweep with the same arguments are bit-identical.
    spec = build_sweep_spec(
        grid=args.grid,
        fleet=args.fleet,
        replications=args.replications,
        seed=args.seed,
        target_ci=args.target_ci,
        max_replications=args.max_replications,
    )
    result = run_sweep(
        spec, workers=args.workers, cache=cache,
        telemetry=telemetry, registry=registry,
    )

    header = (
        f"{'cell':<52} {'mk mean':>9} {'mk p99':>9} "
        f"{'slowdown':>9} {'retries':>8}"
    )
    print(header)
    for stats in result.cells:
        makespan = stats.metrics["makespan"]
        print(
            f"{stats.cell.cell_id:<52} {makespan.mean:>9.3f} "
            f"{makespan.p99:>9.3f} {stats.metrics['slowdown'].mean:>9.3f} "
            f"{stats.metrics['retries'].mean:>8.2f}"
        )
    if spec.adaptive:
        print(
            f"{len(result.cells)} cell(s), adaptive to target-ci "
            f"{spec.target_ci:g} (cap {spec.replication_cap}): "
            f"{len(result.computed)} computed, {len(result.cached)} from "
            f"cache ({result.n_replications_run} simulations run, "
            f"{result.n_replications_saved} saved)"
        )
    else:
        print(
            f"{len(result.cells)} cell(s) × {spec.replications} replication(s): "
            f"{len(result.computed)} computed, {len(result.cached)} from cache "
            f"({result.n_replications_run} simulations run)"
        )
    if args.json is not None:
        import json

        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}")
    if registry is not None:
        newest = registry.last(1)[0]
        print(f"recorded run {newest.run_id} to {registry.path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServerHandle, build_context, serve_forever

    ctx = build_context(
        cache_dir=args.cache_dir,
        runs_dir=args.runs_dir,
        record=args.record,
        store_path=args.store,
        seed=args.seed,
        job_workers=args.job_workers,
        queue_size=args.queue_size,
    )
    if args.port == 0:
        # Ephemeral port: print where we landed before blocking.
        handle = ServerHandle(
            ctx, host=args.host, port=0, workers=args.workers
        )
        print(f"serving on {handle.url} (Ctrl-C to stop)", flush=True)
        try:
            import time as _time

            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            handle.close()
        return 0
    print(
        f"serving on http://{args.host}:{args.port} (Ctrl-C to stop)",
        flush=True,
    )
    serve_forever(
        ctx, host=args.host, port=args.port, workers=args.workers
    )
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus.store import CorpusStore

    telemetry = None
    registry = None
    if getattr(args, "record", False):
        from repro.obs import RunRegistry
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        registry = RunRegistry(args.runs_dir, logger=telemetry.log)

    def record_operation(store: CorpusStore, operation: str, summary) -> None:
        if registry is None:
            return
        from repro.obs import build_corpus_record

        record = registry.record(
            build_corpus_record(
                store, telemetry=telemetry, operation=operation,
                summary=summary,
            )
        )
        print(f"recorded run {record.run_id} to {registry.path}")

    if args.corpus_command != "ingest" and not args.store.exists():
        # Only ingest may create a store; a query/dedup/stats typo must
        # not silently materialize an empty database and report it.
        from repro.errors import CorpusStoreError

        raise CorpusStoreError(f"no corpus store at '{args.store}'")

    with CorpusStore(args.store, telemetry=telemetry) as store:
        if args.corpus_command == "ingest":
            for path in args.paths:
                report = store.ingest_bibtex(
                    path.read_text(encoding="utf-8"),
                    strict=not args.lenient,
                    on_collision=args.on_collision,
                    batch_size=args.batch_size,
                )
                line = f"{path}: {report.ingested} ingested"
                if report.renamed:
                    line += f", {report.renamed} renamed"
                if report.skipped:
                    line += f", {report.skipped} skipped"
                if report.rejected:
                    line += f", {len(report.rejected)} rejected"
                print(line)
                for entry in report.rejected:
                    print(f"  rejected {entry.key or '(no key)'}: "
                          f"{entry.reason}")
                record_operation(store, "ingest", report.to_dict())
            print(f"store: {len(store)} records at {args.store}")
            return 0

        if args.corpus_command == "query":
            hits = store.search(args.query)
            shown = hits if args.limit == 0 else hits[: args.limit]
            if args.keys_only:
                for pub in shown:
                    print(pub.key)
                return 0
            for pub in shown:
                year = pub.year if pub.year is not None else "????"
                print(f"{pub.key:<24} {year}  {pub.title}")
            suffix = "" if len(shown) == len(hits) else \
                f" (showing {len(shown)})"
            print(f"{len(hits)} match(es) in {len(store)} records{suffix}")
            return 0

        if args.corpus_command == "dedup":
            before = len(store)
            summary = store.deduplicate(threshold=args.threshold)
            print(
                f"{summary.clusters} cluster(s) merged, "
                f"{summary.dropped} record(s) dropped "
                f"({summary.pairs_scored} candidate pairs scored): "
                f"{before} -> {len(store)} records"
            )
            record_operation(store, "dedup", summary.to_dict())
            return 0

        assert args.corpus_command == "stats"
        stats = store.stats()
        print(f"records   {stats['records']}")
        print(f"terms     {stats['terms']}")
        print(f"postings  {stats['postings']}")
        if stats["year_range"] is not None:
            first, last = stats["year_range"]
            print(f"years     {first}-{last}")
        print(f"path      {stats['path']}")
        return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import RunRegistry, compare_bench_suites, compare_runs

    registry = RunRegistry(args.runs_dir)

    if args.runs_command == "list":
        records = registry.runs()
        if args.n > 0:
            records = records[-args.n:]
        if args.json:
            for record in records:
                print(json.dumps(record.to_dict(), sort_keys=True))
            return 0
        if not records:
            print(f"no runs recorded in {registry.path}")
            return 0
        print(f"{'run id':<26} {'kind':<14} {'created (UTC)':<21} "
              f"{'wall':>9} artifacts")
        for record in records:
            print(
                f"{record.run_id:<26} {record.kind:<14} "
                f"{record.created_utc:<21} {record.wall_s:>8.3f}s "
                f"{len(record.artifacts)}"
            )
        return 0

    if args.runs_command == "show":
        if args.run_id is not None:
            record = registry.get(args.run_id)
        else:
            newest = registry.last(1)
            if not newest:
                print(f"error: no runs recorded in {registry.path}",
                      file=sys.stderr)
                return 1
            record = newest[0]
        if args.json:
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
            return 0
        print(f"run      {record.run_id} ({record.kind})")
        print(f"created  {record.created_utc}")
        print(f"dataset  {record.dataset_version[:16]}…")
        print(f"config   {record.config_digest[:16]}…")
        print(f"wall     {record.wall_s:.3f}s")
        for name in sorted(record.stages):
            stats = record.stages[name]
            print(
                f"  stage {name:<10} wall {stats.wall_s:>8.3f}s  "
                f"cpu {stats.cpu_s:>8.3f}s  exec {stats.executions}  "
                f"hit-ratio {stats.hit_ratio:.2f}"
            )
        for name in sorted(record.metrics):
            print(f"  metric {name} = {record.metrics[name]:g}")
        for name in sorted(record.artifacts):
            digest_value = record.artifacts[name]
            print(
                f"  artifact {name:<18} sha256 {digest_value.sha256[:16]}… "
                f"({digest_value.n_items} items)"
            )
        return 0

    if args.runs_command == "compare":
        if args.bench is not None:
            payloads = []
            for path in args.bench:
                try:
                    payloads.append(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, json.JSONDecodeError) as exc:
                    print(f"error: cannot read bench file {path}: {exc}",
                          file=sys.stderr)
                    return 1
            comparison = compare_bench_suites(
                payloads[0], payloads[1], max_slowdown=args.max_slowdown
            )
        else:
            if args.window < 1:
                print("error: --window must be >= 1", file=sys.stderr)
                return 1
            records = registry.runs()
            if args.candidate is not None:
                candidate = registry.get(args.candidate)
            elif records:
                candidate = records[-1]
            else:
                print(f"error: no runs recorded in {registry.path}",
                      file=sys.stderr)
                return 1
            if args.baseline is not None:
                baseline: list = [registry.get(args.baseline)]
            else:
                # Ledger position, not timestamps, decides "earlier":
                # successive runs can share a second-resolution stamp.
                position = max(
                    i for i, r in enumerate(records)
                    if r.run_id == candidate.run_id
                )
                earlier = records[:position]
                if not earlier:
                    print(
                        "nothing to compare against: "
                        f"{candidate.run_id} is the only run in the ledger"
                    )
                    return 0
                baseline = earlier[-args.window:]
            comparison = compare_runs(
                baseline, candidate, max_slowdown=args.max_slowdown
            )
        if args.json:
            print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
        else:
            print(comparison.report())
        return comparison.exit_code()

    assert args.runs_command == "gc"
    dropped = registry.gc(args.keep)
    print(f"dropped {dropped} ledger line(s), kept the newest {args.keep}")
    return 0


_COMMANDS = {
    "replicate": _cmd_replicate,
    "report": _cmd_report,
    "figures": _cmd_figures,
    "validate": _cmd_validate,
    "classify": _cmd_classify,
    "recommend": _cmd_recommend,
    "trace": _cmd_trace,
    "export": _cmd_export,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "corpus": _cmd_corpus,
    "runs": _cmd_runs,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: conventional silent exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
