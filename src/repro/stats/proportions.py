"""Proportion statistics: intervals and comparisons for category shares.

The mapping study's headline numbers are proportions of small samples (3 of
25 tools, 11 of 28 votes).  This module provides the estimators a careful
report attaches to such numbers:

* :func:`wilson_interval` — the Wilson score interval, well-behaved at
  small *n* and extreme proportions (unlike the naive Wald interval);
* :func:`jeffreys_interval` — the Bayesian Jeffreys prior interval;
* :func:`two_proportion_test` — pooled z-test for share equality between
  two samples;
* :func:`share_table` — all shares of a frequency table with Wilson CIs.
"""

from __future__ import annotations

import math

from scipy import stats as sps

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable
from repro.stats.inference import TestResult

__all__ = [
    "wilson_interval",
    "jeffreys_interval",
    "two_proportion_test",
    "share_table",
]


def _check_counts(successes: int, trials: int) -> None:
    if trials <= 0:
        raise StatsError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise StatsError(
            f"successes must be in [0, {trials}], got {successes}"
        )


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    >>> low, high = wilson_interval(11, 28)
    >>> low < 11 / 28 < high
    True
    """
    _check_counts(successes, trials)
    if not 0 < confidence < 1:
        raise StatsError("confidence must be in (0, 1)")
    z = float(sps.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    # The boundary cases are exactly 0/1 analytically; clamp away the float
    # noise the two different computations introduce.
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return low, high


def jeffreys_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> tuple[float, float]:
    """Jeffreys (Beta(1/2, 1/2) prior) equal-tailed credible interval.

    The boundary conventions follow Brown, Cai & DasGupta (2001): the lower
    limit is 0 when ``successes == 0`` and the upper limit 1 when
    ``successes == trials``.
    """
    _check_counts(successes, trials)
    if not 0 < confidence < 1:
        raise StatsError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    posterior = sps.beta(successes + 0.5, trials - successes + 0.5)
    low = 0.0 if successes == 0 else float(posterior.ppf(alpha / 2))
    high = 1.0 if successes == trials else float(posterior.ppf(1 - alpha / 2))
    return low, high


def two_proportion_test(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> TestResult:
    """Pooled two-sided z-test for equality of two proportions.

    Suitable for questions like "is orchestration's supply share (7/25)
    different from its demand share (11/28)?".
    """
    _check_counts(successes_a, trials_a)
    _check_counts(successes_b, trials_b)
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    if pooled in (0.0, 1.0):
        # Identical degenerate proportions: no evidence of difference.
        return TestResult(0.0, 1.0, 0, "two-proportion z")
    se = math.sqrt(pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b))
    z = (successes_a / trials_a - successes_b / trials_b) / se
    p_value = 2.0 * float(sps.norm.sf(abs(z)))
    return TestResult(float(z), min(p_value, 1.0), 0, "two-proportion z")


def share_table(
    table: FrequencyTable, *, confidence: float = 0.95
) -> dict[object, tuple[float, float, float]]:
    """Every category's share with its Wilson interval.

    Returns label → ``(share, low, high)``.
    """
    total = table.total
    if total == 0:
        raise StatsError("cannot compute shares of an all-zero table")
    out: dict[object, tuple[float, float, float]] = {}
    for label, count in table.items():
        low, high = wilson_interval(count, total, confidence=confidence)
        out[label] = (count / total, low, high)
    return out
