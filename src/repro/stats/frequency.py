"""Frequency tables and cross-tabulations.

:class:`FrequencyTable` is the numeric backbone of the paper's figures: the
Fig. 2 / Fig. 4 pie charts are frequency tables over the five research
directions, and the Fig. 3 histogram is a frequency table over coverage
counts.  The class keeps category order stable (a mapping-study table is
meaningless if rows silently reorder) and exposes vectorized shares,
percentages, and ranking.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
import numpy as np

from repro.errors import StatsError

__all__ = ["FrequencyTable", "crosstab"]


class FrequencyTable:
    """An ordered category → count table.

    Parameters
    ----------
    counts:
        Mapping from category label to a non-negative integer count.
        Iteration order of the mapping fixes the table order.

    Examples
    --------
    >>> t = FrequencyTable({"a": 3, "b": 7})
    >>> t.total
    10
    >>> t.share("b")
    0.7
    """

    def __init__(self, counts: Mapping[Hashable, int]) -> None:
        if not counts:
            raise StatsError("frequency table needs at least one category")
        self._labels: tuple[Hashable, ...] = tuple(counts)
        values = np.asarray(list(counts.values()), dtype=np.int64)
        if (values < 0).any():
            raise StatsError("counts must be non-negative")
        self._values = values
        self._values.setflags(write=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_observations(
        cls,
        observations: Iterable[Hashable],
        *,
        order: Sequence[Hashable] | None = None,
    ) -> "FrequencyTable":
        """Tally raw observations.

        With *order*, the table contains exactly those categories in that
        order (zero-filled where unobserved) and observations outside *order*
        raise :class:`StatsError` — the strictness catches typos in category
        keys early.
        """
        tally: dict[Hashable, int] = {}
        if order is not None:
            tally = {label: 0 for label in order}
        for obs in observations:
            if order is not None and obs not in tally:
                raise StatsError(f"observation {obs!r} outside fixed order")
            tally[obs] = tally.get(obs, 0) + 1
        if not tally:
            raise StatsError("no observations and no fixed order given")
        return cls(tally)

    # -- accessors ----------------------------------------------------------

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """Category labels in table order."""
        return self._labels

    @property
    def values(self) -> np.ndarray:
        """Read-only count vector aligned with :attr:`labels`."""
        return self._values

    @property
    def total(self) -> int:
        """Sum of all counts."""
        return int(self._values.sum())

    def __len__(self) -> int:
        return len(self._labels)

    def __getitem__(self, label: Hashable) -> int:
        try:
            return int(self._values[self._labels.index(label)])
        except ValueError:
            raise StatsError(f"unknown category {label!r}") from None

    def __contains__(self, label: object) -> bool:
        return label in self._labels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyTable):
            return NotImplemented
        return self._labels == other._labels and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:
        return hash((self._labels, self._values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{l!r}: {v}" for l, v in self.items())
        return f"FrequencyTable({{{inner}}})"

    def items(self) -> list[tuple[Hashable, int]]:
        """``(label, count)`` pairs in table order."""
        return [(l, int(v)) for l, v in zip(self._labels, self._values)]

    def to_dict(self) -> dict[Hashable, int]:
        """Plain ``dict`` copy in table order."""
        return dict(self.items())

    # -- derived quantities --------------------------------------------------

    def shares(self) -> np.ndarray:
        """Fraction of the total per category (vector summing to 1)."""
        if self.total == 0:
            raise StatsError("shares undefined for an all-zero table")
        return self._values / self.total

    def share(self, label: Hashable) -> float:
        """Fraction of the total held by *label*."""
        return float(self[label] / self.total)

    def percentages(self, *, decimals: int = 1) -> dict[Hashable, float]:
        """Percentage per category, rounded to *decimals* places."""
        shares = self.shares() * 100.0
        return {
            l: float(round(s, decimals)) for l, s in zip(self._labels, shares)
        }

    def ranked(self, *, descending: bool = True) -> list[tuple[Hashable, int]]:
        """Categories sorted by count (stable within ties)."""
        order = np.argsort(
            -self._values if descending else self._values, kind="stable"
        )
        return [(self._labels[i], int(self._values[i])) for i in order]

    def mode(self) -> Hashable:
        """Label with the highest count (first on ties)."""
        return self.ranked()[0][0]

    def argmin(self) -> Hashable:
        """Label with the lowest count (first on ties)."""
        return self.ranked(descending=False)[0][0]

    def nonzero(self) -> "FrequencyTable":
        """New table keeping only categories with a positive count."""
        kept = {l: int(v) for l, v in self.items() if v > 0}
        if not kept:
            raise StatsError("all categories are zero")
        return FrequencyTable(kept)

    def merge(self, other: "FrequencyTable") -> "FrequencyTable":
        """Add counts of *other*; categories are unioned, self order first."""
        merged = self.to_dict()
        for label, value in other.items():
            merged[label] = merged.get(label, 0) + value
        return FrequencyTable(merged)


def crosstab(
    rows: Sequence[Hashable],
    cols: Sequence[Hashable],
    *,
    row_order: Sequence[Hashable] | None = None,
    col_order: Sequence[Hashable] | None = None,
) -> tuple[np.ndarray, tuple[Hashable, ...], tuple[Hashable, ...]]:
    """Cross-tabulate two aligned observation sequences.

    Returns ``(matrix, row_labels, col_labels)`` where ``matrix[i, j]`` counts
    observations with row label ``row_labels[i]`` and column label
    ``col_labels[j]``.  Label order is first-appearance order unless fixed by
    *row_order* / *col_order*.
    """
    if len(rows) != len(cols):
        raise StatsError(
            f"row/column observation lengths differ: {len(rows)} vs {len(cols)}"
        )
    if len(rows) == 0 and (row_order is None or col_order is None):
        raise StatsError("empty observations need explicit row and column order")

    def _index(values: Sequence[Hashable], order: Sequence[Hashable] | None):
        if order is None:
            labels: dict[Hashable, int] = {}
            for v in values:
                labels.setdefault(v, len(labels))
            return labels
        labels = {label: i for i, label in enumerate(order)}
        for v in values:
            if v not in labels:
                raise StatsError(f"observation {v!r} outside fixed order")
        return labels

    row_index = _index(rows, row_order)
    col_index = _index(cols, col_order)
    matrix = np.zeros((len(row_index), len(col_index)), dtype=np.int64)
    # Vectorized bincount over flattened (row, col) codes.
    if rows:
        r = np.fromiter((row_index[v] for v in rows), dtype=np.int64, count=len(rows))
        c = np.fromiter((col_index[v] for v in cols), dtype=np.int64, count=len(cols))
        flat = np.bincount(r * len(col_index) + c, minlength=matrix.size)
        matrix = flat.reshape(matrix.shape).astype(np.int64)
    return matrix, tuple(row_index), tuple(col_index)
