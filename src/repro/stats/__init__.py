"""Statistics substrate: frequency tables, diversity, inference, rank agreement."""

from repro.stats.correlation import (
    align_tables,
    kendall_tau,
    rank_biased_overlap,
    spearman_rho,
)
from repro.stats.diversity import (
    evenness_report,
    gini_coefficient,
    herfindahl_index,
    shannon_entropy,
    shannon_evenness,
    simpson_index,
)
from repro.stats.frequency import FrequencyTable, crosstab
from repro.stats.proportions import (
    jeffreys_interval,
    share_table,
    two_proportion_test,
    wilson_interval,
)
from repro.stats.inference import (
    TestResult,
    bootstrap_share_ci,
    chi_square_gof,
    chi_square_homogeneity,
    g_test_gof,
    permutation_tvd_test,
    total_variation_distance,
)
from repro.stats.sketch import QuantileSketch
from repro.stats.fanout import (
    StatCell,
    StatSpec,
    StatSweepResult,
    StatTask,
    adaptive_bootstrap_share_ci,
    adaptive_permutation_mean_test,
    adaptive_permutation_tvd_test,
    run_stat_sweep,
    share_ci_tasks,
)

__all__ = [
    "FrequencyTable",
    "QuantileSketch",
    "StatCell",
    "StatSpec",
    "StatSweepResult",
    "StatTask",
    "TestResult",
    "adaptive_bootstrap_share_ci",
    "adaptive_permutation_mean_test",
    "adaptive_permutation_tvd_test",
    "run_stat_sweep",
    "share_ci_tasks",
    "align_tables",
    "bootstrap_share_ci",
    "chi_square_gof",
    "chi_square_homogeneity",
    "crosstab",
    "evenness_report",
    "g_test_gof",
    "gini_coefficient",
    "herfindahl_index",
    "kendall_tau",
    "permutation_tvd_test",
    "rank_biased_overlap",
    "shannon_entropy",
    "shannon_evenness",
    "simpson_index",
    "spearman_rho",
    "total_variation_distance",
    "jeffreys_interval",
    "share_table",
    "two_proportion_test",
    "wilson_interval",
]
