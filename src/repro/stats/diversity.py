"""Diversity and concentration indices over frequency tables.

The paper's Q2 finding — "the effort is quite balanced among the different
research directions" — and its Q3 finding — "the distribution here is much
more unbalanced" — are statements about the *evenness* of two distributions.
This module quantifies them: Shannon entropy/evenness, Simpson diversity,
the Gini coefficient, and the Herfindahl–Hirschman concentration index.

All functions accept either a :class:`~repro.stats.frequency.FrequencyTable`
or a raw count vector and are vectorized with numpy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable

__all__ = [
    "shannon_entropy",
    "shannon_evenness",
    "simpson_index",
    "gini_coefficient",
    "herfindahl_index",
    "evenness_report",
]

CountsLike = FrequencyTable | Sequence[int] | np.ndarray


def _as_counts(counts: CountsLike) -> np.ndarray:
    if isinstance(counts, FrequencyTable):
        values = counts.values.astype(np.float64)
    else:
        values = np.asarray(counts, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise StatsError("counts must be a non-empty 1-D vector")
    if (values < 0).any():
        raise StatsError("counts must be non-negative")
    if values.sum() == 0:
        raise StatsError("counts must not be all zero")
    return values


def shannon_entropy(counts: CountsLike, *, base: float = np.e) -> float:
    """Shannon entropy ``H = -sum(p * log p)`` of the count distribution.

    Zero counts contribute nothing (``0 * log 0 == 0`` by convention).
    """
    values = _as_counts(counts)
    p = values / values.sum()
    nz = p[p > 0]
    return float(-(nz * (np.log(nz) / np.log(base))).sum())


def shannon_evenness(counts: CountsLike) -> float:
    """Pielou evenness ``J = H / log(k)`` in ``[0, 1]``.

    1 means perfectly balanced across the ``k`` categories; a table with a
    single category is perfectly even by convention.
    """
    values = _as_counts(counts)
    k = values.size
    if k == 1:
        return 1.0
    return shannon_entropy(values) / float(np.log(k))


def simpson_index(counts: CountsLike) -> float:
    """Simpson diversity ``1 - sum(p^2)`` in ``[0, 1 - 1/k]``."""
    values = _as_counts(counts)
    p = values / values.sum()
    return float(1.0 - (p**2).sum())


def herfindahl_index(counts: CountsLike) -> float:
    """Herfindahl–Hirschman concentration ``sum(p^2)`` in ``[1/k, 1]``."""
    values = _as_counts(counts)
    p = values / values.sum()
    return float((p**2).sum())


def gini_coefficient(counts: CountsLike) -> float:
    """Gini coefficient of the count distribution, in ``[0, 1)``.

    0 means all categories hold equal counts; values near 1 mean a single
    category dominates.  Computed with the sorted-rank formula, which is
    exact for discrete distributions.
    """
    values = np.sort(_as_counts(counts))
    n = values.size
    if n == 1:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(
        (2.0 * (ranks * values).sum() - (n + 1) * values.sum())
        / (n * values.sum())
    )


def evenness_report(counts: CountsLike) -> dict[str, float]:
    """All indices at once, keyed by name — used by the Q2/Q3 analyzers."""
    return {
        "shannon_entropy": shannon_entropy(counts),
        "shannon_evenness": shannon_evenness(counts),
        "simpson_index": simpson_index(counts),
        "gini_coefficient": gini_coefficient(counts),
        "herfindahl_index": herfindahl_index(counts),
    }
