"""Rank-agreement measures between category orderings.

Used to compare how two analyses rank the research directions — e.g. supply
(Fig. 2) versus demand (Fig. 4) — beyond eyeballing pie charts.  Provides
Spearman's rho and Kendall's tau over aligned score vectors, plus rank-biased
overlap (RBO) for top-weighted ranking comparison, implemented from scratch.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable

__all__ = ["spearman_rho", "kendall_tau", "rank_biased_overlap", "align_tables"]


def align_tables(
    a: FrequencyTable, b: FrequencyTable
) -> tuple[np.ndarray, np.ndarray, tuple[Hashable, ...]]:
    """Align two frequency tables on their common label order.

    Both tables must contain exactly the same labels; order of *a* wins.
    Returns ``(values_a, values_b, labels)``.
    """
    if set(a.labels) != set(b.labels):
        raise StatsError(
            f"tables cover different categories: {set(a.labels) ^ set(b.labels)}"
        )
    values_b = np.asarray([b[label] for label in a.labels], dtype=np.float64)
    return a.values.astype(np.float64), values_b, a.labels


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Spearman rank correlation and p-value for two aligned score vectors."""
    va, vb = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if va.shape != vb.shape or va.ndim != 1 or va.size < 3:
        raise StatsError("need two aligned 1-D vectors of length >= 3")
    result = sps.spearmanr(va, vb)
    return float(result.statistic), float(result.pvalue)


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Kendall's tau-b and p-value for two aligned score vectors."""
    va, vb = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    if va.shape != vb.shape or va.ndim != 1 or va.size < 3:
        raise StatsError("need two aligned 1-D vectors of length >= 3")
    result = sps.kendalltau(va, vb)
    return float(result.statistic), float(result.pvalue)


def rank_biased_overlap(
    ranking_a: Sequence[Hashable],
    ranking_b: Sequence[Hashable],
    *,
    p: float = 0.9,
) -> float:
    """Rank-biased overlap (Webber et al. 2010) of two full rankings.

    Computes the exact RBO for two same-length, duplicate-free rankings over
    the same items (the extrapolated form for full lists):

    ``RBO = (A_d * p^d summed) * (1-p)/p + A_k * p^k`` with overlap agreement
    ``A_d`` at each depth ``d``.  *p* in (0, 1) controls top-weightedness:
    smaller p weights the top ranks more heavily.

    Returns a value in ``[0, 1]``; 1 means identical rankings.
    """
    if not 0 < p < 1:
        raise StatsError(f"p must be in (0, 1), got {p}")
    la, lb = list(ranking_a), list(ranking_b)
    if len(la) != len(lb):
        raise StatsError("rankings must have equal length")
    if len(set(la)) != len(la) or len(set(lb)) != len(lb):
        raise StatsError("rankings must be duplicate-free")
    if set(la) != set(lb):
        raise StatsError("rankings must cover the same items")
    k = len(la)
    if k == 0:
        raise StatsError("rankings must be non-empty")
    seen_a: set[Hashable] = set()
    seen_b: set[Hashable] = set()
    overlap = 0
    agreement = np.empty(k, dtype=np.float64)
    for depth in range(k):
        item_a, item_b = la[depth], lb[depth]
        if item_a == item_b:
            overlap += 1
        else:
            if item_a in seen_b:
                overlap += 1
            if item_b in seen_a:
                overlap += 1
        seen_a.add(item_a)
        seen_b.add(item_b)
        agreement[depth] = overlap / (depth + 1)
    weights = p ** np.arange(1, k + 1)
    rbo_min = (1 - p) / p * float((agreement * weights).sum())
    # Extrapolate the tail assuming agreement stays at its depth-k value.
    return float(rbo_min + agreement[-1] * p**k)
