"""Adaptive fan-out for randomized inference: the sweep engine for stats.

The inference routines in :mod:`repro.stats.inference` are one-shot: a
caller picks ``n_resamples``/``n_permutations`` upfront and pays for all
of them, whether the Monte-Carlo error collapsed after 500 draws or
never reached a usable level.  The study's sensitivity analyses (seed ×
parameter ablations over the Table 1/2 shares and the Fig. 2–4
distributions) ask the same question for *dozens* of estimates at once —
exactly the shape :mod:`repro.continuum.montecarlo` solves for grid
cells.  This module is that engine, re-specialized for statistics:

* **tasks instead of cells** — a :class:`StatTask` names one randomized
  estimate: a bootstrap CI for a category share, or a permutation
  p-value (total-variation or difference-of-means);
* **sequential stopping** — each task runs draw *rounds* until the
  Monte-Carlo standard error of its estimate reaches
  :attr:`StatSpec.target_se` (binomial s.e. for p-values, resample
  s.e. for bootstrap shares), capped at the draw budget.  Rounds draw
  from per-round ``SeedSequence`` children of a content-addressed task
  entropy, so a task's draw stream is identical whether it stops early
  or runs to the cap;
* **caching + ledger** — tasks are content-addressed for
  :class:`~repro.pipeline.cache.ArtifactCache` hits, and a
  :class:`~repro.obs.RunRegistry` gets a ``stat-sweep`` record through
  the same :func:`~repro.obs.build_sweep_record` path as mc-sweeps
  (:class:`StatSweepResult` exposes the same counters).

Unlike the continuum engine there is no process pool: every round is one
vectorized NumPy call (multinomial / hypergeometric / permuted-matrix),
so the parent process is already saturated by BLAS-free array work and
fan-out overhead would dominate.  The determinism contract is the same —
rounds fold in order, so results are independent of how many tasks share
the sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable
from repro.stats.inference import total_variation_distance
from repro.telemetry import ensure

__all__ = [
    "STAT_ENGINE_VERSION",
    "STAT_KINDS",
    "StatTask",
    "StatSpec",
    "StatCell",
    "StatSweepResult",
    "run_stat_sweep",
    "share_ci_tasks",
    "adaptive_bootstrap_share_ci",
    "adaptive_permutation_tvd_test",
    "adaptive_permutation_mean_test",
]

#: Bump when draw semantics or the result layout change (cache-key part).
STAT_ENGINE_VERSION = "1"

#: Task kinds the engine knows how to draw rounds for.
STAT_KINDS = ("bootstrap_share", "permutation_tvd", "permutation_mean")

#: z for the 95% interval reported alongside permutation p-values.
_CI_Z = 1.959963984540054


def _counts_tuple(counts: Any, name: str) -> tuple[int, ...]:
    if isinstance(counts, FrequencyTable):
        counts = counts.values
    values = tuple(int(v) for v in np.asarray(counts).ravel())
    if len(values) < 2:
        raise StatsError(f"{name} needs >= 2 categories")
    if any(v < 0 for v in values):
        raise StatsError(f"{name} must be non-negative")
    if sum(values) <= 0:
        raise StatsError(f"{name} must not be all zero")
    return values


def _sample_tuple(sample: Any, name: str) -> tuple[float, ...]:
    values = tuple(float(v) for v in np.asarray(sample, dtype=np.float64).ravel())
    if len(values) < 2:
        raise StatsError(f"{name} needs >= 2 observations")
    if not all(math.isfinite(v) for v in values):
        raise StatsError(f"{name} must be finite")
    return values


@dataclass(frozen=True)
class StatTask:
    """One randomized estimate to drive through the fan-out.

    ``kind`` selects the draw routine; the data fields it needs are
    kind-specific (``counts``/``label_index``/``confidence`` for
    ``bootstrap_share``; ``a``/``b`` for the permutation tests — counts
    for ``permutation_tvd``, continuous samples for
    ``permutation_mean``).  Data is stored as plain tuples so a task is
    hashable and content-addressable.
    """

    name: str
    kind: str
    counts: tuple[int, ...] | None = None
    label_index: int = 0
    confidence: float = 0.95
    a: tuple[float, ...] | None = None
    b: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise StatsError("stat task needs a name")
        if self.kind not in STAT_KINDS:
            raise StatsError(
                f"unknown stat task kind {self.kind!r}; "
                f"choose from {STAT_KINDS}"
            )
        if self.kind == "bootstrap_share":
            if self.counts is None:
                raise StatsError("bootstrap_share needs counts")
            counts = _counts_tuple(self.counts, "counts")
            object.__setattr__(self, "counts", counts)
            if not 0 <= self.label_index < len(counts):
                raise StatsError(
                    f"label_index {self.label_index} out of range"
                )
            if not 0 < self.confidence < 1:
                raise StatsError("confidence must be in (0, 1)")
        else:
            if self.a is None or self.b is None:
                raise StatsError(f"{self.kind} needs samples a and b")
            if self.kind == "permutation_tvd":
                a = tuple(float(v) for v in _counts_tuple(self.a, "a"))
                b = tuple(float(v) for v in _counts_tuple(self.b, "b"))
                if len(a) != len(b):
                    raise StatsError(
                        "both count vectors need the same categories"
                    )
            else:
                a = _sample_tuple(self.a, "a")
                b = _sample_tuple(self.b, "b")
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "b", b)

    def identity(self) -> dict[str, Any]:
        """Everything that pins this task's draw streams and estimate."""
        payload: dict[str, Any] = {"kind": self.kind}
        if self.kind == "bootstrap_share":
            payload["counts"] = list(self.counts)
            payload["label_index"] = self.label_index
            payload["confidence"] = self.confidence
        else:
            payload["a"] = list(self.a)
            payload["b"] = list(self.b)
        return payload


@dataclass(frozen=True)
class StatSpec:
    """A batch of stat tasks plus the shared draw plan.

    Mirrors :class:`~repro.continuum.montecarlo.SweepSpec`: fixed mode
    (``target_se is None``) runs exactly ``draws`` Monte-Carlo draws per
    task; adaptive mode runs rounds of ``round_size`` draws until the
    estimate's Monte-Carlo standard error is at most ``target_se``,
    capped at ``max_draws`` (default: ``draws``).
    """

    tasks: tuple[StatTask, ...]
    seed: int = 0
    draws: int = 10_000
    round_size: int = 1_000
    target_se: float | None = None
    max_draws: int | None = None

    def __post_init__(self) -> None:
        if not self.tasks:
            raise StatsError("stat sweep needs at least one task")
        names = [task.name for task in self.tasks]
        if len(set(names)) != len(names):
            raise StatsError("stat task names must be unique in a sweep")
        if self.draws < 100:
            raise StatsError("draws must be >= 100")
        if self.round_size < 100:
            raise StatsError("round_size must be >= 100")
        if self.target_se is not None and not (
            math.isfinite(self.target_se) and self.target_se > 0
        ):
            raise StatsError(
                f"target_se must be a finite value > 0, got {self.target_se}"
            )
        if self.max_draws is not None:
            if self.target_se is None:
                raise StatsError(
                    "max_draws requires target_se (a fixed sweep sizes "
                    "itself with draws)"
                )
            if self.max_draws < 100:
                raise StatsError("max_draws must be >= 100")

    @property
    def adaptive(self) -> bool:
        return self.target_se is not None

    @property
    def draw_cap(self) -> int:
        if self.adaptive and self.max_draws is not None:
            return self.max_draws
        return self.draws

    def draw_plan(self) -> dict[str, Any]:
        """The draw-sizing identity (part of every task cache key)."""
        if not self.adaptive:
            return {"mode": "fixed", "draws": self.draws}
        return {
            "mode": "adaptive",
            "target_se": self.target_se,
            "max_draws": self.draw_cap,
            "round_size": self.round_size,
        }


@dataclass(frozen=True, slots=True)
class StatCell:
    """Aggregated outcome of one stat task (the engine's "cell")."""

    name: str
    kind: str
    draws: int
    se: float
    estimate: dict[str, float]

    @property
    def cell_id(self) -> str:
        return f"{self.kind}|{self.name}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "cell_id": self.cell_id,
            "draws": self.draws,
            "se": self.se,
            "estimate": dict(self.estimate),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StatCell":
        try:
            return cls(
                name=str(payload["name"]),
                kind=str(payload["kind"]),
                draws=int(payload["draws"]),
                se=float(payload["se"]),
                estimate={
                    str(key): float(value)
                    for key, value in payload["estimate"].items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StatsError(f"malformed stat cell payload: {exc}") from None


@dataclass(frozen=True)
class StatSweepResult:
    """Outcome of :func:`run_stat_sweep`.

    Attribute-compatible with the Monte-Carlo
    :class:`~repro.continuum.montecarlo.SweepResult` where the ledger
    cares (``cells``/``computed``/``cached``/``n_replications_run``/
    ``n_replications_budget``), so
    :func:`~repro.obs.build_sweep_record` digests it unchanged.
    """

    cells: tuple[StatCell, ...]
    computed: tuple[str, ...]
    cached: tuple[str, ...]
    n_replications_run: int
    n_replications_budget: int = 0

    @property
    def n_replications_saved(self) -> int:
        return self.n_replications_budget - self.n_replications_run

    def __getitem__(self, name: str) -> StatCell:
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine_version": STAT_ENGINE_VERSION,
            "cells": [cell.to_dict() for cell in self.cells],
            "computed": list(self.computed),
            "cached": list(self.cached),
            "n_replications_run": self.n_replications_run,
            "n_replications_budget": self.n_replications_budget,
        }


# -- per-kind draw rounds ----------------------------------------------------------


class _TaskState:
    """Streaming accumulation of one task's draw rounds."""

    __slots__ = ("task", "draws", "rounds", "chunks", "exceed", "observed")

    def __init__(self, task: StatTask) -> None:
        self.task = task
        self.draws = 0
        self.rounds = 0
        self.chunks: list[np.ndarray] = []   # bootstrap share resamples
        self.exceed = 0                      # permutation exceedances
        self.observed = 0.0

        if task.kind == "permutation_tvd":
            self.observed = total_variation_distance(task.a, task.b)
        elif task.kind == "permutation_mean":
            a = np.asarray(task.a)
            b = np.asarray(task.b)
            self.observed = float(b.mean() - a.mean())


def _run_round(state: _TaskState, rng: np.random.Generator, size: int) -> None:
    """Draw *size* Monte-Carlo samples for one task, vectorized."""
    task = state.task
    if task.kind == "bootstrap_share":
        counts = np.asarray(task.counts, dtype=np.float64)
        n = int(counts.sum())
        resamples = rng.multinomial(n, counts / n, size=size)
        state.chunks.append(resamples[:, task.label_index] / n)
    elif task.kind == "permutation_tvd":
        va = np.asarray(task.a, dtype=np.float64)
        vb = np.asarray(task.b, dtype=np.float64)
        pooled = (va + vb).astype(np.int64)
        na = int(va.sum())
        drawn = rng.multivariate_hypergeometric(pooled, na, size=size)
        rest = pooled[None, :] - drawn
        pa = drawn / na
        pb = rest / rest.sum(axis=1, keepdims=True)
        tvd = 0.5 * np.abs(pa - pb).sum(axis=1)
        state.exceed += int((tvd >= state.observed - 1e-12).sum())
    else:  # permutation_mean
        va = np.asarray(task.a, dtype=np.float64)
        vb = np.asarray(task.b, dtype=np.float64)
        pooled = np.concatenate([va, vb])
        if np.ptp(pooled) == 0.0:
            # No variability: every permuted delta is 0 == |observed|.
            state.exceed += size
        else:
            idx = rng.permuted(
                np.tile(np.arange(pooled.size), (size, 1)), axis=1
            )
            shuffled = pooled[idx]
            mean_a = shuffled[:, : va.size].mean(axis=1)
            mean_b = shuffled[:, va.size:].mean(axis=1)
            deltas = np.abs(mean_b - mean_a)
            state.exceed += int(
                (deltas >= abs(state.observed) - 1e-15).sum()
            )
    state.draws += size
    state.rounds += 1


def _standard_error(state: _TaskState) -> float:
    """Monte-Carlo standard error of the task's estimate so far.

    Binomial s.e. of the p-value for permutation tests (with the
    add-one-smoothed p, so a zero-exceedance round still reports a
    nonzero, shrinking error), resample s.e. of the share for bootstrap
    tasks.  Both shrink as ``1/sqrt(draws)`` — the stopping rule's
    contract.
    """
    if state.task.kind == "bootstrap_share":
        shares = np.concatenate(state.chunks)
        if shares.size < 2:
            return math.inf
        return float(shares.std(ddof=1) / math.sqrt(shares.size))
    p = (1.0 + state.exceed) / (state.draws + 1.0)
    return math.sqrt(p * (1.0 - p) / state.draws)


def _finish(state: _TaskState) -> StatCell:
    task = state.task
    if task.kind == "bootstrap_share":
        shares = np.concatenate(state.chunks)
        counts = task.counts
        alpha = (1.0 - task.confidence) / 2.0
        low, high = np.quantile(shares, [alpha, 1.0 - alpha])
        estimate = {
            "share": counts[task.label_index] / sum(counts),
            "low": float(low),
            "high": float(high),
        }
    else:
        p_value = (1.0 + state.exceed) / (state.draws + 1.0)
        estimate = {"statistic": state.observed, "p_value": p_value}
    return StatCell(
        name=task.name,
        kind=task.kind,
        draws=state.draws,
        se=_standard_error(state),
        estimate=estimate,
    )


# -- the sweep driver --------------------------------------------------------------


def _task_entropy(identity: Mapping[str, Any]) -> int:
    from repro.pipeline.cache import stable_digest

    return int(stable_digest(identity)[:32], 16)


def _round_rng(entropy: int, round_index: int) -> np.random.Generator:
    """The dedicated generator for draw round *round_index* of a task."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(round_index,))
    )


def run_stat_sweep(
    spec: StatSpec,
    *,
    cache=None,
    telemetry=None,
    registry=None,
) -> StatSweepResult:
    """Run every task of *spec*, adaptively sized, cached, and recorded.

    Tasks are content-addressed (engine version, seed, task data, draw
    plan): an :class:`~repro.pipeline.cache.ArtifactCache` hit skips all
    of a task's draws.  With a bound telemetry the sweep is traced
    (``stat_sweep`` span) and counted (``stat.draws``, ``stat.rounds``,
    ``stat.draws_saved``, ``stat.tasks_computed``, ``stat.tasks_cached``);
    a :class:`~repro.obs.RunRegistry` receives a ``stat-sweep`` ledger
    record built by the same :func:`~repro.obs.build_sweep_record` that
    digests mc-sweeps.
    """
    tel = ensure(telemetry)
    if not tel.enabled:
        return _run_stat_sweep(spec, cache, tel, registry)
    with tel.tracer.span(
        "stat_sweep",
        tasks=len(spec.tasks),
        draws=spec.draw_cap,
        adaptive=spec.adaptive,
    ) as span:
        result = _run_stat_sweep(spec, cache, tel, registry)
        span.tags.update(
            computed=len(result.computed),
            cached=len(result.cached),
        )
        tel.log.info(
            "stat_sweep.finish",
            tasks=len(result.cells),
            computed=len(result.computed),
            cached=len(result.cached),
            draws_run=result.n_replications_run,
        )
    return result


def _run_stat_sweep(spec: StatSpec, cache, tel, registry) -> StatSweepResult:
    from repro.pipeline.cache import stable_digest

    plan = spec.draw_plan()
    # Entropy is plan-free: a task's draw stream depends only on what it
    # estimates (and the sweep seed), so a run that stops early folds a
    # bit-identical prefix of the capped run's stream.  The cache key
    # adds the plan on top — a different stopping rule is a different
    # experiment even though it shares the stream.
    identities = {
        task.name: {
            "engine": STAT_ENGINE_VERSION,
            "seed": spec.seed,
            "task": task.identity(),
        }
        for task in spec.tasks
    }
    cache_keys = {
        task.name: stable_digest(
            "stat-task", {**identities[task.name], "plan": plan}
        )
        for task in spec.tasks
    }

    cells: dict[str, StatCell] = {}
    cached_ids: list[str] = []
    misses: list[StatTask] = []
    for task in spec.tasks:
        payload = cache.get(cache_keys[task.name]) if cache is not None else None
        if payload is not None:
            cells[task.name] = StatCell.from_dict(payload)
            cached_ids.append(cells[task.name].cell_id)
        else:
            misses.append(task)

    draws_run = 0
    rounds_run = 0
    for task in misses:
        entropy = _task_entropy(identities[task.name])
        state = _TaskState(task)
        cap = spec.draw_cap
        while state.draws < cap:
            size = min(spec.round_size, cap - state.draws)
            _run_round(state, _round_rng(entropy, state.rounds), size)
            if spec.adaptive and _standard_error(state) <= spec.target_se:
                break
        cell = _finish(state)
        cells[task.name] = cell
        draws_run += state.draws
        rounds_run += state.rounds
        if cache is not None:
            cache.store(cache_keys[task.name], cell.to_dict())

    budget = spec.draw_cap * len(misses)
    result = StatSweepResult(
        cells=tuple(cells[task.name] for task in spec.tasks),
        computed=tuple(cells[task.name].cell_id for task in misses),
        cached=tuple(cached_ids),
        n_replications_run=draws_run,
        n_replications_budget=budget,
    )
    if tel.enabled:
        metrics = tel.metrics
        metrics.counter("stat.draws").inc(draws_run)
        metrics.counter("stat.tasks_computed").inc(len(result.computed))
        metrics.counter("stat.tasks_cached").inc(len(result.cached))
        if misses:
            metrics.counter("stat.rounds").inc(rounds_run)
        if spec.adaptive:
            metrics.counter("stat.draws_saved").inc(
                result.n_replications_saved
            )
    if registry is not None:
        from repro.obs import build_sweep_record

        meta: dict[str, Any] = {"seed": spec.seed, "draws": spec.draws}
        if spec.adaptive:
            meta["target_se"] = spec.target_se
            meta["max_draws"] = spec.draw_cap
        registry.record(
            build_sweep_record(
                result,
                telemetry=tel if tel.enabled else None,
                config_digest=stable_digest(sorted(cache_keys.values())),
                kind="stat-sweep",
                meta=meta,
            )
        )
    return result


# -- front doors -------------------------------------------------------------------


def share_ci_tasks(
    table: FrequencyTable,
    *,
    prefix: str = "share",
    confidence: float = 0.95,
) -> tuple[StatTask, ...]:
    """One ``bootstrap_share`` task per label of a frequency table.

    The study's Fig. 2/4 share sensitivity in one call:
    ``run_stat_sweep(StatSpec(tasks=share_ci_tasks(votes), ...))``.
    """
    counts = tuple(int(v) for v in table.values)
    return tuple(
        StatTask(
            name=f"{prefix}:{label}",
            kind="bootstrap_share",
            counts=counts,
            label_index=index,
            confidence=confidence,
        )
        for index, label in enumerate(table.labels)
    )


def _single(
    task: StatTask,
    *,
    seed: int,
    target_se: float | None,
    max_draws: int | None,
    draws: int,
    round_size: int,
    cache,
    telemetry,
    registry,
) -> StatCell:
    spec = StatSpec(
        tasks=(task,),
        seed=seed,
        draws=draws,
        round_size=round_size,
        target_se=target_se,
        max_draws=max_draws,
    )
    return run_stat_sweep(
        spec, cache=cache, telemetry=telemetry, registry=registry
    ).cells[0]


def adaptive_bootstrap_share_ci(
    counts,
    label_index: int,
    *,
    target_se: float = 1e-3,
    max_draws: int = 50_000,
    confidence: float = 0.95,
    seed: int = 0,
    round_size: int = 1_000,
    cache=None,
    telemetry=None,
    registry=None,
) -> StatCell:
    """Adaptive percentile-bootstrap CI for one category's share.

    Drop-in upgrade of :func:`repro.stats.inference.bootstrap_share_ci`
    through the fan-out engine: draws stop once the resample standard
    error reaches *target_se*.  Returns the full :class:`StatCell`
    (``estimate["low"]``/``estimate["high"]`` are the interval).
    """
    task = StatTask(
        name=f"bootstrap_share:{label_index}",
        kind="bootstrap_share",
        counts=_counts_tuple(counts, "counts"),
        label_index=label_index,
        confidence=confidence,
    )
    return _single(
        task, seed=seed, target_se=target_se, max_draws=max_draws,
        draws=max_draws, round_size=round_size,
        cache=cache, telemetry=telemetry, registry=registry,
    )


def adaptive_permutation_tvd_test(
    a,
    b,
    *,
    target_se: float = 5e-3,
    max_draws: int = 50_000,
    seed: int = 0,
    round_size: int = 1_000,
    cache=None,
    telemetry=None,
    registry=None,
) -> StatCell:
    """Adaptive total-variation permutation test (see
    :func:`repro.stats.inference.permutation_tvd_test`); permutations
    stop once the p-value's binomial standard error reaches
    *target_se*."""
    task = StatTask(
        name="permutation_tvd",
        kind="permutation_tvd",
        a=_counts_tuple(a, "a"),
        b=_counts_tuple(b, "b"),
    )
    return _single(
        task, seed=seed, target_se=target_se, max_draws=max_draws,
        draws=max_draws, round_size=round_size,
        cache=cache, telemetry=telemetry, registry=registry,
    )


def adaptive_permutation_mean_test(
    a,
    b,
    *,
    target_se: float = 5e-3,
    max_draws: int = 50_000,
    seed: int = 0,
    round_size: int = 1_000,
    cache=None,
    telemetry=None,
    registry=None,
) -> StatCell:
    """Adaptive difference-of-means permutation test (see
    :func:`repro.stats.inference.permutation_mean_test`); same stopping
    rule as :func:`adaptive_permutation_tvd_test`."""
    task = StatTask(
        name="permutation_mean",
        kind="permutation_mean",
        a=_sample_tuple(a, "a"),
        b=_sample_tuple(b, "b"),
    )
    return _single(
        task, seed=seed, target_se=target_se, max_draws=max_draws,
        draws=max_draws, round_size=round_size,
        cache=cache, telemetry=telemetry, registry=registry,
    )
