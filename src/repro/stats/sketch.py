"""Mergeable quantile sketches with an exact, associative merge.

The Monte-Carlo engine's fixed-bucket histograms
(:class:`repro.continuum.montecarlo.FixedHistogram`) answer per-cell
quantile queries in O(buckets) memory, but their accuracy is pinned to a
range chosen *before* the data arrives, and their merge story stops at
"add the count arrays" — sound only when every partial aggregate was
built with identical edges.  Scaling sweeps across processes and hosts
(ROADMAP item 5) needs a summary whose partial states combine *exactly*,
no matter how the stream was split.

:class:`QuantileSketch` is that summary.  It is a log-bucket sketch in
the DDSketch family (Masson et al., VLDB 2019): a value ``v > 0`` lands
in bucket ``ceil(log_gamma(v))`` where ``gamma = (1 + alpha)/(1 - alpha)``,
which guarantees every quantile estimate is within relative error
``alpha`` of a true sample value.  KLL-style compactors were considered
and rejected: their randomized (or stream-order-dependent) compaction
makes ``merge(a, b)`` only *statistically* equivalent to sketching the
combined stream.  Here the bucket a value lands in depends only on the
value, so the sketch state is a pure function of the inserted multiset —
which buys three properties the engine's determinism contract needs:

* **order-insensitive** — any insertion order yields the same state;
* **exactly mergeable** — ``merge`` of partial sketches equals the
  single-stream sketch, bit for bit;
* **associative/commutative** — partial aggregates from any process or
  host tree combine to one canonical answer.

Memory is O(distinct buckets): ~``log(max/min) / log(gamma)`` for data
spanning a bounded dynamic range (about 230 buckets per decade at the
default ``alpha = 0.01``).  The sketch refuses to grow past
``max_buckets`` (:class:`~repro.errors.StatsError`) instead of collapsing
buckets — collapse would silently break the exact-merge guarantee.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.errors import StatsError

__all__ = ["QuantileSketch"]

#: Serialized-state schema version (part of every payload).
_FORMAT = 1


class QuantileSketch:
    """Deterministic log-bucket quantile sketch (DDSketch family).

    Parameters
    ----------
    alpha:
        Relative-accuracy guarantee: ``quantile(q)`` is within
        ``alpha * |true value|`` of an actual inserted value at that
        rank.  Must be in ``(0, 1)``.
    max_buckets:
        Hard cap on distinct buckets (positive + negative).  Exceeding
        it raises :class:`~repro.errors.StatsError` rather than
        degrading accuracy or breaking merge exactness; at the default
        ``alpha`` it accommodates data spanning ~17 decades.

    Values may be any finite float (negative values mirror into their
    own bucket map; zeros are counted exactly).  ``add`` accepts a
    ``weight`` so pre-counted data folds in cheaply.
    """

    __slots__ = ("alpha", "max_buckets", "_gamma", "_log_gamma",
                 "_pos", "_neg", "_zeros")

    def __init__(self, alpha: float = 0.01, *, max_buckets: int = 4096) -> None:
        if not 0.0 < alpha < 1.0:
            raise StatsError(f"alpha must be in (0, 1), got {alpha}")
        if max_buckets < 1:
            raise StatsError("max_buckets must be >= 1")
        self.alpha = alpha
        self.max_buckets = max_buckets
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self._zeros = 0

    # -- insertion ---------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        """Bucket key for a positive magnitude: ``ceil(log_gamma(m))``.

        Bucket ``k`` covers ``(gamma**(k-1), gamma**k]``; the key is a
        pure function of the value, which is what makes the whole sketch
        order-insensitive.
        """
        return math.ceil(math.log(magnitude) / self._log_gamma - 1e-12)

    def add(self, value: float, weight: int = 1) -> None:
        if weight < 1:
            raise StatsError(f"weight must be >= 1, got {weight}")
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise StatsError(f"sketch values must be finite, got {value}")
        if value > 0.0:
            buckets = self._pos
            key = self._key(value)
        elif value < 0.0:
            buckets = self._neg
            key = self._key(-value)
        else:
            self._zeros += weight
            return
        if key in buckets:
            buckets[key] += weight
        else:
            buckets[key] = weight
            self._check_size()

    def _check_size(self) -> None:
        if len(self._pos) + len(self._neg) > self.max_buckets:
            raise StatsError(
                f"sketch exceeded max_buckets={self.max_buckets}; the data "
                "spans a wider dynamic range than the sketch was sized for "
                "(raise max_buckets or alpha)"
            )

    # -- merge -------------------------------------------------------------

    def _check_compatible(self, other: "QuantileSketch") -> None:
        if not isinstance(other, QuantileSketch):
            raise StatsError(
                f"can only merge QuantileSketch, got {type(other).__name__}"
            )
        if other.alpha != self.alpha:
            raise StatsError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})"
            )

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch, in place; returns ``self``.

        Exact: the merged state equals the state of one sketch fed both
        streams, so the operation is associative and commutative across
        any split of the data (property-tested in
        ``tests/test_montecarlo.py``).
        """
        self._check_compatible(other)
        for key, count in other._pos.items():
            if key in self._pos:
                self._pos[key] += count
            else:
                self._pos[key] = count
        for key, count in other._neg.items():
            if key in self._neg:
                self._neg[key] += count
            else:
                self._neg[key] = count
        self._zeros += other._zeros
        self._check_size()
        return self

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.alpha, max_buckets=self.max_buckets)
        clone._pos = dict(self._pos)
        clone._neg = dict(self._neg)
        clone._zeros = self._zeros
        return clone

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        return (
            self._zeros
            + sum(self._pos.values())
            + sum(self._neg.values())
        )

    def _representative(self, key: int) -> float:
        """Bucket midpoint ``2 * gamma**key / (gamma + 1)``.

        For any true value in the bucket's span the relative error of
        this representative is at most ``(gamma - 1)/(gamma + 1) ==
        alpha`` — the sketch's accuracy guarantee.
        """
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The *q*-quantile estimate, within ``alpha`` relative error.

        Rank convention matches ``numpy.quantile`` endpoints: ``q=0`` is
        the minimum bucket, ``q=1`` the maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise StatsError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            raise StatsError("quantile of an empty sketch")
        target = q * (total - 1)
        cumulative = 0
        # Ascending value order: most-negative first (descending |key|),
        # then zeros, then positives ascending.
        for key in sorted(self._neg, reverse=True):
            cumulative += self._neg[key]
            if cumulative > target:
                return -self._representative(key)
        if self._zeros:
            cumulative += self._zeros
            if cumulative > target:
                return 0.0
        for key in sorted(self._pos):
            cumulative += self._pos[key]
            if cumulative > target:
                return self._representative(key)
        # Floating slack at q == 1.0 lands here: the maximum bucket.
        return (
            self._representative(max(self._pos))
            if self._pos
            else 0.0 if self._zeros else -self._representative(min(self._neg))
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready state (bucket lists sorted by key).

        Two sketches over the same multiset serialize identically, so
        the payload is safe to digest, cache, and ship between hosts.
        """
        return {
            "format": _FORMAT,
            "alpha": self.alpha,
            "max_buckets": self.max_buckets,
            "zeros": self._zeros,
            "pos": [[key, self._pos[key]] for key in sorted(self._pos)],
            "neg": [[key, self._neg[key]] for key in sorted(self._neg)],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuantileSketch":
        if not isinstance(payload, Mapping):
            raise StatsError("sketch payload must be a mapping")
        if payload.get("format") != _FORMAT:
            raise StatsError(
                f"unsupported sketch format {payload.get('format')!r}"
            )
        try:
            sketch = cls(
                float(payload["alpha"]),
                max_buckets=int(payload.get("max_buckets", 4096)),
            )
            zeros = int(payload["zeros"])
            pos = _load_buckets(payload["pos"])
            neg = _load_buckets(payload["neg"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StatsError(f"malformed sketch payload: {exc}") from None
        if zeros < 0:
            raise StatsError("sketch payload has negative zero count")
        sketch._zeros = zeros
        sketch._pos = pos
        sketch._neg = neg
        sketch._check_size()
        return sketch

    # -- comparison --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.alpha == other.alpha
            and self._zeros == other._zeros
            and self._pos == other._pos
            and self._neg == other._neg
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self._pos) + len(self._neg)})"
        )


def _load_buckets(entries: Iterable[Any]) -> dict[int, int]:
    buckets: dict[int, int] = {}
    for entry in entries:
        key, count = entry
        key, count = int(key), int(count)
        if count < 1:
            raise ValueError(f"bucket {key} has non-positive count {count}")
        if key in buckets:
            raise ValueError(f"duplicate bucket key {key}")
        buckets[key] = count
    return buckets
