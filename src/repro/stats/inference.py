"""Inferential statistics for mapping-study distributions.

The paper reports distributions descriptively; a downstream user of this
library will want to know whether, e.g., the supply distribution (Fig. 2) and
the demand distribution (Fig. 4) differ beyond what a 28-vote sample could
produce by chance.  This module provides:

* Pearson chi-square and G-test (log-likelihood ratio) goodness-of-fit and
  homogeneity tests (scipy-backed, with small-sample guards);
* seeded bootstrap confidence intervals for category shares;
* an exact-by-simulation permutation test for the difference of two
  categorical distributions (total-variation statistic);
* a permutation test for a difference of means between two continuous
  samples — the significance primitive behind the cross-run perf
  watchdog (:func:`repro.obs.compare_runs`).

All randomized routines take an explicit ``rng`` or ``seed`` so results are
reproducible, per the HPC guide's determinism rule.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable

__all__ = [
    "TestResult",
    "chi_square_gof",
    "g_test_gof",
    "chi_square_homogeneity",
    "bootstrap_share_ci",
    "total_variation_distance",
    "permutation_tvd_test",
    "permutation_mean_test",
]

CountsLike = FrequencyTable | Sequence[int] | np.ndarray


def _as_counts(counts: CountsLike, name: str = "counts") -> np.ndarray:
    if isinstance(counts, FrequencyTable):
        values = counts.values.astype(np.float64)
    else:
        values = np.asarray(counts, dtype=np.float64)
    if values.ndim != 1 or values.size < 2:
        raise StatsError(f"{name} must be a 1-D vector with >= 2 categories")
    if (values < 0).any():
        raise StatsError(f"{name} must be non-negative")
    if values.sum() <= 0:
        raise StatsError(f"{name} must not be all zero")
    return values


@dataclass(frozen=True, slots=True)
class TestResult:
    """Outcome of a hypothesis test.

    Attributes
    ----------
    statistic:
        Value of the test statistic.
    p_value:
        Two-sided p-value.
    dof:
        Degrees of freedom (``0`` for permutation tests).
    method:
        Short name of the test used.
    """

    statistic: float
    p_value: float
    dof: int
    method: str

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at level *alpha*."""
        if not 0 < alpha < 1:
            raise StatsError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha


def chi_square_gof(
    observed: CountsLike, expected_shares: Sequence[float] | None = None
) -> TestResult:
    """Pearson chi-square goodness-of-fit against *expected_shares*.

    Default null hypothesis is the uniform distribution — exactly the
    "effort is quite balanced" claim of Q2.
    """
    obs = _as_counts(observed, "observed")
    if expected_shares is None:
        exp = np.full_like(obs, obs.sum() / obs.size)
    else:
        shares = np.asarray(expected_shares, dtype=np.float64)
        if shares.shape != obs.shape:
            raise StatsError("expected_shares length must match observed")
        if not np.isclose(shares.sum(), 1.0):
            raise StatsError("expected_shares must sum to 1")
        exp = shares * obs.sum()
    if (exp <= 0).any():
        raise StatsError("expected counts must be strictly positive")
    statistic, p_value = sps.chisquare(obs, exp)
    return TestResult(float(statistic), float(p_value), obs.size - 1, "chi-square GOF")


def g_test_gof(
    observed: CountsLike, expected_shares: Sequence[float] | None = None
) -> TestResult:
    """G-test (log-likelihood ratio) goodness-of-fit; robust for small counts."""
    obs = _as_counts(observed, "observed")
    if expected_shares is None:
        exp = np.full_like(obs, obs.sum() / obs.size)
    else:
        shares = np.asarray(expected_shares, dtype=np.float64)
        if shares.shape != obs.shape or not np.isclose(shares.sum(), 1.0):
            raise StatsError("expected_shares must match observed and sum to 1")
        exp = shares * obs.sum()
    statistic, p_value = sps.power_divergence(obs, exp, lambda_="log-likelihood")
    return TestResult(float(statistic), float(p_value), obs.size - 1, "G-test GOF")


def chi_square_homogeneity(a: CountsLike, b: CountsLike) -> TestResult:
    """Chi-square homogeneity test for two count vectors over the same categories."""
    va, vb = _as_counts(a, "a"), _as_counts(b, "b")
    if va.shape != vb.shape:
        raise StatsError("both count vectors need the same categories")
    table = np.vstack([va, vb])
    # Drop categories empty in both samples: they carry no information and
    # break the expected-frequency computation.
    keep = table.sum(axis=0) > 0
    if keep.sum() < 2:
        raise StatsError("need >= 2 jointly non-empty categories")
    statistic, p_value, dof, _ = sps.chi2_contingency(table[:, keep])
    return TestResult(float(statistic), float(p_value), int(dof), "chi-square homogeneity")


def bootstrap_share_ci(
    counts: CountsLike,
    label_index: int,
    *,
    n_resamples: int = 10_000,
    confidence: float = 0.95,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap CI for one category's share.

    Resamples the *observations* underlying the count vector (multinomial
    with the empirical shares), fully vectorized: one
    ``Generator.multinomial`` call produces all resamples.

    Returns ``(low, high)``.
    """
    values = _as_counts(counts)
    if not 0 <= label_index < values.size:
        raise StatsError(f"label_index {label_index} out of range")
    if not 0 < confidence < 1:
        raise StatsError("confidence must be in (0, 1)")
    if n_resamples < 100:
        raise StatsError("need at least 100 resamples")
    if rng is not None and seed is not None:
        raise StatsError("provide either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    n = int(values.sum())
    p = values / n
    resamples = rng.multinomial(n, p, size=n_resamples)  # (R, k)
    shares = resamples[:, label_index] / n
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(shares, [alpha, 1.0 - alpha])
    return float(low), float(high)


def total_variation_distance(a: CountsLike, b: CountsLike) -> float:
    """Total variation distance between two count distributions, in ``[0, 1]``."""
    va, vb = _as_counts(a, "a"), _as_counts(b, "b")
    if va.shape != vb.shape:
        raise StatsError("both count vectors need the same categories")
    return float(0.5 * np.abs(va / va.sum() - vb / vb.sum()).sum())


def permutation_tvd_test(
    a: CountsLike,
    b: CountsLike,
    *,
    n_permutations: int = 10_000,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> TestResult:
    """Permutation test: are two categorical samples drawn from one distribution?

    The statistic is the total variation distance between the two empirical
    distributions.  Under the null, category labels are exchangeable between
    the samples; the permutation reshuffles the pooled observations into two
    groups of the original sizes.  Vectorized via multivariate-hypergeometric
    resampling of the pooled counts (equivalent to label permutation).
    """
    va, vb = _as_counts(a, "a"), _as_counts(b, "b")
    if va.shape != vb.shape:
        raise StatsError("both count vectors need the same categories")
    if n_permutations < 100:
        raise StatsError("need at least 100 permutations")
    if rng is not None and seed is not None:
        raise StatsError("provide either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    observed = total_variation_distance(va, vb)
    pooled = (va + vb).astype(np.int64)
    na = int(va.sum())
    # Draw `na` observations without replacement from the pooled counts.
    draws = rng.multivariate_hypergeometric(pooled, na, size=n_permutations)
    rest = pooled[None, :] - draws
    pa = draws / na
    pb = rest / rest.sum(axis=1, keepdims=True)
    tvd = 0.5 * np.abs(pa - pb).sum(axis=1)
    # Add-one smoothing keeps the p-value a valid permutation p-value.
    p_value = (1.0 + (tvd >= observed - 1e-12).sum()) / (n_permutations + 1.0)
    return TestResult(observed, float(p_value), 0, "permutation TVD")


def permutation_mean_test(
    a: Sequence[float] | np.ndarray,
    b: Sequence[float] | np.ndarray,
    *,
    n_permutations: int = 10_000,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> TestResult:
    """Permutation test for a difference in means of two continuous samples.

    The workhorse of the cross-run regression watchdog
    (:func:`repro.obs.compare_runs`): per-stage duration samples from two
    windows of runs are exchangeable under the null hypothesis of "no
    perf change", so the reference distribution of ``mean(b) - mean(a)``
    is built by reshuffling the pooled observations into two groups of
    the original sizes (fully vectorized: one permuted matrix).  The
    p-value is two-sided with add-one smoothing.

    Each sample needs >= 2 observations; with fewer there is no
    within-group variance to test against (:class:`StatsError`).
    """
    va = np.asarray(a, dtype=np.float64).ravel()
    vb = np.asarray(b, dtype=np.float64).ravel()
    if va.size < 2 or vb.size < 2:
        raise StatsError("each sample needs >= 2 observations")
    if not (np.isfinite(va).all() and np.isfinite(vb).all()):
        raise StatsError("samples must be finite")
    if n_permutations < 100:
        raise StatsError("need at least 100 permutations")
    if rng is not None and seed is not None:
        raise StatsError("provide either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    observed = float(vb.mean() - va.mean())
    pooled = np.concatenate([va, vb])
    if np.ptp(pooled) == 0.0:
        # All observations identical: no variability, no evidence of change.
        return TestResult(observed, 1.0, 0, "permutation mean")
    # Permute tiled index rows in place — O(R·n) and integer-sized, versus
    # argsort over an R×n float matrix (O(R·n·log n) plus 8n bytes/row).
    idx = rng.permuted(
        np.tile(np.arange(pooled.size), (n_permutations, 1)), axis=1
    )
    shuffled = pooled[idx]
    mean_a = shuffled[:, : va.size].mean(axis=1)
    mean_b = shuffled[:, va.size :].mean(axis=1)
    deltas = np.abs(mean_b - mean_a)
    p_value = (1.0 + (deltas >= abs(observed) - 1e-15).sum()) / (
        n_permutations + 1.0
    )
    return TestResult(observed, float(p_value), 0, "permutation mean")
