"""Provenance records for regenerated artifacts.

The paper's discussion flags *provenance collection* as an uncovered
direction of the surveyed ecosystem.  The reproduction practices it on its
own outputs: a :class:`ProvenanceRecord` captures what produced an artifact
— the dataset fingerprint, the library version, the generating step and its
parameters — and a :class:`ProvenanceLog` accumulates records and writes a
sidecar JSON next to the artifact set, so every regenerated figure can be
traced to the exact inputs that produced it.

Deterministic by construction: the dataset fingerprint is a SHA-256 over
the canonical JSON serialization, and no wall-clock time enters the record
unless the caller supplies one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ValidationError

__all__ = ["dataset_fingerprint", "ProvenanceRecord", "ProvenanceLog"]


def dataset_fingerprint(
    institutions, tools, applications, scheme
) -> str:
    """SHA-256 fingerprint of a study dataset (canonical JSON, sorted keys)."""
    from repro.io.jsonio import ecosystem_to_dict

    document = ecosystem_to_dict(institutions, tools, applications, scheme)
    canonical = json.dumps(document, sort_keys=True, ensure_ascii=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class ProvenanceRecord:
    """One artifact's provenance.

    Attributes
    ----------
    artifact:
        Artifact name or relative path.
    step:
        Generating pipeline step (e.g. ``"render_all_artifacts"``).
    inputs:
        Named input fingerprints (e.g. ``{"dataset": "<sha256>"}``).
    parameters:
        The parameters the step ran with (seeds included).
    library_version:
        The :mod:`repro` version that produced the artifact.
    """

    artifact: str
    step: str
    inputs: dict[str, str] = field(default_factory=dict)
    parameters: dict[str, Any] = field(default_factory=dict)
    library_version: str = ""

    def __post_init__(self) -> None:
        if not self.artifact:
            raise ValidationError("artifact must be non-empty")
        if not self.step:
            raise ValidationError("step must be non-empty")

    def to_dict(self) -> dict[str, Any]:
        return {
            "artifact": self.artifact,
            "step": self.step,
            "inputs": dict(self.inputs),
            "parameters": dict(self.parameters),
            "library_version": self.library_version,
        }


class ProvenanceLog:
    """An append-only collection of provenance records."""

    def __init__(self) -> None:
        self._records: list[ProvenanceRecord] = []

    def add(self, record: ProvenanceRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def record(
        self,
        artifact: str,
        step: str,
        *,
        inputs: dict[str, str] | None = None,
        parameters: dict[str, Any] | None = None,
    ) -> ProvenanceRecord:
        """Build, append, and return a record stamped with the library version."""
        from repro import __version__

        entry = ProvenanceRecord(
            artifact=artifact,
            step=step,
            inputs=dict(inputs or {}),
            parameters=dict(parameters or {}),
            library_version=__version__,
        )
        self.add(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def for_artifact(self, artifact: str) -> tuple[ProvenanceRecord, ...]:
        """Every record about one artifact, in append order."""
        return tuple(r for r in self._records if r.artifact == artifact)

    def to_json(self) -> str:
        """Serialize the whole log (stable key order)."""
        return json.dumps(
            [record.to_dict() for record in self._records],
            indent=2,
            sort_keys=True,
        ) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the log as a JSON sidecar."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ProvenanceLog":
        """Read a log written by :meth:`save`."""
        try:
            entries = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(f"cannot read provenance log: {exc}") from exc
        log = cls()
        for entry in entries:
            log.add(
                ProvenanceRecord(
                    artifact=entry["artifact"],
                    step=entry["step"],
                    inputs=dict(entry.get("inputs", {})),
                    parameters=dict(entry.get("parameters", {})),
                    library_version=entry.get("library_version", ""),
                )
            )
        return log
