"""Markdown study report generation.

Turns a :class:`~repro.core.study.StudyResults` into the narrative artifact
a mapping study publishes: the answers to the research questions, the
regenerated tables, the distribution statistics, and — where available —
the simulated-manual-classification agreement.
"""

from __future__ import annotations

from repro.core.study import StudyResults
from repro.core.taxonomy import ClassificationScheme
from repro.stats.frequency import FrequencyTable

__all__ = ["study_report", "threats_to_validity", "future_work_section"]


def _distribution_section(
    title: str, table: FrequencyTable, names: dict[str, str]
) -> list[str]:
    lines = [f"### {title}", ""]
    lines.append("| Direction | Count | Share |")
    lines.append("| --- | ---: | ---: |")
    for label, count in table.items():
        name = names.get(label, str(label))
        lines.append(f"| {name} | {count} | {table.share(label) * 100:.1f}% |")
    lines.append("")
    return lines


def study_report(results: StudyResults, scheme: ClassificationScheme) -> str:
    """Render a full markdown report of *results*."""
    names = dict(zip(scheme.keys, scheme.names))
    lines: list[str] = ["# Mapping study report", ""]

    # Q1
    lines += ["## Q1 — Main research directions", ""]
    lines.append(
        f"The study identifies **{results.q1.n_directions} research "
        "directions**:"
    )
    for key, name in zip(results.q1.directions, results.q1.direction_names):
        members = ", ".join(results.q1.tools_by_direction[key])
        lines.append(f"- **{name}**: {members}")
    if results.q1.multi_topic_tools:
        lines.append("")
        lines.append(
            "Tools covering multiple research topics: "
            + ", ".join(results.q1.multi_topic_tools)
        )
    lines.append("")

    # Q2
    lines += ["## Q2 — How widespread each direction is", ""]
    lines += _distribution_section(
        "Tool distribution (Fig. 2)", results.q2.distribution, names
    )
    lines.append(
        f"- Shannon evenness: "
        f"{results.q2.evenness['shannon_evenness']:.3f} "
        f"({'balanced' if results.q2.balanced else 'unbalanced'})"
    )
    lines.append(
        f"- Institutions covering a single direction: "
        f"{results.q2.single_topic_institutions} of "
        f"{results.q2.n_institutions} "
        f"({'a majority' if results.q2.majority_single_topic else 'a minority'})"
    )
    lines.append(
        f"- Institutions spanning all directions: "
        f"{results.q2.full_coverage_institutions}"
    )
    lines.append("")
    lines.append("Coverage histogram (Fig. 3): "
                 + ", ".join(f"{k} → {v}" for k, v in results.q2.coverage.items()))
    lines.append("")

    # Q3
    lines += ["## Q3 — Critical needs of applications", ""]
    lines += _distribution_section(
        "Selection votes (Fig. 4)", results.q3.votes, names
    )
    lines.append(
        f"- Most demanded direction: **{names[results.q3.top_direction]}**"
    )
    lines.append(
        f"- Least demanded direction: **{names[results.q3.bottom_direction]}**"
    )
    critical = ", ".join(names[k] for k in results.q3.critical_directions)
    lines.append(f"- Directions with critical interest (≥3 applications): {critical}")
    comparison = results.comparison
    lines.append(
        f"- Demand evenness {comparison.demand_evenness['shannon_evenness']:.3f} "
        f"vs supply evenness {comparison.supply_evenness['shannon_evenness']:.3f} "
        "(demand is more unbalanced)"
        if comparison.demand_evenness["shannon_evenness"]
        < comparison.supply_evenness["shannon_evenness"]
        else
        f"- Demand evenness {comparison.demand_evenness['shannon_evenness']:.3f} "
        f"vs supply evenness {comparison.supply_evenness['shannon_evenness']:.3f}"
    )
    lines.append(
        f"- Supply-demand total variation distance: {comparison.tvd:.3f} "
        f"(permutation p = {comparison.permutation.p_value:.3f})"
    )
    lines.append("")

    # Classification check.
    if results.classifier_evaluation is not None:
        evaluation = results.classifier_evaluation
        lines += ["## Simulated manual classification", ""]
        lines.append(
            f"The keyword classifier recovers the published Table 1 labels "
            f"with accuracy {evaluation.accuracy:.2f} "
            f"(macro-F1 {evaluation.macro_f1():.2f})."
        )
        if evaluation.misclassified:
            lines.append("Misclassified tools:")
            for index, gold, predicted in evaluation.misclassified:
                lines.append(
                    f"- item {index}: {names.get(gold, gold)} → "
                    f"{names.get(predicted, predicted)}"
                )
        lines.append("")

    # Tables.
    lines += ["## Table 1", "", results.table1.to_markdown(), ""]
    lines += ["## Table 2", "", results.table2.to_markdown(), ""]
    lines.append(
        f"Total selections (checkmarks): {results.selection.total_selections}"
    )
    lines.append("")

    # Threats to validity.
    lines += threats_to_validity(results), ""
    return "\n".join(lines)


def future_work_section(tools, applications, scheme) -> str:
    """A future-work section mirroring the paper's Sec. 5 plans.

    Derives, from the data, the integration candidates (tool pairs
    co-selected by several applications) and the collaboration candidates
    (institution pairs with complementary direction coverage) the
    consortium's next phase would prioritize.
    """
    from repro.network.bipartite import (
        institution_direction_graph,
        project_tools,
        tool_application_graph,
    )
    from repro.network.metrics import integration_pairs
    from repro.network.recommend import recommend_collaborations

    names = dict(zip(scheme.keys, scheme.names))
    lines = ["## Future work (data-derived)", ""]

    projection = project_tools(tool_application_graph(tools, applications))
    pairs = integration_pairs(projection, min_weight=2)
    if pairs:
        lines.append("Tool integrations demanded by several applications:")
        for a, b, weight in pairs:
            lines.append(
                f"- **{tools[a].name} + {tools[b].name}** "
                f"(co-selected by {weight} applications)"
            )
        lines.append("")

    graph = institution_direction_graph(tools, scheme)
    recommendations = recommend_collaborations(graph, top_k=3)
    if recommendations:
        lines.append(
            "Institution pairings that would most broaden direction coverage:"
        )
        for entry in recommendations:
            a, b = entry.institutions
            joint = ", ".join(
                names[k] for k in scheme.keys if k in entry.joint_coverage
            )
            lines.append(
                f"- **{a.upper()} + {b.upper()}**: jointly cover {joint} "
                f"(+{entry.gain} direction(s))"
            )
        lines.append("")
    return "\n".join(lines)


def threats_to_validity(results: StudyResults) -> str:
    """A threats-to-validity section derived from the results themselves.

    Surfaces the quantitative caveats a reader should weigh: the small vote
    sample, the non-significance of the supply/demand contrast at that
    sample size, and any classifier disagreement with the recorded labels.
    """
    n_votes = results.selection.total_selections
    n_apps = len(results.selection.application_keys)
    comparison = results.comparison
    lines = ["## Threats to validity", ""]
    lines.append(
        f"- **Sample size.** The demand analysis rests on {n_votes} "
        f"selection votes from {n_apps} applications; shares carry wide "
        "uncertainty at this scale."
    )
    significant = comparison.permutation.significant()
    lines.append(
        f"- **Supply vs demand contrast.** Total variation distance "
        f"{comparison.tvd:.3f} with permutation p = "
        f"{comparison.permutation.p_value:.3f}: the contrast is "
        + ("statistically significant."
           if significant
           else "visually striking but not statistically significant at "
                "this sample size.")
    )
    evaluation = results.classifier_evaluation
    if evaluation is not None and evaluation.misclassified:
        lines.append(
            f"- **Classification subjectivity.** The automatic cross-check "
            f"disagrees with the recorded labels on "
            f"{len(evaluation.misclassified)} item(s); borderline tools "
            "may plausibly belong to neighbouring directions."
        )
    elif evaluation is not None:
        lines.append(
            "- **Classification subjectivity.** The automatic cross-check "
            "reproduces every recorded label; residual subjectivity is "
            "limited to the taxonomy itself."
        )
    lines.append(
        "- **Scope.** The catalogue covers one national consortium; it is "
        "a sample of, not a survey of, international workflow research."
    )
    return "\n".join(lines)
