"""Reporting: figure/table regeneration and markdown study reports."""

from repro.reporting.figures import render_all_artifacts, render_spoke1_figure
from repro.reporting.prisma import FlowStage, StudyFlow, render_flow_diagram
from repro.reporting.provenance import (
    ProvenanceLog,
    ProvenanceRecord,
    dataset_fingerprint,
)
from repro.reporting.report import future_work_section, study_report, threats_to_validity

__all__ = [
    "FlowStage",
    "ProvenanceLog",
    "ProvenanceRecord",
    "dataset_fingerprint",
    "future_work_section",
    "render_all_artifacts",
    "StudyFlow",
    "render_flow_diagram",
    "render_spoke1_figure",
    "study_report",
    "threats_to_validity",
]
