"""Regenerate every paper figure and table into an output directory.

One call produces the complete artifact set:

* ``fig1_spoke1.svg`` — the Spoke 1 structure diagram;
* ``fig2_tool_distribution.svg`` — the supply pie;
* ``fig3_coverage_histogram.svg`` — the institution-coverage histogram;
* ``fig4_selection_votes.svg`` — the demand pie;
* ``table1.md`` / ``table1.tex`` and ``table2.md`` / ``table2.tex``;
* ``fig2_fig4_comparison.svg`` — supply vs demand, side by side;
* CSV data files for every figure.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.analysis import (
    coverage_histogram,
    demand_distribution,
    supply_distribution,
)
from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import ClassificationScheme
from repro.io.csvio import frequency_to_csv, selection_to_csv
from repro.tables.table1 import build_table1
from repro.tables.table2 import build_table2
from repro.viz.bars import bar_chart, grouped_bar_chart
from repro.viz.matrix import selection_grid
from repro.viz.pie import pie_chart
from repro.viz.svg import SvgDocument

__all__ = ["render_all_artifacts", "render_spoke1_figure"]


def render_spoke1_figure(structure: dict) -> SvgDocument:
    """Render the Fig. 1 Spoke-1 structure diagram from plain data."""
    flagships = structure["flagships"]
    labs = structure["living_labs"]
    industries = structure["industries"]
    width, height = 860.0, 90.0 + 46.0 * max(len(flagships), len(industries) // 2 + 3)
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    doc.title(
        f"{structure['name']} (financial envelope "
        f"{structure['financial_envelope_meur']}M€)"
    )
    # Flagship column.
    y = 60.0
    for flagship in flagships:
        doc.rect(20, y, 430, 38, fill="#e8f0fa", stroke="#4477aa", rx=4)
        doc.text(
            30, y + 16, f"{flagship['key'].upper()}) {flagship['title'][:56]}",
            size=10.5,
        )
        doc.text(
            30, y + 30,
            f"coord. {flagship['coordinator'].upper()}",
            size=9.5, fill="#555555",
        )
        y += 46
    # Living labs column.
    y_labs = 60.0
    for lab in labs:
        doc.rect(470, y_labs, 180, 38, fill="#fdf1e7", stroke="#ee6677", rx=4)
        doc.text(478, y_labs + 16, lab["title"][:26], size=10)
        doc.text(
            478, y_labs + 30, f"leader {lab['leader'].upper()}",
            size=9.5, fill="#555555",
        )
        y_labs += 46
    # Funding boxes.
    doc.rect(470, y_labs, 180, 30, fill="#eef7ee", stroke="#228833", rx=4)
    doc.text(
        478, y_labs + 19,
        f"Cascade funding {structure['cascade_funding_meur']}M€",
        size=10,
    )
    y_labs += 38
    doc.rect(470, y_labs, 180, 30, fill="#eef7ee", stroke="#228833", rx=4)
    doc.text(
        478, y_labs + 19,
        f"Innovation grants {structure['innovation_grants_meur']}M€",
        size=10,
    )
    # Industries column.
    doc.text(680, 56, "Industries", size=11, weight="bold")
    y_ind = 70.0
    for name in industries:
        doc.text(680, y_ind, name, size=9.5)
        y_ind += 15
    return doc


def render_all_artifacts(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    scheme: ClassificationScheme,
    output_dir: str | Path,
    *,
    spoke1: dict | None = None,
    institutions=None,
    parallel: bool = False,
) -> dict[str, Path]:
    """Write every figure/table artifact under *output_dir*.

    Returns a name → path mapping of everything produced.  When
    *institutions* is given, a ``provenance.json`` sidecar records each
    artifact's generating step and the dataset's SHA-256 fingerprint.

    Rendering runs as a :class:`~repro.pipeline.runner.Pipeline`: one
    ``derive`` stage computes the shared distributions, then every
    figure/table renders as an independent fan-out stage — concurrently
    when *parallel* is true, in deterministic order otherwise.
    """
    from repro.pipeline.runner import Pipeline, Stage

    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = dict(zip(scheme.keys, scheme.names))

    def derive(inputs):
        supply = supply_distribution(tools, scheme)
        coverage = coverage_histogram(tools, scheme)
        selection = SelectionMatrix.from_catalogs(tools, applications, scheme)
        demand = demand_distribution(selection, tools, scheme)
        return supply, coverage, selection, demand

    def fig1(inputs):
        path = out / "fig1_spoke1.svg"
        render_spoke1_figure(spoke1).save(path)
        return [("fig1", path)]

    def fig2(inputs):
        supply, _, _, _ = inputs["derive"]
        path = out / "fig2_tool_distribution.svg"
        pie_chart(
            supply,
            title="Tool distribution over the five research directions",
            label_names=names,
        ).save(path)
        frequency_to_csv(supply, path.with_suffix(".csv"))
        return [("fig2", path), ("fig2_csv", path.with_suffix(".csv"))]

    def fig3(inputs):
        _, coverage, _, _ = inputs["derive"]
        path = out / "fig3_coverage_histogram.svg"
        bar_chart(
            coverage,
            title="Research directions covered per institution",
            x_label="# covered research directions",
            y_label="# research institutions",
        ).save(path)
        frequency_to_csv(coverage, path.with_suffix(".csv"))
        return [("fig3", path), ("fig3_csv", path.with_suffix(".csv"))]

    def fig4(inputs):
        _, _, _, demand = inputs["derive"]
        path = out / "fig4_selection_votes.svg"
        pie_chart(
            demand,
            title="Tools selected for integration, by research direction",
            label_names=names,
        ).save(path)
        frequency_to_csv(demand, path.with_suffix(".csv"))
        return [("fig4", path), ("fig4_csv", path.with_suffix(".csv"))]

    def comparison(inputs):
        supply, _, _, demand = inputs["derive"]
        path = out / "fig2_fig4_comparison.svg"
        grouped_bar_chart(
            {"supply (tools)": supply, "demand (votes)": demand},
            title="Supply vs demand over the research directions",
        ).save(path)
        return [("comparison", path)]

    def table1(inputs):
        table = build_table1(tools, scheme)
        (out / "table1.md").write_text(
            table.to_markdown() + "\n", encoding="utf-8"
        )
        (out / "table1.tex").write_text(
            table.to_latex() + "\n", encoding="utf-8"
        )
        return [("table1_md", out / "table1.md"),
                ("table1_tex", out / "table1.tex")]

    def table2(inputs):
        _, _, selection, _ = inputs["derive"]
        table = build_table2(tools, applications, scheme, selection=selection)
        (out / "table2.md").write_text(
            table.to_markdown() + "\n", encoding="utf-8"
        )
        (out / "table2.tex").write_text(
            table.to_latex() + "\n", encoding="utf-8"
        )
        return [("table2_md", out / "table2.md"),
                ("table2_tex", out / "table2.tex")]

    def grid(inputs):
        _, _, selection, _ = inputs["derive"]
        path = out / "table2_grid.svg"
        selection_grid(
            selection,
            title="Table 2 as a checkmark grid",
            row_names={t.key: t.name for t in tools},
            col_names={a.key: a.section for a in applications.ordered()},
            row_groups={t.key: t.primary_direction for t in tools},
        ).save(path)
        selection_to_csv(selection, out / "table2.csv")
        return [("table2_grid", path), ("table2_csv", out / "table2.csv")]

    renderers = {
        "fig2": fig2, "fig3": fig3, "fig4": fig4,
        "comparison": comparison, "table1": table1,
        "table2": table2, "grid": grid,
    }
    stages = [Stage("derive", derive)]
    if spoke1 is not None:
        stages.append(Stage("fig1", fig1))
    stages += [
        Stage(name, fn, deps=("derive",)) for name, fn in renderers.items()
    ]
    targets = (["fig1"] if spoke1 is not None else []) + list(renderers)
    run = Pipeline(stages, name="render-artifacts").run(
        targets, parallel=parallel
    )

    artifacts: dict[str, Path] = {}
    for target in targets:
        artifacts.update(run[target])

    if institutions is not None:
        from repro.reporting.provenance import ProvenanceLog, dataset_fingerprint

        provenance = ProvenanceLog()
        inputs = {
            "dataset": dataset_fingerprint(
                institutions, tools, applications, scheme
            )
        }
        for path in artifacts.values():
            provenance.record(path.name, "render_all_artifacts", inputs=inputs)
        provenance.save(out / "provenance.json")
        artifacts["provenance"] = out / "provenance.json"
    return artifacts
