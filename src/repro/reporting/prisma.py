"""PRISMA-style study-flow accounting.

Systematic studies report how the candidate pool narrowed: records
identified → after deduplication → after screening → included.  This module
tracks those counts as an auditable :class:`StudyFlow` and renders the
standard flow diagram as SVG.

The flow validates monotonicity (a stage can never *gain* records) and
bookkeeping (every exclusion must be accounted for).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.viz.svg import SvgDocument

__all__ = ["FlowStage", "StudyFlow", "render_flow_diagram"]


@dataclass(frozen=True, slots=True)
class FlowStage:
    """One stage of the selection flow.

    Attributes
    ----------
    name:
        Stage label, e.g. ``"after deduplication"``.
    count:
        Records remaining after this stage.
    excluded_reason:
        Why the difference to the previous stage was excluded.
    """

    name: str
    count: int
    excluded_reason: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("stage name must be non-empty")
        if self.count < 0:
            raise ValidationError(f"stage {self.name!r}: count must be >= 0")


class StudyFlow:
    """An ordered, validated sequence of selection stages.

    Examples
    --------
    >>> flow = StudyFlow("identified", 600)
    >>> flow.narrow("after deduplication", 512, "duplicate records")
    >>> flow.narrow("matched search query", 49, "off-topic")
    >>> flow.narrow("included", 36, "failed inclusion criteria")
    >>> flow.excluded_total()
    564
    """

    def __init__(self, initial_name: str, initial_count: int) -> None:
        self._stages: list[FlowStage] = [FlowStage(initial_name, initial_count)]

    def narrow(self, name: str, count: int, excluded_reason: str = "") -> None:
        """Append a stage; *count* must not exceed the previous stage's."""
        previous = self._stages[-1]
        if count > previous.count:
            raise ValidationError(
                f"stage {name!r} has {count} records, more than "
                f"{previous.name!r}'s {previous.count}"
            )
        self._stages.append(FlowStage(name, count, excluded_reason))

    @property
    def stages(self) -> tuple[FlowStage, ...]:
        return tuple(self._stages)

    @property
    def initial(self) -> int:
        """Records identified at the start."""
        return self._stages[0].count

    @property
    def final(self) -> int:
        """Records included at the end."""
        return self._stages[-1].count

    def excluded_total(self) -> int:
        """Total records excluded across all stages."""
        return self.initial - self.final

    def exclusions(self) -> list[tuple[str, int, str]]:
        """Per-stage ``(stage name, excluded count, reason)`` rows."""
        rows = []
        for previous, current in zip(self._stages, self._stages[1:]):
            rows.append(
                (current.name, previous.count - current.count,
                 current.excluded_reason)
            )
        return rows

    def retention_rate(self) -> float:
        """Fraction of identified records finally included."""
        if self.initial == 0:
            raise ValidationError("flow started with zero records")
        return self.final / self.initial

    def summary(self) -> str:
        """Multi-line text summary of the flow."""
        lines = [f"{self._stages[0].name}: {self.initial}"]
        for name, excluded, reason in self.exclusions():
            suffix = f" ({reason})" if reason else ""
            stage = next(s for s in self._stages if s.name == name)
            lines.append(f"  -{excluded}{suffix}")
            lines.append(f"{name}: {stage.count}")
        return "\n".join(lines)


def render_flow_diagram(
    flow: StudyFlow,
    *,
    title: str = "Study selection flow",
    width: float = 560.0,
) -> SvgDocument:
    """Render the flow as the standard boxes-and-arrows diagram."""
    stages: Sequence[FlowStage] = flow.stages
    box_h, gap = 44.0, 34.0
    top = 40.0
    height = top + len(stages) * (box_h + gap) - gap + 16
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    doc.title(title, size=13)

    box_w = width * 0.52
    box_x = 24.0
    for i, stage in enumerate(stages):
        y = top + i * (box_h + gap)
        doc.rect(box_x, y, box_w, box_h, fill="#e8f0fa", stroke="#4477aa",
                 rx=5)
        doc.text(box_x + box_w / 2, y + 18, stage.name, size=11,
                 anchor="middle")
        doc.text(box_x + box_w / 2, y + 34, f"n = {stage.count}", size=11,
                 anchor="middle", weight="bold")
        if i + 1 < len(stages):
            arrow_x = box_x + box_w / 2
            doc.line(arrow_x, y + box_h, arrow_x, y + box_h + gap,
                     stroke="#333", stroke_width=1.4)
            doc.path(
                f"M {arrow_x - 4} {y + box_h + gap - 7} "
                f"L {arrow_x} {y + box_h + gap} "
                f"L {arrow_x + 4} {y + box_h + gap - 7} Z",
                fill="#333",
            )
            next_stage = stages[i + 1]
            excluded = stage.count - next_stage.count
            label = f"excluded: {excluded}"
            if next_stage.excluded_reason:
                label += f" ({next_stage.excluded_reason})"
            doc.text(box_x + box_w + 16, y + box_h + gap / 2 + 4, label,
                     size=10, fill="#883333")
    return doc
