"""Aggregation of survey responses into analysis-ready structures.

Turns a :class:`~repro.survey.response.ResponseSet` for the tool-selection
questionnaire into the :class:`~repro.core.selection.SelectionMatrix` of
Table 2, and provides generic aggregators (option counts, Likert summaries)
for richer instruments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.selection import SelectionMatrix
from repro.errors import SurveyError
from repro.stats.frequency import FrequencyTable
from repro.survey.instrument import (
    LikertQuestion,
    MultiChoiceQuestion,
    Questionnaire,
    SingleChoiceQuestion,
    tool_selection_questionnaire,
)
from repro.survey.response import ResponseSet

__all__ = [
    "option_counts",
    "likert_summary",
    "selection_matrix_from_responses",
    "run_tool_selection_survey",
]


def option_counts(responses: ResponseSet, question_key: str) -> FrequencyTable:
    """Count how often each option was chosen for a choice question.

    Works for single- and multi-choice questions; option order follows the
    question definition, zero-filled for unchosen options.
    """
    question = responses.questionnaire[question_key]
    if not isinstance(question, (SingleChoiceQuestion, MultiChoiceQuestion)):
        raise SurveyError(
            f"question {question_key!r} is not a choice question"
        )
    counts = {option: 0 for option in question.options}
    for response in responses:
        if not response.answered(question_key):
            continue
        answer = response[question_key]
        chosen = (answer,) if isinstance(answer, str) else answer
        for option in chosen:
            counts[option] += 1
    return FrequencyTable(counts)


def likert_summary(responses: ResponseSet, question_key: str) -> dict[str, float]:
    """Mean, median, std, and distribution summary of a Likert question."""
    question = responses.questionnaire[question_key]
    if not isinstance(question, LikertQuestion):
        raise SurveyError(f"question {question_key!r} is not a Likert question")
    values = np.asarray(
        [
            response[question_key]
            for response in responses
            if response.answered(question_key)
        ],
        dtype=np.float64,
    )
    if values.size == 0:
        raise SurveyError(f"no answers for {question_key!r}")
    return {
        "n": float(values.size),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
        "min": float(values.min()),
        "max": float(values.max()),
    }


def selection_matrix_from_responses(
    responses: ResponseSet,
    tool_keys: Sequence[str],
    *,
    question_key: str = "selected-tools",
    name_to_key: dict[str, str] | None = None,
) -> SelectionMatrix:
    """Build a :class:`SelectionMatrix` from tool-selection responses.

    Rows follow *tool_keys*; columns follow respondent submission order.
    *name_to_key* translates option labels (display names) to tool keys when
    the questionnaire options are human-readable names.
    """
    votes: list[tuple[str, str]] = []
    for response in responses:
        if not response.answered(question_key):
            continue
        for option in response[question_key]:
            tool_key = (name_to_key or {}).get(option, option)
            votes.append((response.respondent, tool_key))
    return SelectionMatrix.from_votes(
        tool_keys, list(responses.respondents), votes
    )


def run_tool_selection_survey(
    tools,
    applications,
) -> tuple[Questionnaire, ResponseSet]:
    """Replay the paper's Sec. 3 survey from the encoded dataset.

    Creates the tool-selection questionnaire over the catalogue's display
    names and submits one response per application, answering with its
    published selections.  The resulting ``ResponseSet`` feeds
    :func:`selection_matrix_from_responses`, closing the loop
    survey → matrix → Fig. 4.
    """
    names = [tool.name for tool in tools]
    questionnaire = tool_selection_questionnaire(names)
    responses = ResponseSet(questionnaire)
    for app in applications.ordered():
        responses.submit(
            app.key,
            {"selected-tools": tuple(tools[k].name for k in app.selected_tools)},
        )
    return questionnaire, responses
