"""Survey substrate: instruments, validated responses, aggregation."""

from repro.survey.aggregate import (
    likert_summary,
    option_counts,
    run_tool_selection_survey,
    selection_matrix_from_responses,
)
from repro.survey.instrument import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    Question,
    Questionnaire,
    SingleChoiceQuestion,
    tool_selection_questionnaire,
)
from repro.survey.response import Response, ResponseSet

__all__ = [
    "FreeTextQuestion",
    "LikertQuestion",
    "MultiChoiceQuestion",
    "Question",
    "Questionnaire",
    "Response",
    "ResponseSet",
    "SingleChoiceQuestion",
    "likert_summary",
    "option_counts",
    "run_tool_selection_survey",
    "selection_matrix_from_responses",
    "tool_selection_questionnaire",
]
