"""Survey responses and response sets.

A :class:`Response` binds a respondent (an application, in the paper's
survey) to validated answers for one questionnaire.  A :class:`ResponseSet`
collects responses, enforces one response per respondent, and reports
completion statistics.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import ResponseValidationError, SurveyError
from repro.survey.instrument import Questionnaire

__all__ = ["Response", "ResponseSet"]


class Response:
    """One respondent's validated answers to a questionnaire.

    Answers are validated against each question at construction time;
    missing required questions raise immediately, so an instantiated
    ``Response`` is always internally consistent.
    """

    def __init__(
        self,
        questionnaire: Questionnaire,
        respondent: str,
        answers: Mapping[str, object],
    ) -> None:
        if not respondent:
            raise ResponseValidationError("respondent must be non-empty")
        unknown = [k for k in answers if k not in questionnaire]
        if unknown:
            raise ResponseValidationError(
                f"answers reference unknown questions {unknown!r}"
            )
        missing = [
            k for k in questionnaire.required_keys if k not in answers
        ]
        if missing:
            raise ResponseValidationError(
                f"respondent {respondent!r} missing required answers {missing!r}"
            )
        self.questionnaire = questionnaire
        self.respondent = respondent
        self._answers = {
            key: questionnaire[key].validate_answer(value)
            for key, value in answers.items()
        }

    def __getitem__(self, question_key: str) -> object:
        try:
            return self._answers[question_key]
        except KeyError:
            raise SurveyError(
                f"respondent {self.respondent!r} did not answer "
                f"{question_key!r}"
            ) from None

    def get(self, question_key: str, default: object = None) -> object:
        """Tolerant answer lookup."""
        return self._answers.get(question_key, default)

    def answered(self, question_key: str) -> bool:
        """Whether this response covers *question_key*."""
        return question_key in self._answers

    @property
    def answers(self) -> dict[str, object]:
        """Copy of the validated answers."""
        return dict(self._answers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Response({self.respondent!r}, "
            f"{len(self._answers)}/{len(self.questionnaire)} answers)"
        )


class ResponseSet:
    """All responses collected for one questionnaire."""

    def __init__(self, questionnaire: Questionnaire) -> None:
        self.questionnaire = questionnaire
        self._responses: dict[str, Response] = {}

    def add(self, response: Response) -> None:
        """Register *response*; one per respondent, same questionnaire."""
        if response.questionnaire is not self.questionnaire and (
            response.questionnaire.key != self.questionnaire.key
        ):
            raise SurveyError(
                "response answers a different questionnaire "
                f"({response.questionnaire.key!r} != {self.questionnaire.key!r})"
            )
        if response.respondent in self._responses:
            raise SurveyError(
                f"duplicate response from {response.respondent!r}"
            )
        self._responses[response.respondent] = response

    def submit(self, respondent: str, answers: Mapping[str, object]) -> Response:
        """Validate, register, and return a new response."""
        response = Response(self.questionnaire, respondent, answers)
        self.add(response)
        return response

    def __getitem__(self, respondent: str) -> Response:
        try:
            return self._responses[respondent]
        except KeyError:
            raise SurveyError(f"no response from {respondent!r}") from None

    def __iter__(self) -> Iterator[Response]:
        return iter(self._responses.values())

    def __len__(self) -> int:
        return len(self._responses)

    def __contains__(self, respondent: object) -> bool:
        return respondent in self._responses

    @property
    def respondents(self) -> tuple[str, ...]:
        """Respondent keys in submission order."""
        return tuple(self._responses)

    def completion_rate(self, question_key: str) -> float:
        """Fraction of responses answering *question_key*."""
        if question_key not in self.questionnaire:
            raise SurveyError(f"unknown question {question_key!r}")
        if not self._responses:
            raise SurveyError("no responses collected")
        answered = sum(r.answered(question_key) for r in self)
        return answered / len(self)
